//! The Virtual Service Gateway.
//!
//! §3.1: each middleware island runs a VSG "which connects middleware to
//! another middleware using certain protocol". PCMs register their
//! island's services here (via Client Proxies); invocations addressed to
//! other islands travel gateway-to-gateway over the pluggable
//! [`VsgProtocol`].

use crate::batch::{BatchItem, BatchPolicy, EVENT_ARG, EVENT_OP};
use crate::compose::{self, CompositeSpec};
use crate::error::MetaError;
use crate::metrics::{CacheStats, MetricsRegistry, MetricsSnapshot};
use crate::obs::Layer;
use crate::protocol::{VsgProtocol, VsgRequest};
use crate::rescache::{Lookup, ResolutionCache};
use crate::resilience::{BreakerState, CircuitBreaker, ResiliencePolicy};
use crate::service::{ServiceInvoker, VirtualService};
use crate::trace::{HopKind, Tracer};
use crate::vsr::{ServiceRecord, VsrClient};
use parking_lot::Mutex;
use simnet::{Network, NodeId, Sim, SimDuration, SimTime};
use soap::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

struct LocalEntry {
    service: VirtualService,
    invoker: Arc<Mutex<Box<dyn ServiceInvoker>>>,
    /// Composite entries dispatch under `try_lock`: re-entering one
    /// mid-execution means a pipeline cycled back into itself (the
    /// home's gateways share one single-threaded island, so a held
    /// lock here can only be our own call stack) — a typed error
    /// beats the deadlock.
    composite: bool,
}

/// Receives event notifications that arrived as batch members over the
/// gateway-to-gateway wire.
type EventSink = Box<dyn FnMut(&Sim, &str, &Value) + Send>;

struct VsgInner {
    name: String,
    backbone: Network,
    node: NodeId,
    protocol: Arc<dyn VsgProtocol>,
    local: Arc<Mutex<HashMap<String, LocalEntry>>>,
    vsr: VsrClient,
    rescache: Mutex<ResolutionCache>,
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
    resilience: Mutex<ResiliencePolicy>,
    breakers: Mutex<HashMap<String, CircuitBreaker>>,
    batching: Mutex<BatchPolicy>,
    event_sink: Arc<Mutex<Option<EventSink>>>,
}

/// A running gateway.
#[derive(Clone)]
pub struct Vsg {
    inner: Arc<VsgInner>,
}

impl Vsg {
    /// Starts a gateway named `name` on the backbone, speaking
    /// `protocol`, registered with the VSR at `vsr_node`.
    pub fn start(
        backbone: &Network,
        name: &str,
        protocol: Arc<dyn VsgProtocol>,
        vsr_node: NodeId,
    ) -> Result<Vsg, MetaError> {
        let local: Arc<Mutex<HashMap<String, LocalEntry>>> = Arc::new(Mutex::new(HashMap::new()));
        let local2 = local.clone();
        let tracer = Tracer::new(name);
        let tracer2 = tracer.clone();
        // The sink must exist before `bind`: the serve closure captures
        // it, and a batched event can arrive the moment the endpoint is
        // reachable.
        let event_sink: Arc<Mutex<Option<EventSink>>> = Arc::new(Mutex::new(None));
        let sink2 = event_sink.clone();
        let metrics = Arc::new(MetricsRegistry::new());
        let metrics2 = metrics.clone();
        let node = protocol.bind(
            backbone,
            name,
            Arc::new(move |sim: &Sim, req: &VsgRequest| {
                serve_remote(&local2, &tracer2, &sink2, &metrics2, sim, req)
            }),
        );
        let vsr = VsrClient::new(backbone, node, vsr_node)
            .with_tracer(tracer.clone())
            .with_metrics(metrics.clone());
        vsr.register_gateway(name, node)?;
        Ok(Vsg {
            inner: Arc::new(VsgInner {
                name: name.to_owned(),
                backbone: backbone.clone(),
                node,
                protocol,
                local,
                vsr,
                rescache: Mutex::new(ResolutionCache::default()),
                tracer,
                metrics,
                resilience: Mutex::new(ResiliencePolicy::default()),
                breakers: Mutex::new(HashMap::new()),
                batching: Mutex::new(BatchPolicy::default()),
                event_sink,
            }),
        })
    }

    /// The gateway's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The gateway's backbone node.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The protocol this gateway speaks.
    pub fn protocol(&self) -> &Arc<dyn VsgProtocol> {
        &self.inner.protocol
    }

    /// This gateway's VSR client.
    pub fn vsr(&self) -> &VsrClient {
        &self.inner.vsr
    }

    /// The backbone network.
    pub fn backbone(&self) -> &Network {
        &self.inner.backbone
    }

    // ---- service registration (the Client Proxy side of a PCM) ---------

    /// Exports a local service: installs its invoker and publishes it in
    /// the VSR. Replaces any previous export under the same name.
    pub fn export(
        &self,
        service: VirtualService,
        invoker: impl ServiceInvoker + 'static,
    ) -> Result<(), MetaError> {
        debug_assert_eq!(
            service.gateway, self.inner.name,
            "service fronted by this gateway"
        );
        self.inner.vsr.publish(&service)?;
        // A re-export may change the interface or (on another gateway's
        // behalf) supersede a record this gateway cached — drop it.
        self.inner.rescache.lock().invalidate(&service.name);
        self.inner.local.lock().insert(
            service.name.clone(),
            LocalEntry {
                service,
                invoker: Arc::new(Mutex::new(Box::new(invoker))),
                composite: false,
            },
        );
        Ok(())
    }

    /// Registers a composite pipeline as a first-class service of this
    /// gateway: validates the spec, publishes a VSR record of origin
    /// [`crate::service::Middleware::Composite`] whose service contexts carry the
    /// encoded spec, and installs an invoker that runs the pipeline
    /// through [`crate::compose::execute`] *on this gateway* — a
    /// client anywhere in the home pays one round trip here and the
    /// steps fan out over this gateway's resilient wire.
    pub fn register_composite(&self, spec: CompositeSpec) -> Result<(), MetaError> {
        spec.validate()?;
        let service = VirtualService::new(
            &spec.name,
            spec.interface(),
            crate::service::Middleware::Composite,
            &self.inner.name,
        )
        .context(compose::COMPOSITE_SPEC_CONTEXT, spec.to_xml());
        self.inner.vsr.publish(&service)?;
        self.inner.rescache.lock().invalidate(&spec.name);
        let name = spec.name.clone();
        let weak = Arc::downgrade(&self.inner);
        let spec = Arc::new(spec);
        let invoker = move |sim: &Sim, _op: &str, args: &[(String, Value)]| {
            let Some(inner) = weak.upgrade() else {
                return Err(MetaError::GatewayUnreachable(spec.name.clone()));
            };
            compose::execute(&Vsg { inner }, &spec, sim, args).0
        };
        self.inner.local.lock().insert(
            name,
            LocalEntry {
                service,
                invoker: Arc::new(Mutex::new(Box::new(invoker))),
                composite: true,
            },
        );
        Ok(())
    }

    /// Withdraws a local service from the gateway and the VSR.
    pub fn withdraw(&self, name: &str) -> Result<bool, MetaError> {
        let existed = self.inner.local.lock().remove(name).is_some();
        let _ = self.inner.vsr.unpublish(name)?;
        self.inner.rescache.lock().invalidate(name);
        Ok(existed)
    }

    /// Names of locally exported services.
    pub fn local_services(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.local.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// The interface of a locally exported service.
    pub fn local_interface(&self, name: &str) -> Option<crate::iface::ServiceInterface> {
        self.inner
            .local
            .lock()
            .get(name)
            .map(|e| e.service.interface.clone())
    }

    // ---- invocation (what Server Proxies call) ---------------------------

    /// Invokes `operation` on `service`, wherever it lives: locally if
    /// this gateway fronts it, otherwise via VSR resolution and a
    /// gateway-to-gateway protocol call.
    pub fn invoke(
        &self,
        sim: &Sim,
        service: &str,
        operation: &str,
        args: &[(String, Value)],
    ) -> Result<Value, MetaError> {
        self.invoke_inner(sim, service, operation, args, None)
    }

    /// [`Vsg::invoke`] under a caller-supplied resilience policy
    /// instead of this gateway's configured one. The composition
    /// engine uses this to give each pipeline step a deadline carved
    /// from the composite's budget; any caller with a per-call budget
    /// can too. Retry/breaker semantics are otherwise identical.
    pub fn invoke_with_policy(
        &self,
        sim: &Sim,
        service: &str,
        operation: &str,
        args: &[(String, Value)],
        policy: &ResiliencePolicy,
    ) -> Result<Value, MetaError> {
        self.invoke_inner(sim, service, operation, args, Some(policy))
    }

    fn invoke_inner(
        &self,
        sim: &Sim,
        service: &str,
        operation: &str,
        args: &[(String, Value)],
        policy: Option<&ResiliencePolicy>,
    ) -> Result<Value, MetaError> {
        let tracer = &self.inner.tracer;
        let span = tracer.begin(sim, HopKind::ClientProxy, || {
            format!("{service}.{operation}")
        });
        let started = sim.now();
        let result = if self.inner.local.lock().contains_key(service) {
            dispatch_local(
                &self.inner.local,
                tracer,
                &self.inner.metrics,
                sim,
                service,
                operation,
                args,
            )
        } else {
            self.invoke_remote(sim, service, operation, args, policy)
        };
        let elapsed_us = (sim.now() - started).as_micros();
        self.inner.metrics.record_with_exemplar(
            service,
            elapsed_us,
            result.as_ref().err().map(MetaError::kind),
            span.trace_id(),
        );
        tracer.end_result(sim, span, &result);
        result
    }

    // ---- batched invocation (the multiplexed wire) -----------------------

    /// Replaces this gateway's batching policy (defaults to
    /// [`BatchPolicy::default`], i.e. enabled).
    pub fn set_batching(&self, policy: BatchPolicy) {
        *self.inner.batching.lock() = policy;
    }

    /// A copy of the current batching policy.
    pub fn batching(&self) -> BatchPolicy {
        self.inner.batching.lock().clone()
    }

    /// Installs the receiver for event notifications that arrive as
    /// batch members over the gateway-to-gateway wire; `handler` gets
    /// `(service, event)` per delivered member. Replaces any previous
    /// sink.
    pub fn set_event_sink(&self, handler: impl FnMut(&Sim, &str, &Value) + Send + 'static) {
        *self.inner.event_sink.lock() = Some(Box::new(handler));
    }

    /// Invokes a batch of work, coalescing members bound for the same
    /// remote gateway into shared wire frames (chunked by
    /// [`BatchPolicy::max_batch`]), and returns one result per item in
    /// item order.
    ///
    /// Semantics match per-item [`Vsg::invoke`]: local members dispatch
    /// directly, application faults stay per member, and order is
    /// preserved per peer. A whole-frame transport failure is applied
    /// to every member of that frame; a lost frame containing any
    /// non-idempotent member is never re-sent (the no-double-invoke
    /// guarantee extends to batches). Members beyond
    /// [`BatchPolicy::max_queue`] for one peer are rejected with
    /// [`MetaError::Overloaded`] — backpressure, not silent queueing.
    /// With batching disabled every item takes the ordinary unbatched
    /// path, one wire exchange each.
    pub fn invoke_batch(&self, sim: &Sim, items: &[BatchItem]) -> Vec<Result<Value, MetaError>> {
        let policy = self.inner.batching.lock().clone();
        if !policy.enabled {
            return items
                .iter()
                .map(|item| self.invoke_item_unbatched(sim, item))
                .collect();
        }
        let started = sim.now();
        let tracer = &self.inner.tracer;
        let root = tracer.begin(sim, HopKind::ClientProxy, || {
            format!("batch[{}]", items.len())
        });
        let mut results: Vec<Option<Result<Value, MetaError>>> =
            (0..items.len()).map(|_| None).collect();

        // Members bound for one remote gateway, queued in submission
        // order (kept as parallel vectors so a chunk of requests can be
        // borrowed mutably for the wire without cloning).
        struct PeerQueue {
            gw_node: NodeId,
            gateway: String,
            indices: Vec<usize>,
            reqs: Vec<VsgRequest>,
            idempotent: Vec<bool>,
        }
        let mut peers: Vec<PeerQueue> = Vec::new();

        for (i, item) in items.iter().enumerate() {
            let (service, req, declared_idempotent) = match item {
                BatchItem::Call(call) => {
                    if self.inner.local.lock().contains_key(&call.service) {
                        // No wire to coalesce for: dispatch in place.
                        let r = dispatch_local(
                            &self.inner.local,
                            tracer,
                            &self.inner.metrics,
                            sim,
                            &call.service,
                            &call.operation,
                            &call.args,
                        );
                        self.record_member(sim, &call.service, started, &r);
                        results[i] = Some(r);
                        continue;
                    }
                    let mut req = VsgRequest::new(&call.service, &call.operation);
                    req.args = call.args.clone();
                    (call.service.as_str(), req, None)
                }
                BatchItem::Event { service, event } => {
                    if self.inner.local.lock().contains_key(service) {
                        if let Some(sink) = self.inner.event_sink.lock().as_mut() {
                            sink(sim, service, event);
                        }
                        let r = Ok(Value::Null);
                        self.record_member(sim, service, started, &r);
                        results[i] = Some(r);
                        continue;
                    }
                    let req =
                        VsgRequest::new(service.as_str(), EVENT_OP).arg(EVENT_ARG, event.clone());
                    // A duplicated notification is tolerable; a dropped
                    // one is not — events never block a frame re-send.
                    (service.as_str(), req, Some(true))
                }
            };
            let (record, gw_node) = match self.resolve_route(service) {
                Ok(pair) => pair,
                Err(e) => {
                    let r = Err(e);
                    self.record_member(sim, service, started, &r);
                    results[i] = Some(r);
                    continue;
                }
            };
            let idempotent =
                declared_idempotent.unwrap_or_else(|| op_is_idempotent(&record, &req.operation));
            let pidx = peers
                .iter()
                .position(|p| p.gw_node == gw_node)
                .unwrap_or_else(|| {
                    peers.push(PeerQueue {
                        gw_node,
                        gateway: record.gateway.clone(),
                        indices: Vec::new(),
                        reqs: Vec::new(),
                        idempotent: Vec::new(),
                    });
                    peers.len() - 1
                });
            let peer = &mut peers[pidx];
            if peer.reqs.len() >= policy.max_queue {
                let r = Err(MetaError::Overloaded {
                    gateway: peer.gateway.clone(),
                    queued: peer.reqs.len() as u64,
                });
                self.record_member(sim, service, started, &r);
                results[i] = Some(r);
                continue;
            }
            peer.indices.push(i);
            peer.reqs.push(req);
            peer.idempotent.push(idempotent);
        }

        for mut peer in peers {
            let n = peer.reqs.len();
            let mut start = 0;
            while start < n {
                let end = (start + policy.max_batch).min(n);
                // Everything queued behind earlier frames to this (or
                // another) peer waited from submission until now — the
                // coalescing delay the queue-wait histogram exposes.
                let wait_us = sim.now().since(started).as_micros();
                for _ in start..end {
                    self.inner.metrics.record_queue_wait(wait_us);
                }
                let all_idempotent = peer.idempotent[start..end].iter().all(|b| *b);
                let outcome = self.resilient_batch_call(
                    sim,
                    peer.gw_node,
                    &peer.gateway,
                    &mut peer.reqs[start..end],
                    all_idempotent,
                    started,
                );
                match outcome {
                    Ok(rs) => {
                        for (k, r) in rs.into_iter().enumerate() {
                            self.record_member(sim, &peer.reqs[start + k].service, started, &r);
                            results[peer.indices[start + k]] = Some(r);
                        }
                    }
                    Err(e) => {
                        for k in start..end {
                            let r = Err(e.clone());
                            self.record_member(sim, &peer.reqs[k].service, started, &r);
                            results[peer.indices[k]] = Some(r);
                        }
                    }
                }
                start = end;
            }
        }

        tracer.end(sim, root);
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| Err(MetaError::Protocol("batch member lost".into()))))
            .collect()
    }

    /// The unbatched fallback for one batch item: calls route through
    /// [`Vsg::invoke`]; events go out as single event-operation frames.
    fn invoke_item_unbatched(&self, sim: &Sim, item: &BatchItem) -> Result<Value, MetaError> {
        match item {
            BatchItem::Call(call) => self.invoke(sim, &call.service, &call.operation, &call.args),
            BatchItem::Event { service, event } => {
                if self.inner.local.lock().contains_key(service) {
                    if let Some(sink) = self.inner.event_sink.lock().as_mut() {
                        sink(sim, service, event);
                    }
                    return Ok(Value::Null);
                }
                let (record, gw_node) = self.resolve_route(service)?;
                let mut req =
                    VsgRequest::new(service.as_str(), EVENT_OP).arg(EVENT_ARG, event.clone());
                let policy = self.inner.resilience.lock().clone();
                self.resilient_wire_call(
                    sim,
                    gw_node,
                    &record.gateway,
                    &mut req,
                    true,
                    sim.now(),
                    &policy,
                )
            }
        }
    }

    /// Records one batch member in the invocation metrics, mirroring
    /// what [`Vsg::invoke`] records per call.
    fn record_member(
        &self,
        sim: &Sim,
        service: &str,
        started: SimTime,
        result: &Result<Value, MetaError>,
    ) {
        let elapsed_us = (sim.now() - started).as_micros();
        self.inner.metrics.record(
            service,
            elapsed_us,
            result.as_ref().err().map(MetaError::kind),
        );
    }

    /// Resolves `service` to its record and serving gateway node via
    /// the cache, falling back to the VSR (and filling the cache, both
    /// positively and negatively) — the route half of
    /// [`Vsg::invoke_remote`] without the call.
    fn resolve_route(&self, service: &str) -> Result<(ServiceRecord, NodeId), MetaError> {
        let looked_up = self.inner.rescache.lock().lookup(service);
        match looked_up {
            Lookup::Hit(record, gw_node) => return Ok((record, gw_node)),
            Lookup::NegativeHit => return Err(MetaError::UnknownService(service.to_owned())),
            Lookup::Miss => {}
        }
        match self.inner.vsr.resolve(service) {
            Ok(record) => {
                let gw_node = self
                    .inner
                    .vsr
                    .gateway_node(&record.gateway)
                    .map_err(|_| MetaError::GatewayUnreachable(record.gateway.clone()))?;
                self.inner
                    .rescache
                    .lock()
                    .insert_resolved(service, record.clone(), gw_node);
                Ok((record, gw_node))
            }
            Err(MetaError::UnknownService(name)) => {
                self.inner.rescache.lock().insert_negative(service);
                Err(MetaError::UnknownService(name))
            }
            Err(e) => Err(e),
        }
    }

    /// One logical batch wire call under the resilience policy — the
    /// batch twin of [`Vsg::resilient_wire_call`]. The retry gate is
    /// collective: an ambiguous frame loss is re-sent only when *every*
    /// member is idempotent, because the remote may have executed all
    /// of them.
    fn resilient_batch_call(
        &self,
        sim: &Sim,
        gw_node: NodeId,
        gateway: &str,
        reqs: &mut [VsgRequest],
        all_idempotent: bool,
        started: SimTime,
    ) -> Result<Vec<Result<Value, MetaError>>, MetaError> {
        let policy = self.inner.resilience.lock().clone();
        if !policy.enabled {
            return self.wire_batch_call(sim, gw_node, gateway, reqs);
        }
        if !self.breaker_admit(sim, gateway, &policy) {
            self.note_resilience(sim, || format!("breaker open: fail fast to {gateway}"));
            return Err(MetaError::CircuitOpen {
                gateway: gateway.to_owned(),
            });
        }
        let mut attempt: u32 = 0;
        loop {
            let result = self.wire_batch_call(sim, gw_node, gateway, reqs);
            let err = match result {
                Ok(rs) => {
                    self.breaker_success(sim, gateway);
                    return Ok(rs);
                }
                Err(e) if e.is_transport_failure() => {
                    self.breaker_failure(sim, gateway);
                    e
                }
                Err(e) => {
                    self.breaker_success(sim, gateway);
                    return Err(e);
                }
            };
            if !(all_idempotent || err.is_retry_safe()) {
                return Err(err);
            }
            if attempt >= policy.max_retries {
                return Err(err);
            }
            let waited = sim.now().since(started);
            let mut wait = policy.backoff(attempt, sim);
            if waited + wait >= policy.deadline {
                if waited >= policy.deadline {
                    return Err(MetaError::DeadlineExceeded {
                        service: reqs
                            .first()
                            .map(|r| r.service.to_string())
                            .unwrap_or_default(),
                        waited_ms: waited.as_millis(),
                    });
                }
                wait = SimDuration::from_micros(policy.deadline.as_micros() - waited.as_micros());
            }
            attempt += 1;
            self.inner.metrics.record_retry();
            self.note_resilience(sim, || {
                format!(
                    "retry {attempt} (batch of {}) to {gateway} after {wait} ({err})",
                    reqs.len()
                )
            });
            sim.advance(wait);
        }
    }

    /// One batch frame exchange under a `vsg-wire` span. The frame span
    /// carries no bytes itself; per-member child spans subdivide the
    /// frame's byte delta (remainder on the first member), so summing
    /// wire bytes across spans stays honest.
    fn wire_batch_call(
        &self,
        sim: &Sim,
        gw_node: NodeId,
        gateway: &str,
        reqs: &mut [VsgRequest],
    ) -> Result<Vec<Result<Value, MetaError>>, MetaError> {
        let tracer = &self.inner.tracer;
        let traced = tracer.is_enabled();
        let span = tracer.begin(sim, HopKind::VsgWire, || {
            format!(
                "batch of {} via {} to {gateway}",
                reqs.len(),
                self.inner.protocol.name()
            )
        });
        let ctx = tracer.current_context();
        for req in reqs.iter_mut() {
            req.trace = ctx;
        }
        let bytes_before = if traced {
            self.inner.backbone.with_stats(|s| s.total().bytes)
        } else {
            0
        };
        let wire_started = sim.now();
        let result =
            self.inner
                .protocol
                .call_batch(&self.inner.backbone, self.inner.node, gw_node, reqs);
        self.inner.metrics.record_layer_with_exemplar(
            Layer::Wire,
            (sim.now() - wire_started).as_micros(),
            span.trace_id(),
        );
        if traced {
            let bytes = self
                .inner
                .backbone
                .with_stats(|s| s.total().bytes)
                .saturating_sub(bytes_before);
            match &result {
                Ok(members) if !reqs.is_empty() => {
                    let share = bytes / reqs.len() as u64;
                    let remainder = bytes - share * reqs.len() as u64;
                    for (k, (req, r)) in reqs.iter().zip(members).enumerate() {
                        let mspan = tracer.begin(sim, HopKind::VsgWire, || {
                            format!("member {}.{}", req.service, req.operation)
                        });
                        let b = share + if k == 0 { remainder } else { 0 };
                        tracer.end_with(sim, mspan, b, r.as_ref().err().map(|e| e.to_string()));
                    }
                    tracer.end_with(sim, span, 0, None);
                }
                _ => {
                    tracer.end_with(
                        sim,
                        span,
                        bytes,
                        result.as_ref().err().map(|e| e.to_string()),
                    );
                }
            }
        } else {
            tracer.end(sim, span);
        }
        result
    }

    fn invoke_remote(
        &self,
        sim: &Sim,
        service: &str,
        operation: &str,
        args: &[(String, Value)],
        policy_override: Option<&ResiliencePolicy>,
    ) -> Result<Value, MetaError> {
        let mut req = VsgRequest::new(service, operation);
        req.args = args.to_vec();
        // The invocation's deadline spans everything that follows:
        // cached attempt, re-resolution, retries, and backoff waits.
        let started = sim.now();
        let policy = policy_override
            .cloned()
            .unwrap_or_else(|| self.inner.resilience.lock().clone());

        // Fast path: a warm cache entry carries the full record and the
        // serving gateway's node — zero VSR round trips. (Bound to a
        // local so the cache guard is released before the network call.)
        let looked_up = self.inner.rescache.lock().lookup(service);
        let looked_up_label = looked_up.label();
        match looked_up {
            Lookup::Hit(record, gw_node) => {
                self.note_cache(sim, looked_up_label, service);
                let idempotent = op_is_idempotent(&record, operation);
                match self.resilient_wire_call(
                    sim,
                    gw_node,
                    &record.gateway,
                    &mut req,
                    idempotent,
                    started,
                    &policy,
                ) {
                    Ok(v) => return Ok(v),
                    // Only errors that guarantee the operation did not
                    // execute (gateway gone, stale route) may evict and
                    // retry over a fresh resolution. An application
                    // fault means the remote side processed the call:
                    // re-invoking could double-apply a non-idempotent
                    // operation, so it propagates as-is.
                    Err(e) if e.is_retry_safe() => {
                        self.inner.rescache.lock().invalidate(service);
                    }
                    Err(e) => return Err(e),
                }
            }
            Lookup::NegativeHit => {
                self.note_cache(sim, looked_up_label, service);
                return Err(MetaError::UnknownService(service.to_owned()));
            }
            Lookup::Miss => {}
        }

        // Slow path: resolve via the VSR and fill the cache.
        let record = match self.inner.vsr.resolve(service) {
            Ok(r) => r,
            Err(MetaError::UnknownService(name)) => {
                // Definitive answer from the repository — cacheable.
                self.inner.rescache.lock().insert_negative(service);
                return Err(MetaError::UnknownService(name));
            }
            // The VSR itself is unreachable. Degraded mode: a stale
            // (previously invalidated) route beats failing the call —
            // §3.1's backbone still works even when discovery is down.
            Err(e) if e.is_transport_failure() => {
                return self
                    .invoke_degraded(sim, service, operation, &mut req, started, e, &policy);
            }
            Err(e) => return Err(e),
        };
        let gw_node = self
            .inner
            .vsr
            .gateway_node(&record.gateway)
            .map_err(|_| MetaError::GatewayUnreachable(record.gateway.clone()))?;
        let idempotent = op_is_idempotent(&record, operation);
        let result = self.resilient_wire_call(
            sim,
            gw_node,
            &record.gateway,
            &mut req,
            idempotent,
            started,
            &policy,
        );
        // Cache the resolution unless the call failed in a way that
        // leaves the route in doubt (an application fault proves the
        // remote gateway serves this record, so the route is good).
        match &result {
            Ok(_) => {
                self.inner
                    .rescache
                    .lock()
                    .insert_resolved(service, record, gw_node);
            }
            Err(e) if !e.is_retry_safe() => {
                self.inner
                    .rescache
                    .lock()
                    .insert_resolved(service, record, gw_node);
            }
            Err(_) => {}
        }
        result
    }

    /// The VSR is down. If degraded reads are allowed and an
    /// invalidated route survives in the cache, serve over it; a
    /// success re-promotes the route to resolved. Otherwise the
    /// original resolution error propagates.
    #[allow(clippy::too_many_arguments)]
    fn invoke_degraded(
        &self,
        sim: &Sim,
        service: &str,
        operation: &str,
        req: &mut VsgRequest,
        started: SimTime,
        resolve_err: MetaError,
        policy: &ResiliencePolicy,
    ) -> Result<Value, MetaError> {
        if !(policy.enabled && policy.degraded_reads) {
            return Err(resolve_err);
        }
        let Some((record, gw_node)) = self.inner.rescache.lock().stale_lookup(service) else {
            return Err(resolve_err);
        };
        self.inner.metrics.record_degraded_serve();
        self.note_resilience(sim, || {
            format!(
                "degraded: VSR down, stale route for {service} via {}",
                record.gateway
            )
        });
        let idempotent = op_is_idempotent(&record, operation);
        let result = self.resilient_wire_call(
            sim,
            gw_node,
            &record.gateway,
            req,
            idempotent,
            started,
            policy,
        );
        if result.is_ok() {
            self.inner
                .rescache
                .lock()
                .insert_resolved(service, record, gw_node);
        }
        result
    }

    /// One logical wire call under the resilience policy: circuit
    /// breaker admission, then up to `1 + max_retries` attempts paced
    /// by jittered exponential backoff, all bounded by the deadline.
    /// Only transport failures are retried, and an ambiguous one (the
    /// remote may have executed) is retried only when the operation is
    /// idempotent — the no-double-invoke guarantee.
    #[allow(clippy::too_many_arguments)]
    fn resilient_wire_call(
        &self,
        sim: &Sim,
        gw_node: NodeId,
        gateway: &str,
        req: &mut VsgRequest,
        idempotent: bool,
        started: SimTime,
        policy: &ResiliencePolicy,
    ) -> Result<Value, MetaError> {
        if !policy.enabled {
            return self.wire_call(sim, gw_node, gateway, req);
        }
        if !self.breaker_admit(sim, gateway, policy) {
            self.note_resilience(sim, || format!("breaker open: fail fast to {gateway}"));
            return Err(MetaError::CircuitOpen {
                gateway: gateway.to_owned(),
            });
        }
        let mut attempt: u32 = 0;
        loop {
            let result = self.wire_call(sim, gw_node, gateway, req);
            let err = match result {
                Ok(v) => {
                    self.breaker_success(sim, gateway);
                    return Ok(v);
                }
                Err(e) if e.is_transport_failure() => {
                    self.breaker_failure(sim, gateway);
                    e
                }
                // Any typed answer from the remote — an application
                // fault, unknown service/operation, a type error —
                // proves the gateway alive: the breaker sees success.
                Err(e) => {
                    self.breaker_success(sim, gateway);
                    return Err(e);
                }
            };
            // An ambiguous loss (the request may have executed) is only
            // re-sent when the operation tolerates double execution.
            if !(idempotent || err.is_retry_safe()) {
                return Err(err);
            }
            if attempt >= policy.max_retries {
                return Err(err);
            }
            let waited = sim.now().since(started);
            let mut wait = policy.backoff(attempt, sim);
            if waited + wait >= policy.deadline {
                if waited >= policy.deadline {
                    return Err(MetaError::DeadlineExceeded {
                        service: req.service.to_string(),
                        waited_ms: waited.as_millis(),
                    });
                }
                // The full backoff would overshoot, but budget remains:
                // spend all of it on one final, deadline-aligned attempt
                // rather than giving up with time on the clock.
                wait = SimDuration::from_micros(policy.deadline.as_micros() - waited.as_micros());
            }
            attempt += 1;
            self.inner.metrics.record_retry();
            self.note_resilience(sim, || {
                format!("retry {attempt} to {gateway} after {wait} ({err})")
            });
            sim.advance(wait);
        }
    }

    // ---- the per-remote-gateway circuit breaker --------------------------

    /// Runs `f` on `gateway`'s breaker (created closed on first use)
    /// and reports any state transition to metrics and the tracer.
    fn with_breaker<T>(
        &self,
        sim: &Sim,
        gateway: &str,
        policy: Option<&ResiliencePolicy>,
        f: impl FnOnce(&mut CircuitBreaker) -> T,
    ) -> T {
        let (out, transition) = {
            let mut breakers = self.inner.breakers.lock();
            let br = breakers.entry(gateway.to_owned()).or_insert_with(|| {
                let p = policy
                    .cloned()
                    .unwrap_or_else(|| self.inner.resilience.lock().clone());
                CircuitBreaker::new(p.breaker_threshold, p.breaker_open_window)
            });
            let before = br.state();
            let out = f(br);
            let after = br.state();
            (out, (before != after).then_some(after))
        };
        if let Some(state) = transition {
            self.inner
                .metrics
                .record_breaker_transition(gateway, state.label());
            self.note_resilience(sim, || format!("breaker {state} for {gateway}"));
        }
        out
    }

    fn breaker_admit(&self, sim: &Sim, gateway: &str, policy: &ResiliencePolicy) -> bool {
        self.with_breaker(sim, gateway, Some(policy), |br| br.admit(sim.now()))
    }

    fn breaker_success(&self, sim: &Sim, gateway: &str) {
        self.with_breaker(sim, gateway, None, |br| br.on_success());
    }

    fn breaker_failure(&self, sim: &Sim, gateway: &str) {
        self.with_breaker(sim, gateway, None, |br| br.on_failure(sim.now()));
    }

    /// Records an instant `resilience` span (retry, breaker transition,
    /// degraded serve). Free when tracing is off.
    fn note_resilience(&self, sim: &Sim, label: impl FnOnce() -> String) {
        let span = self.inner.tracer.begin(sim, HopKind::Resilience, label);
        self.inner.tracer.end(sim, span);
    }

    /// Records an instant `cache-hit` span for a resolution-cache
    /// outcome (positive or negative). Free when tracing is off.
    fn note_cache(&self, sim: &Sim, outcome: &'static str, service: &str) {
        let span = self
            .inner
            .tracer
            .begin(sim, HopKind::CacheHit, || format!("{outcome} {service}"));
        self.inner.tracer.end(sim, span);
    }

    /// One gateway-to-gateway protocol call under a `vsg-wire` span.
    /// The span's context rides the wire (SOAP header / SIP header /
    /// binary tagged field) so the serving gateway's spans join this
    /// trace; the span is charged the backbone bytes the exchange moved.
    fn wire_call(
        &self,
        sim: &Sim,
        gw_node: NodeId,
        gateway: &str,
        req: &mut VsgRequest,
    ) -> Result<Value, MetaError> {
        let tracer = &self.inner.tracer;
        let traced = tracer.is_enabled();
        let span = tracer.begin(sim, HopKind::VsgWire, || {
            format!("{} to {gateway}", self.inner.protocol.name())
        });
        req.trace = tracer.current_context();
        let bytes_before = if traced {
            self.inner.backbone.with_stats(|s| s.total().bytes)
        } else {
            0
        };
        let wire_started = sim.now();
        let result = self
            .inner
            .protocol
            .call(&self.inner.backbone, self.inner.node, gw_node, req);
        self.inner.metrics.record_layer_with_exemplar(
            Layer::Wire,
            (sim.now() - wire_started).as_micros(),
            span.trace_id(),
        );
        if traced {
            let bytes = self
                .inner
                .backbone
                .with_stats(|s| s.total().bytes)
                .saturating_sub(bytes_before);
            tracer.end_with(
                sim,
                span,
                bytes,
                result.as_ref().err().map(|e| e.to_string()),
            );
        } else {
            tracer.end_result(sim, span, &result);
        }
        result
    }

    /// Resolves a service record via the VSR (always a live lookup —
    /// the cache-bypassing baseline that [`Vsg::resolve_cached`] must
    /// agree with).
    pub fn resolve(&self, service: &str) -> Result<ServiceRecord, MetaError> {
        self.inner.vsr.resolve(service)
    }

    /// Resolves a service record through the resolution cache: a warm
    /// entry costs zero VSR round trips; a miss resolves, learns the
    /// serving gateway's node, and fills the cache.
    pub fn resolve_cached(&self, service: &str) -> Result<ServiceRecord, MetaError> {
        let looked_up = self.inner.rescache.lock().lookup(service);
        match looked_up {
            Lookup::Hit(record, _) => return Ok(record),
            Lookup::NegativeHit => return Err(MetaError::UnknownService(service.to_owned())),
            Lookup::Miss => {}
        }
        match self.inner.vsr.resolve(service) {
            Ok(record) => {
                if let Ok(gw_node) = self.inner.vsr.gateway_node(&record.gateway) {
                    self.inner
                        .rescache
                        .lock()
                        .insert_resolved(service, record.clone(), gw_node);
                }
                Ok(record)
            }
            Err(MetaError::UnknownService(name)) => {
                self.inner.rescache.lock().insert_negative(service);
                Err(MetaError::UnknownService(name))
            }
            Err(e) => Err(e),
        }
    }

    /// Drops all cached resolutions, forcing fresh VSR resolution on the
    /// next remote invocation (used by the E11 ablation bench).
    pub fn clear_route_cache(&self) {
        self.inner.rescache.lock().clear();
    }

    /// Re-bounds the resolution cache (tests/benches exercise eviction
    /// with small capacities).
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.inner.rescache.lock().set_capacity(capacity);
    }

    /// Number of live resolution-cache entries.
    pub fn cache_len(&self) -> usize {
        self.inner.rescache.lock().len()
    }

    /// This gateway's resolution-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.rescache.lock().stats()
    }

    // ---- resilience ------------------------------------------------------

    /// Replaces this gateway's resilience policy. Existing breakers
    /// keep the thresholds they were created with; new remote gateways
    /// get the new ones.
    pub fn set_resilience(&self, policy: ResiliencePolicy) {
        *self.inner.resilience.lock() = policy;
    }

    /// A copy of the current resilience policy.
    pub fn resilience(&self) -> ResiliencePolicy {
        self.inner.resilience.lock().clone()
    }

    /// The circuit-breaker state this gateway holds for a remote
    /// gateway ([`BreakerState::Closed`] before any call reached it).
    pub fn breaker_state(&self, gateway: &str) -> BreakerState {
        self.inner
            .breakers
            .lock()
            .get(gateway)
            .map(CircuitBreaker::state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Crash recovery: re-registers this gateway and re-publishes every
    /// locally exported service with the VSR. Call after a VSR restart
    /// (lost registry) or this gateway's own restart; returns how many
    /// services were re-published.
    pub fn republish_all(&self) -> Result<usize, MetaError> {
        self.inner
            .vsr
            .register_gateway(&self.inner.name, self.inner.node)?;
        let services: Vec<VirtualService> = self
            .inner
            .local
            .lock()
            .values()
            .map(|e| e.service.clone())
            .collect();
        for s in &services {
            self.inner.vsr.publish(s)?;
        }
        Ok(services.len())
    }

    // ---- observability ---------------------------------------------------

    /// This gateway's tracer. Disabled (and allocation-free) until
    /// [`Vsg::set_tracing`] turns it on.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Enables or disables span recording on this gateway.
    pub fn set_tracing(&self, on: bool) {
        self.inner.tracer.set_enabled(on);
    }

    /// This gateway's always-on invocation counters and latency
    /// histogram.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// One merged, JSON-serializable snapshot of everything this
    /// gateway counts: invocation metrics plus resolution-cache
    /// counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            gateway: self.inner.name.clone(),
            island: self.inner.backbone.sim().island(),
            registry: self.inner.metrics.snapshot(),
            cache: self.cache_stats(),
        }
    }
}

impl fmt::Debug for Vsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vsg")
            .field("name", &self.inner.name)
            .field("protocol", &self.inner.protocol.name())
            .field("local_services", &self.inner.local.lock().len())
            .finish()
    }
}

/// Whether `operation` is declared idempotent in the resolved record's
/// interface. Unknown operations default to *not* idempotent — the
/// server rejects them anyway, and that answer is never ambiguous.
fn op_is_idempotent(record: &ServiceRecord, operation: &str) -> bool {
    record
        .interface
        .find(operation)
        .is_some_and(|sig| sig.idempotent)
}

/// Serves one request arriving over the gateway-to-gateway wire: joins
/// the caller's trace (when a context rode along), records the
/// `server-proxy` hop, and dispatches to the local invoker. A member
/// carrying the reserved event operation goes to the gateway's event
/// sink instead of a service invoker.
fn serve_remote(
    local: &Mutex<HashMap<String, LocalEntry>>,
    tracer: &Tracer,
    event_sink: &Mutex<Option<EventSink>>,
    metrics: &MetricsRegistry,
    sim: &Sim,
    req: &VsgRequest,
) -> Result<Value, MetaError> {
    let adopted = req.trace.is_some_and(|ctx| tracer.adopt(ctx));
    let result = if req.operation == EVENT_OP {
        let span = tracer.begin(sim, HopKind::Event, || format!("event {}", req.service));
        let payload = req
            .args
            .iter()
            .find(|(k, _)| k == EVENT_ARG)
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null);
        if let Some(sink) = event_sink.lock().as_mut() {
            sink(sim, &req.service, &payload);
        }
        // Delivery is acknowledged even with no sink installed — events
        // are notifications, not queries; an uninterested gateway is
        // not an error.
        let result = Ok(Value::Null);
        tracer.end_result(sim, span, &result);
        result
    } else {
        let span = tracer.begin(sim, HopKind::ServerProxy, || {
            format!("{}.{}", req.service, req.operation)
        });
        let result = dispatch_local(
            local,
            tracer,
            metrics,
            sim,
            &req.service,
            &req.operation,
            &req.args,
        );
        tracer.end_result(sim, span, &result);
        result
    };
    if adopted {
        tracer.unadopt();
    }
    result
}

fn dispatch_local(
    local: &Mutex<HashMap<String, LocalEntry>>,
    tracer: &Tracer,
    metrics: &MetricsRegistry,
    sim: &Sim,
    service: &str,
    operation: &str,
    args: &[(String, Value)],
) -> Result<Value, MetaError> {
    // Type-check against the signature in place (no OpSig clone); only
    // the invoker handle leaves the map lock's scope.
    let (invoker, composite) =
        {
            let map = local.lock();
            let entry = map
                .get(service)
                .ok_or_else(|| MetaError::UnknownService(service.to_owned()))?;
            let sig = entry.service.interface.find(operation).ok_or_else(|| {
                MetaError::UnknownOperation {
                    service: service.to_owned(),
                    operation: operation.to_owned(),
                }
            })?;
            sig.check_args(args)?;
            (entry.invoker.clone(), entry.composite)
        };
    let span = tracer.begin(sim, HopKind::App, || format!("{service}.{operation}"));
    let app_started = sim.now();
    // Composite invokers re-enter the gateway to run their steps; a
    // composite that (transitively) invokes itself would self-deadlock
    // on this non-reentrant mutex, so contention on a composite's own
    // lock is reported as a cycle instead of waited on.
    let mut invoker = if composite {
        match invoker.try_lock() {
            Some(guard) => guard,
            None => {
                let err = MetaError::Native {
                    middleware: "composite".to_owned(),
                    detail: format!("re-entrant invocation of composite '{service}' (cycle)"),
                };
                let result = Err(err);
                tracer.end_result(sim, span, &result);
                return result;
            }
        }
    } else {
        invoker.lock()
    };
    let result = invoker.invoke(sim, operation, args);
    metrics.record_layer_with_exemplar(
        Layer::App,
        (sim.now() - app_started).as_micros(),
        span.trace_id(),
    );
    tracer.end_result(sim, span, &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;
    use crate::protocol::{CompactBinary, SipLike, Soap11};
    use crate::service::Middleware;
    use crate::vsr::Vsr;

    fn world(protocol: Arc<dyn VsgProtocol>) -> (Sim, Network, Vsr, Vsg, Vsg) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let vsr = Vsr::start(&net);
        let gw_a = Vsg::start(&net, "gw-a", protocol.clone(), vsr.node()).unwrap();
        let gw_b = Vsg::start(&net, "gw-b", protocol, vsr.node()).unwrap();
        (sim, net, vsr, gw_a, gw_b)
    }

    fn export_lamp(gw: &Vsg) {
        let on = Arc::new(Mutex::new(false));
        gw.export(
            VirtualService::new("hall-lamp", catalog::lamp(), Middleware::X10, gw.name()),
            move |_: &Sim, op: &str, args: &[(String, Value)]| match op {
                "switch" => {
                    let want = args
                        .iter()
                        .find(|(k, _)| k == "on")
                        .and_then(|(_, v)| v.as_bool())
                        .unwrap_or(false);
                    *on.lock() = want;
                    Ok(Value::Null)
                }
                "status" => Ok(Value::Bool(*on.lock())),
                "dim" => Ok(Value::Null),
                other => Err(MetaError::UnknownOperation {
                    service: "hall-lamp".into(),
                    operation: other.into(),
                }),
            },
        )
        .unwrap();
    }

    #[test]
    fn local_invocation_with_type_checking() {
        let (sim, _net, _vsr, gw_a, _gw_b) = world(Arc::new(Soap11::new()));
        export_lamp(&gw_a);
        assert_eq!(gw_a.local_services(), vec!["hall-lamp".to_owned()]);
        assert_eq!(gw_a.local_interface("hall-lamp").unwrap(), catalog::lamp());

        gw_a.invoke(
            &sim,
            "hall-lamp",
            "switch",
            &[("on".into(), Value::Bool(true))],
        )
        .unwrap();
        let status = gw_a.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(status, Value::Bool(true));

        // Wrong type rejected before reaching the invoker.
        let err = gw_a
            .invoke(&sim, "hall-lamp", "switch", &[("on".into(), Value::Int(1))])
            .unwrap_err();
        assert!(matches!(err, MetaError::TypeMismatch { .. }));
        // Unknown op.
        assert!(matches!(
            gw_a.invoke(&sim, "hall-lamp", "explode", &[]),
            Err(MetaError::UnknownOperation { .. })
        ));
        // Unknown service: not local, and resolution at the VSR fails.
        assert!(matches!(
            gw_a.invoke(&sim, "ghost", "x", &[]),
            Err(MetaError::Repository(_) | MetaError::UnknownService(_))
        ));
    }

    #[test]
    fn cross_gateway_invocation_over_each_protocol() {
        for protocol in [
            Arc::new(Soap11::new()) as Arc<dyn VsgProtocol>,
            Arc::new(CompactBinary::new()),
            Arc::new(SipLike::new()),
        ] {
            let name = protocol.name();
            let (sim, _net, _vsr, gw_a, gw_b) = world(protocol);
            export_lamp(&gw_a);
            // gw_b neither hosts the lamp nor knows where it is; the
            // framework resolves and routes transparently.
            gw_b.invoke(
                &sim,
                "hall-lamp",
                "switch",
                &[("on".into(), Value::Bool(true))],
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            let status = gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
            assert_eq!(status, Value::Bool(true), "{name}");
        }
    }

    #[test]
    fn composite_runs_cross_island_steps_from_one_entry_hop() {
        use crate::compose::{Binding, CompositeSpec, StepSpec};
        let (sim, _net, _vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        export_lamp(&gw_a);
        let shown: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let log = shown.clone();
        gw_b.export(
            VirtualService::new("tv-display", catalog::display(), Middleware::Havi, "gw-b"),
            move |_: &Sim, _: &str, args: &[(String, Value)]| {
                let text = args
                    .iter()
                    .find(|(k, _)| k == "text")
                    .and_then(|(_, v)| v.as_str())
                    .unwrap_or("")
                    .to_owned();
                log.lock().push(text);
                Ok(Value::Null)
            },
        )
        .unwrap();

        let spec = CompositeSpec::new("evening-check")
            .input("on", crate::iface::TypeTag::Bool)
            .step(StepSpec::new("hall-lamp", "switch").arg("on", Binding::Input("on".into())))
            .step(
                StepSpec::new("tv-display", "show")
                    .arg("text", Binding::Literal(Value::Str("lamp set".into()))),
            )
            .step(StepSpec::new("hall-lamp", "status"));
        gw_b.register_composite(spec).unwrap();

        // Invoked from gw_a: one cross-gateway hop reaches gw_b, which
        // drives all three steps (two of them back across to gw_a).
        let out = gw_a
            .invoke(
                &sim,
                "evening-check",
                "run",
                &[("on".into(), Value::Bool(true))],
            )
            .unwrap();
        assert_eq!(out, Value::Bool(true), "last step's output is returned");
        assert_eq!(shown.lock().as_slice(), ["lamp set".to_owned()]);

        // The hosting gateway's metrics recorded the execution.
        let snap = gw_b.metrics_snapshot();
        assert_eq!(snap.registry.compose_executions, 1);
        assert_eq!(snap.registry.compose_steps, 3);
        assert_eq!(snap.registry.compose_failures, 0);
    }

    #[test]
    fn mutually_recursive_composites_fail_as_cycles_not_deadlocks() {
        use crate::compose::{CompositeSpec, StepSpec};
        let (sim, _net, _vsr, gw_a, _gw_b) = world(Arc::new(Soap11::new()));
        // a-calls-b's only step invokes b-calls-a and vice versa; direct
        // self-invocation is rejected by validate(), but this mutual
        // cycle is only discoverable at run time.
        gw_a.register_composite(
            CompositeSpec::new("a-calls-b").step(StepSpec::new("b-calls-a", "run")),
        )
        .unwrap();
        gw_a.register_composite(
            CompositeSpec::new("b-calls-a").step(StepSpec::new("a-calls-b", "run")),
        )
        .unwrap();
        let err = gw_a.invoke(&sim, "a-calls-b", "run", &[]).unwrap_err();
        assert!(
            err.to_string().contains("cycle"),
            "expected cycle error, got: {err}"
        );
    }

    #[test]
    fn remote_errors_propagate() {
        let (sim, _net, _vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        export_lamp(&gw_a);
        // Type errors are raised on the *serving* gateway and travel back.
        let err = gw_b
            .invoke(&sim, "hall-lamp", "switch", &[("on".into(), Value::Int(1))])
            .unwrap_err();
        assert!(err.to_string().contains("type mismatch"), "{err}");
        // Unknown remote service fails at resolution.
        assert!(matches!(
            gw_b.invoke(&sim, "ghost", "x", &[]),
            Err(MetaError::Repository(_) | MetaError::UnknownService(_))
        ));
    }

    #[test]
    fn route_cache_survives_and_recovers() {
        let (sim, _net, vsr, gw_a, gw_b) = world(Arc::new(CompactBinary::new()));
        export_lamp(&gw_a);
        gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        let inquiries_after_first = vsr.registry_stats().inquiries;
        // Second call uses the cached route: no new VSR inquiries.
        gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(vsr.registry_stats().inquiries, inquiries_after_first);

        // Service moves to gw_b itself; the stale cache entry still hits
        // gw_a which no longer hosts it, and the framework re-resolves.
        gw_a.withdraw("hall-lamp").unwrap();
        export_lamp(&gw_b);
        let v = gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn warm_cache_needs_zero_vsr_round_trips() {
        let (sim, _net, vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        export_lamp(&gw_a);
        gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        let inquiries_after_first = vsr.registry_stats().inquiries;
        for _ in 0..10 {
            gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        }
        // Not a single further VSR SOAP round trip.
        assert_eq!(vsr.registry_stats().inquiries, inquiries_after_first);
        let stats = gw_b.cache_stats();
        assert_eq!(stats.hits, 10);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn withdraw_invalidates_the_caching_gateway() {
        let (sim, _net, vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        export_lamp(&gw_a);
        gw_a.invoke(&sim, "hall-lamp", "status", &[]).ok();
        gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(gw_b.cache_len(), 1);

        // gw_a withdraws: its own entry (if any) is invalidated locally;
        // gw_b's copy goes stale and is evicted on the next use.
        gw_a.withdraw("hall-lamp").unwrap();
        assert!(gw_b.invoke(&sim, "hall-lamp", "status", &[]).is_err());
        assert_eq!(
            gw_b.cache_stats().invalidations,
            1,
            "stale entry dropped after failed call"
        );
        assert_eq!(vsr.service_count(), 0);
    }

    #[test]
    fn service_move_between_gateways_serves_fresh_record() {
        let (sim, net, vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        let gw_c = Vsg::start(&net, "gw-c", gw_a.protocol().clone(), vsr.node()).unwrap();
        export_lamp(&gw_a);
        gw_c.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(gw_c.resolve_cached("hall-lamp").unwrap().gateway, "gw-a");

        // The lamp relocates to gw_b; gw_c's cached record is stale.
        gw_a.withdraw("hall-lamp").unwrap();
        let on = Arc::new(Mutex::new(false));
        gw_b.export(
            VirtualService::new("hall-lamp", catalog::lamp(), Middleware::X10, "gw-b"),
            move |_: &Sim, op: &str, _: &[(String, Value)]| match op {
                "status" => Ok(Value::Bool(*on.lock())),
                _ => Ok(Value::Null),
            },
        )
        .unwrap();

        // Invocation recovers transparently, and the re-learned record
        // names the new gateway — no stale interface or endpoint.
        gw_c.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(gw_c.resolve_cached("hall-lamp").unwrap().gateway, "gw-b");
    }

    #[test]
    fn cache_stays_bounded_under_churn() {
        let (sim, _net, _vsr, gw_a, gw_b) = world(Arc::new(CompactBinary::new()));
        gw_b.set_cache_capacity(2);
        for i in 0..8 {
            let name = format!("svc-{i}");
            gw_a.export(
                VirtualService::new(&name, catalog::lamp(), Middleware::X10, "gw-a"),
                |_: &Sim, _: &str, _: &[(String, Value)]| Ok(Value::Bool(false)),
            )
            .unwrap();
            gw_b.invoke(&sim, &name, "status", &[]).unwrap();
            assert!(gw_b.cache_len() <= 2, "cache grew past its bound");
        }
        assert_eq!(gw_b.cache_stats().evictions, 6);
        // The bound costs re-resolution, never correctness.
        assert_eq!(
            gw_b.invoke(&sim, "svc-0", "status", &[]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn app_faults_never_double_invoke() {
        for protocol in [
            Arc::new(Soap11::new()) as Arc<dyn VsgProtocol>,
            Arc::new(CompactBinary::new()),
            Arc::new(SipLike::new()),
        ] {
            let name = protocol.name();
            let (sim, _net, _vsr, gw_a, gw_b) = world(protocol);
            let invocations = Arc::new(Mutex::new(0u32));
            let counter = invocations.clone();
            gw_a.export(
                VirtualService::new("vault", catalog::lamp(), Middleware::X10, "gw-a"),
                move |_: &Sim, _: &str, _: &[(String, Value)]| {
                    *counter.lock() += 1;
                    Err(MetaError::native("x10", "device jammed"))
                },
            )
            .unwrap();

            // Warm the route, then hit the application fault.
            gw_b.invoke(&sim, "vault", "status", &[]).unwrap_err();
            let err = gw_b.invoke(&sim, "vault", "status", &[]).unwrap_err();
            assert_eq!(err, MetaError::native("x10", "device jammed"), "{name}");
            // One invocation per invoke() call: the fault proves the
            // remote side executed, so there must be no evict-and-retry.
            assert_eq!(
                *invocations.lock(),
                2,
                "{name}: non-idempotent op double-invoked"
            );
        }
    }

    #[test]
    fn negative_entries_absorb_repeated_unknown_lookups() {
        let (sim, _net, vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        assert!(matches!(
            gw_b.invoke(&sim, "hall-lamp", "status", &[]),
            Err(MetaError::UnknownService(_))
        ));
        let inquiries_after_first = vsr.registry_stats().inquiries;
        // The next few lookups are answered from the negative entry…
        for _ in 0..3 {
            assert!(matches!(
                gw_b.invoke(&sim, "hall-lamp", "status", &[]),
                Err(MetaError::UnknownService(_))
            ));
        }
        assert_eq!(vsr.registry_stats().inquiries, inquiries_after_first);
        assert_eq!(gw_b.cache_stats().negative_hits, 3);
        // …but the entry has a use budget: a service published *after*
        // the failed lookups becomes invocable within a few attempts
        // rather than staying invisible forever.
        export_lamp(&gw_a);
        let recovered = (0..8).any(|_| gw_b.invoke(&sim, "hall-lamp", "status", &[]).is_ok());
        assert!(recovered, "negative entry never expired");
    }

    #[test]
    fn lost_requests_are_retried_until_the_spike_heals() {
        let (sim, net, _vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        export_lamp(&gw_a);
        gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap(); // warm the route
        let t = sim.now();
        net.set_fault_plan(simnet::FaultPlan::new().loss_spike(
            t,
            t + simnet::SimDuration::from_millis(120),
            1.0,
        ));
        // Every request in the window is lost before delivery; backoff
        // paces the retries across the spike and the call lands.
        let v = gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(v, Value::Bool(false));
        let snap = gw_b.metrics().snapshot();
        assert!(snap.retries >= 1, "retries recorded: {}", snap.retries);
        assert_eq!(
            gw_b.breaker_state("gw-a"),
            BreakerState::Closed,
            "success reset the failure run"
        );
    }

    #[test]
    fn ambiguous_response_loss_never_double_invokes() {
        let (sim, net, _vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        let count = Arc::new(Mutex::new(0u32));
        let c = count.clone();
        gw_a.export(
            VirtualService::new("vault", catalog::lamp(), Middleware::X10, "gw-a"),
            move |sim: &Sim, _: &str, _: &[(String, Value)]| {
                *c.lock() += 1;
                // Long enough that the partition window opens mid-call.
                sim.advance(simnet::SimDuration::from_millis(10));
                Ok(Value::Null)
            },
        )
        .unwrap();
        gw_b.invoke(&sim, "vault", "switch", &[("on".into(), Value::Bool(true))])
            .unwrap();
        assert_eq!(*count.lock(), 1);

        // The backbone partitions while the handler is running: the
        // request was delivered, the response is lost. `switch` is not
        // idempotent, so the resilience layer must NOT re-send.
        let t = sim.now();
        net.set_fault_plan(simnet::FaultPlan::new().partition(
            vec![gw_a.node()],
            vec![gw_b.node()],
            t + simnet::SimDuration::from_millis(5),
            t + simnet::SimDuration::from_millis(500),
        ));
        let err = gw_b
            .invoke(&sim, "vault", "switch", &[("on".into(), Value::Bool(true))])
            .unwrap_err();
        assert_eq!(err.kind(), "transport");
        assert!(
            matches!(
                err,
                MetaError::Transport {
                    not_executed: false,
                    ..
                }
            ),
            "{err}"
        );
        assert_eq!(
            *count.lock(),
            2,
            "executed once; ambiguous loss not re-sent"
        );
    }

    #[test]
    fn vsr_outage_serves_stale_routes_degraded() {
        let (sim, net, vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        export_lamp(&gw_a);
        gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap(); // warm the route
        gw_b.set_resilience(ResiliencePolicy {
            max_retries: 0,
            ..ResiliencePolicy::default()
        });
        let t = sim.now();
        net.set_fault_plan(
            simnet::FaultPlan::new()
                .node_down(gw_a.node(), t, t + simnet::SimDuration::from_secs(1))
                .node_down(vsr.node(), t, t + simnet::SimDuration::from_secs(3600)),
        );
        // Gateway and VSR both down: the wire call fails, the route is
        // demoted to stale, re-resolution fails, the stale route is
        // tried (degraded) and fails too — but gracefully typed.
        let err = gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap_err();
        assert!(err.is_transport_failure(), "{err}");

        // gw-a recovers; the VSR is still down for an hour. Degraded
        // mode keeps the home controllable from the stale route.
        sim.advance(simnet::SimDuration::from_secs(2));
        let v = gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(v, Value::Bool(false));
        assert_eq!(gw_b.metrics().snapshot().degraded_serves, 2);
        assert_eq!(gw_b.cache_stats().stale_serves, 2);

        // The degraded success re-promoted the route: next call is a
        // plain cache hit, no VSR needed.
        let hits_before = gw_b.cache_stats().hits;
        gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(gw_b.cache_stats().hits, hits_before + 1);
    }

    #[test]
    fn batched_agrees_with_unbatched_and_shares_the_wire() {
        use crate::batch::{BatchCall, BatchItem};
        let items = vec![
            BatchItem::Call(BatchCall::new("hall-lamp", "switch").arg("on", true)),
            BatchItem::Call(BatchCall::new("hall-lamp", "status")),
            BatchItem::Event {
                service: "hall-lamp".into(),
                event: Value::Int(7),
            },
            BatchItem::Call(BatchCall::new("hall-lamp", "explode")),
            BatchItem::Call(BatchCall::new("ghost", "status")),
            BatchItem::Call(BatchCall::new("hall-lamp", "status")),
        ];
        let run = |batched: bool| {
            let (sim, net, _vsr, gw_a, gw_b) = world(Arc::new(CompactBinary::new()));
            export_lamp(&gw_a);
            gw_b.set_batching(if batched {
                BatchPolicy::default()
            } else {
                BatchPolicy::disabled()
            });
            gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap(); // warm the route
            let frames_before = net.with_stats(|s| s.total().frames);
            let results = gw_b.invoke_batch(&sim, &items);
            (
                results,
                net.with_stats(|s| s.total().frames) - frames_before,
            )
        };
        let (batched, batched_frames) = run(true);
        let (unbatched, unbatched_frames) = run(false);
        assert_eq!(batched, unbatched, "batching must not change answers");
        assert_eq!(batched[1], Ok(Value::Bool(true)));
        assert_eq!(batched[2], Ok(Value::Null));
        assert!(matches!(
            batched[3],
            Err(MetaError::UnknownOperation { .. })
        ));
        assert!(matches!(batched[4], Err(MetaError::UnknownService(_))));
        assert!(
            batched_frames < unbatched_frames,
            "batched moved {batched_frames} frames, unbatched {unbatched_frames}"
        );
    }

    #[test]
    fn batched_events_reach_the_remote_sink_in_order() {
        use crate::batch::BatchItem;
        let (sim, _net, _vsr, gw_a, gw_b) = world(Arc::new(SipLike::new()));
        export_lamp(&gw_a);
        let seen: Arc<Mutex<Vec<(String, Value)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        gw_a.set_event_sink(move |_, service, event| {
            seen2.lock().push((service.to_owned(), event.clone()));
        });
        let items: Vec<BatchItem> = (0..3)
            .map(|i| BatchItem::Event {
                service: "hall-lamp".into(),
                event: Value::Int(i),
            })
            .collect();
        let results = gw_b.invoke_batch(&sim, &items);
        assert!(results.iter().all(|r| r == &Ok(Value::Null)), "{results:?}");
        assert_eq!(
            *seen.lock(),
            vec![
                ("hall-lamp".to_owned(), Value::Int(0)),
                ("hall-lamp".to_owned(), Value::Int(1)),
                ("hall-lamp".to_owned(), Value::Int(2)),
            ]
        );
    }

    #[test]
    fn batch_backpressure_rejects_members_beyond_the_queue_bound() {
        use crate::batch::{BatchCall, BatchItem, BatchPolicy};
        let (sim, _net, _vsr, gw_a, gw_b) = world(Arc::new(CompactBinary::new()));
        export_lamp(&gw_a);
        gw_b.set_batching(BatchPolicy {
            max_queue: 2,
            ..BatchPolicy::default()
        });
        let items: Vec<BatchItem> = (0..4)
            .map(|_| BatchItem::Call(BatchCall::new("hall-lamp", "status")))
            .collect();
        let results = gw_b.invoke_batch(&sim, &items);
        assert!(results[0].is_ok() && results[1].is_ok());
        for r in &results[2..] {
            assert!(
                matches!(r, Err(MetaError::Overloaded { queued: 2, .. })),
                "{r:?}"
            );
        }
        // Rejections land in the metrics under their own kind, and the
        // accepted members recorded their queue wait.
        let snap = gw_b.metrics().snapshot();
        let overloaded = snap
            .errors
            .iter()
            .find(|(k, _)| k == "overloaded")
            .map(|(_, n)| *n);
        assert_eq!(overloaded, Some(2));
        assert_eq!(snap.queue_wait.count, 2);
    }

    #[test]
    fn lost_batch_with_non_idempotent_member_is_not_resent() {
        use crate::batch::{BatchCall, BatchItem};
        let (sim, net, _vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        let count = Arc::new(Mutex::new(0u32));
        let c = count.clone();
        gw_a.export(
            VirtualService::new("vault", catalog::lamp(), Middleware::X10, "gw-a"),
            move |sim: &Sim, _: &str, _: &[(String, Value)]| {
                *c.lock() += 1;
                sim.advance(simnet::SimDuration::from_millis(10));
                Ok(Value::Null)
            },
        )
        .unwrap();
        gw_b.invoke(&sim, "vault", "status", &[]).unwrap(); // warm the route
        let executed_before = *count.lock();

        // The response frame is lost mid-batch: the members may all
        // have executed. `switch` is not idempotent, so the whole frame
        // must not be re-sent — every member fails ambiguously instead.
        let t = sim.now();
        net.set_fault_plan(simnet::FaultPlan::new().partition(
            vec![gw_a.node()],
            vec![gw_b.node()],
            t + simnet::SimDuration::from_millis(5),
            t + simnet::SimDuration::from_millis(500),
        ));
        let items = vec![
            BatchItem::Call(BatchCall::new("vault", "status")),
            BatchItem::Call(BatchCall::new("vault", "switch").arg("on", true)),
        ];
        let results = gw_b.invoke_batch(&sim, &items);
        for r in &results {
            assert!(
                matches!(
                    r,
                    Err(MetaError::Transport {
                        not_executed: false,
                        ..
                    })
                ),
                "{r:?}"
            );
        }
        assert_eq!(
            *count.lock() - executed_before,
            2,
            "each member executed exactly once despite the lost reply"
        );
    }

    #[test]
    fn withdraw_removes_service_everywhere() {
        let (sim, _net, vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        export_lamp(&gw_a);
        assert_eq!(vsr.service_count(), 1);
        assert!(gw_a.withdraw("hall-lamp").unwrap());
        assert!(!gw_a.withdraw("hall-lamp").unwrap());
        assert_eq!(vsr.service_count(), 0);
        assert!(gw_b.invoke(&sim, "hall-lamp", "status", &[]).is_err());
    }
}
