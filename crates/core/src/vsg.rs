//! The Virtual Service Gateway.
//!
//! §3.1: each middleware island runs a VSG "which connects middleware to
//! another middleware using certain protocol". PCMs register their
//! island's services here (via Client Proxies); invocations addressed to
//! other islands travel gateway-to-gateway over the pluggable
//! [`VsgProtocol`].

use crate::error::MetaError;
use crate::protocol::{VsgProtocol, VsgRequest};
use crate::service::{ServiceInvoker, VirtualService};
use crate::vsr::{ServiceRecord, VsrClient};
use parking_lot::Mutex;
use simnet::{Network, NodeId, Sim};
use soap::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

struct LocalEntry {
    service: VirtualService,
    invoker: Arc<Mutex<Box<dyn ServiceInvoker>>>,
}

struct VsgInner {
    name: String,
    backbone: Network,
    node: NodeId,
    protocol: Arc<dyn VsgProtocol>,
    local: Arc<Mutex<HashMap<String, LocalEntry>>>,
    vsr: VsrClient,
    route_cache: Mutex<HashMap<String, NodeId>>,
}

/// A running gateway.
#[derive(Clone)]
pub struct Vsg {
    inner: Arc<VsgInner>,
}

impl Vsg {
    /// Starts a gateway named `name` on the backbone, speaking
    /// `protocol`, registered with the VSR at `vsr_node`.
    pub fn start(
        backbone: &Network,
        name: &str,
        protocol: Arc<dyn VsgProtocol>,
        vsr_node: NodeId,
    ) -> Result<Vsg, MetaError> {
        let local: Arc<Mutex<HashMap<String, LocalEntry>>> = Arc::new(Mutex::new(HashMap::new()));
        let local2 = local.clone();
        let node = protocol.bind(
            backbone,
            name,
            Arc::new(move |sim: &Sim, req: &VsgRequest| {
                dispatch_local(&local2, sim, &req.service, &req.operation, &req.args)
            }),
        );
        let vsr = VsrClient::new(backbone, node, vsr_node);
        vsr.register_gateway(name, node)?;
        Ok(Vsg {
            inner: Arc::new(VsgInner {
                name: name.to_owned(),
                backbone: backbone.clone(),
                node,
                protocol,
                local,
                vsr,
                route_cache: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The gateway's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The gateway's backbone node.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The protocol this gateway speaks.
    pub fn protocol(&self) -> &Arc<dyn VsgProtocol> {
        &self.inner.protocol
    }

    /// This gateway's VSR client.
    pub fn vsr(&self) -> &VsrClient {
        &self.inner.vsr
    }

    /// The backbone network.
    pub fn backbone(&self) -> &Network {
        &self.inner.backbone
    }

    // ---- service registration (the Client Proxy side of a PCM) ---------

    /// Exports a local service: installs its invoker and publishes it in
    /// the VSR. Replaces any previous export under the same name.
    pub fn export(
        &self,
        service: VirtualService,
        invoker: impl ServiceInvoker + 'static,
    ) -> Result<(), MetaError> {
        debug_assert_eq!(service.gateway, self.inner.name, "service fronted by this gateway");
        self.inner.vsr.publish(&service)?;
        self.inner.local.lock().insert(
            service.name.clone(),
            LocalEntry {
                service,
                invoker: Arc::new(Mutex::new(Box::new(invoker))),
            },
        );
        Ok(())
    }

    /// Withdraws a local service from the gateway and the VSR.
    pub fn withdraw(&self, name: &str) -> Result<bool, MetaError> {
        let existed = self.inner.local.lock().remove(name).is_some();
        let _ = self.inner.vsr.unpublish(name)?;
        Ok(existed)
    }

    /// Names of locally exported services.
    pub fn local_services(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.local.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// The interface of a locally exported service.
    pub fn local_interface(&self, name: &str) -> Option<crate::iface::ServiceInterface> {
        self.inner
            .local
            .lock()
            .get(name)
            .map(|e| e.service.interface.clone())
    }

    // ---- invocation (what Server Proxies call) ---------------------------

    /// Invokes `operation` on `service`, wherever it lives: locally if
    /// this gateway fronts it, otherwise via VSR resolution and a
    /// gateway-to-gateway protocol call.
    pub fn invoke(
        &self,
        sim: &Sim,
        service: &str,
        operation: &str,
        args: &[(String, Value)],
    ) -> Result<Value, MetaError> {
        if self.inner.local.lock().contains_key(service) {
            return dispatch_local(&self.inner.local, sim, service, operation, args);
        }
        self.invoke_remote(service, operation, args)
    }

    fn invoke_remote(
        &self,
        service: &str,
        operation: &str,
        args: &[(String, Value)],
    ) -> Result<Value, MetaError> {
        let mut req = VsgRequest::new(service, operation);
        req.args = args.to_vec();

        // Fast path: cached route.
        if let Some(node) = self.inner.route_cache.lock().get(service).copied() {
            match self.inner.protocol.call(&self.inner.backbone, self.inner.node, node, &req) {
                Ok(v) => return Ok(v),
                Err(_) => {
                    // Stale route (service moved or gateway died): drop it
                    // and fall through to a fresh resolution.
                    self.inner.route_cache.lock().remove(service);
                }
            }
        }

        let record = self.resolve(service)?;
        let gw_node = self.inner.vsr.gateway_node(&record.gateway).map_err(|_| {
            MetaError::GatewayUnreachable(record.gateway.clone())
        })?;
        let result = self
            .inner
            .protocol
            .call(&self.inner.backbone, self.inner.node, gw_node, &req);
        if result.is_ok() {
            self.inner
                .route_cache
                .lock()
                .insert(service.to_owned(), gw_node);
        }
        result
    }

    /// Resolves a service record via the VSR.
    pub fn resolve(&self, service: &str) -> Result<ServiceRecord, MetaError> {
        self.inner.vsr.resolve(service)
    }

    /// Drops all cached routes, forcing fresh VSR resolution on the next
    /// remote invocation (used by the E11 ablation bench).
    pub fn clear_route_cache(&self) {
        self.inner.route_cache.lock().clear();
    }
}

impl fmt::Debug for Vsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vsg")
            .field("name", &self.inner.name)
            .field("protocol", &self.inner.protocol.name())
            .field("local_services", &self.inner.local.lock().len())
            .finish()
    }
}

fn dispatch_local(
    local: &Mutex<HashMap<String, LocalEntry>>,
    sim: &Sim,
    service: &str,
    operation: &str,
    args: &[(String, Value)],
) -> Result<Value, MetaError> {
    let (sig_check, invoker) = {
        let map = local.lock();
        let entry = map
            .get(service)
            .ok_or_else(|| MetaError::UnknownService(service.to_owned()))?;
        let sig = entry
            .service
            .interface
            .find(operation)
            .ok_or_else(|| MetaError::UnknownOperation {
                service: service.to_owned(),
                operation: operation.to_owned(),
            })?
            .clone();
        (sig, entry.invoker.clone())
    };
    sig_check.check_args(args)?;
    let mut invoker = invoker.lock();
    invoker.invoke(sim, operation, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;
    use crate::protocol::{CompactBinary, SipLike, Soap11};
    use crate::service::Middleware;
    use crate::vsr::Vsr;

    fn world(protocol: Arc<dyn VsgProtocol>) -> (Sim, Network, Vsr, Vsg, Vsg) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let vsr = Vsr::start(&net);
        let gw_a = Vsg::start(&net, "gw-a", protocol.clone(), vsr.node()).unwrap();
        let gw_b = Vsg::start(&net, "gw-b", protocol, vsr.node()).unwrap();
        (sim, net, vsr, gw_a, gw_b)
    }

    fn export_lamp(gw: &Vsg) {
        let on = Arc::new(Mutex::new(false));
        gw.export(
            VirtualService::new("hall-lamp", catalog::lamp(), Middleware::X10, gw.name()),
            move |_: &Sim, op: &str, args: &[(String, Value)]| match op {
                "switch" => {
                    let want = args
                        .iter()
                        .find(|(k, _)| k == "on")
                        .and_then(|(_, v)| v.as_bool())
                        .unwrap_or(false);
                    *on.lock() = want;
                    Ok(Value::Null)
                }
                "status" => Ok(Value::Bool(*on.lock())),
                "dim" => Ok(Value::Null),
                other => Err(MetaError::UnknownOperation {
                    service: "hall-lamp".into(),
                    operation: other.into(),
                }),
            },
        )
        .unwrap();
    }

    #[test]
    fn local_invocation_with_type_checking() {
        let (sim, _net, _vsr, gw_a, _gw_b) = world(Arc::new(Soap11::new()));
        export_lamp(&gw_a);
        assert_eq!(gw_a.local_services(), vec!["hall-lamp".to_owned()]);
        assert_eq!(gw_a.local_interface("hall-lamp").unwrap(), catalog::lamp());

        gw_a.invoke(&sim, "hall-lamp", "switch", &[("on".into(), Value::Bool(true))])
            .unwrap();
        let status = gw_a.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(status, Value::Bool(true));

        // Wrong type rejected before reaching the invoker.
        let err = gw_a
            .invoke(&sim, "hall-lamp", "switch", &[("on".into(), Value::Int(1))])
            .unwrap_err();
        assert!(matches!(err, MetaError::TypeMismatch { .. }));
        // Unknown op.
        assert!(matches!(
            gw_a.invoke(&sim, "hall-lamp", "explode", &[]),
            Err(MetaError::UnknownOperation { .. })
        ));
        // Unknown service: not local, and resolution at the VSR fails.
        assert!(matches!(
            gw_a.invoke(&sim, "ghost", "x", &[]),
            Err(MetaError::Repository(_) | MetaError::UnknownService(_))
        ));
    }

    #[test]
    fn cross_gateway_invocation_over_each_protocol() {
        for protocol in [
            Arc::new(Soap11::new()) as Arc<dyn VsgProtocol>,
            Arc::new(CompactBinary::new()),
            Arc::new(SipLike::new()),
        ] {
            let name = protocol.name();
            let (sim, _net, _vsr, gw_a, gw_b) = world(protocol);
            export_lamp(&gw_a);
            // gw_b neither hosts the lamp nor knows where it is; the
            // framework resolves and routes transparently.
            gw_b.invoke(&sim, "hall-lamp", "switch", &[("on".into(), Value::Bool(true))])
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let status = gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
            assert_eq!(status, Value::Bool(true), "{name}");
        }
    }

    #[test]
    fn remote_errors_propagate() {
        let (sim, _net, _vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        export_lamp(&gw_a);
        // Type errors are raised on the *serving* gateway and travel back.
        let err = gw_b
            .invoke(&sim, "hall-lamp", "switch", &[("on".into(), Value::Int(1))])
            .unwrap_err();
        assert!(err.to_string().contains("type mismatch"), "{err}");
        // Unknown remote service fails at resolution.
        assert!(matches!(
            gw_b.invoke(&sim, "ghost", "x", &[]),
            Err(MetaError::Repository(_) | MetaError::UnknownService(_))
        ));
    }

    #[test]
    fn route_cache_survives_and_recovers() {
        let (sim, _net, vsr, gw_a, gw_b) = world(Arc::new(CompactBinary::new()));
        export_lamp(&gw_a);
        gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        let inquiries_after_first = vsr.registry_stats().inquiries;
        // Second call uses the cached route: no new VSR inquiries.
        gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(vsr.registry_stats().inquiries, inquiries_after_first);

        // Service moves to gw_b itself; the stale cache entry still hits
        // gw_a which no longer hosts it, and the framework re-resolves.
        gw_a.withdraw("hall-lamp").unwrap();
        export_lamp(&gw_b);
        let v = gw_b.invoke(&sim, "hall-lamp", "status", &[]).unwrap();
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn withdraw_removes_service_everywhere() {
        let (sim, _net, vsr, gw_a, gw_b) = world(Arc::new(Soap11::new()));
        export_lamp(&gw_a);
        assert_eq!(vsr.service_count(), 1);
        assert!(gw_a.withdraw("hall-lamp").unwrap());
        assert!(!gw_a.withdraw("hall-lamp").unwrap());
        assert_eq!(vsr.service_count(), 0);
        assert!(gw_b.invoke(&sim, "hall-lamp", "status", &[]).is_err());
    }
}
