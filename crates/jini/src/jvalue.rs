//! Jini's native value model and its Java-serialization-like wire codec.
//!
//! Jini moves marshalled Java objects; the PCM's whole job (§3.2) is
//! converting between this representation and the VSG's SOAP encoding.
//! The codec here mimics Java object serialization's shape — a stream
//! magic, explicit class descriptors, length-prefixed UTF strings — so
//! that message sizes and conversion work are realistic.

use std::fmt;

/// Magic prefix of a marshalled stream (stands in for `0xACED0005`).
pub const STREAM_MAGIC: &[u8; 4] = b"JRM1";

/// A value in the simulated Java/Jini type system.
#[derive(Debug, Clone, PartialEq)]
pub enum JValue {
    /// Java `null`.
    Null,
    /// `java.lang.Boolean`.
    Bool(bool),
    /// `java.lang.Long` (covers int/short/byte).
    Int(i64),
    /// `java.lang.Double`.
    Double(f64),
    /// `java.lang.String`.
    Str(String),
    /// `byte[]`.
    Bytes(Vec<u8>),
    /// `java.util.List`.
    List(Vec<JValue>),
    /// An arbitrary serializable object: class name + named fields.
    Object {
        /// Fully qualified class name.
        class: String,
        /// Field name/value pairs, in declaration order.
        fields: Vec<(String, JValue)>,
    },
}

impl JValue {
    /// Creates an object value.
    pub fn object(class: impl Into<String>, fields: Vec<(String, JValue)>) -> JValue {
        JValue::Object {
            class: class.into(),
            fields,
        }
    }

    /// A field of an object value.
    pub fn field(&self, name: &str) -> Option<&JValue> {
        match self {
            JValue::Object { fields, .. } => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            JValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean inside, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The float inside, if this is a `Double`.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            JValue::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Serialises to a marshalled stream (with magic).
    pub fn marshal(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(STREAM_MAGIC);
        self.write(&mut out);
        out
    }

    /// Deserialises a marshalled stream.
    pub fn unmarshal(data: &[u8]) -> Result<JValue, MarshalError> {
        if data.len() < 4 || &data[..4] != STREAM_MAGIC {
            return Err(MarshalError::new("bad stream magic"));
        }
        let mut pos = 4;
        let v = Self::read(data, &mut pos)?;
        if pos != data.len() {
            return Err(MarshalError::new("trailing bytes in stream"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut Vec<u8>) {
        match self {
            JValue::Null => out.push(0x70),
            JValue::Bool(b) => {
                out.push(0x01);
                out.push(u8::from(*b));
            }
            JValue::Int(i) => {
                out.push(0x02);
                out.extend_from_slice(&i.to_be_bytes());
            }
            JValue::Double(d) => {
                out.push(0x03);
                out.extend_from_slice(&d.to_be_bytes());
            }
            JValue::Str(s) => {
                out.push(0x04);
                write_utf(out, s);
            }
            JValue::Bytes(b) => {
                out.push(0x05);
                out.extend_from_slice(&(b.len() as u32).to_be_bytes());
                out.extend_from_slice(b);
            }
            JValue::List(items) => {
                out.push(0x06);
                out.extend_from_slice(&(items.len() as u32).to_be_bytes());
                for item in items {
                    item.write(out);
                }
            }
            JValue::Object { class, fields } => {
                // Class descriptor: tag, class name, serialVersionUID
                // stand-in — the per-object overhead Java serialization
                // is famous for.
                out.push(0x07);
                write_utf(out, class);
                out.extend_from_slice(&class_uid(class).to_be_bytes());
                out.extend_from_slice(&(fields.len() as u16).to_be_bytes());
                for (name, value) in fields {
                    write_utf(out, name);
                    value.write(out);
                }
            }
        }
    }

    fn read(data: &[u8], pos: &mut usize) -> Result<JValue, MarshalError> {
        let tag = *data
            .get(*pos)
            .ok_or_else(|| MarshalError::new("truncated stream"))?;
        *pos += 1;
        match tag {
            0x70 => Ok(JValue::Null),
            0x01 => {
                let b = *data
                    .get(*pos)
                    .ok_or_else(|| MarshalError::new("truncated bool"))?;
                *pos += 1;
                Ok(JValue::Bool(b != 0))
            }
            0x02 => Ok(JValue::Int(i64::from_be_bytes(
                take(data, pos, 8)?.try_into().unwrap(),
            ))),
            0x03 => Ok(JValue::Double(f64::from_be_bytes(
                take(data, pos, 8)?.try_into().unwrap(),
            ))),
            0x04 => Ok(JValue::Str(read_utf(data, pos)?)),
            0x05 => {
                let len = read_u32(data, pos)? as usize;
                Ok(JValue::Bytes(take(data, pos, len)?.to_vec()))
            }
            0x06 => {
                let len = read_u32(data, pos)? as usize;
                if len > data.len() {
                    return Err(MarshalError::new("implausible list length"));
                }
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(Self::read(data, pos)?);
                }
                Ok(JValue::List(items))
            }
            0x07 => {
                let class = read_utf(data, pos)?;
                let uid = i64::from_be_bytes(take(data, pos, 8)?.try_into().unwrap());
                if uid != class_uid(&class) {
                    return Err(MarshalError::new(format!(
                        "serialVersionUID mismatch for {class}"
                    )));
                }
                let nfields = u16::from_be_bytes(take(data, pos, 2)?.try_into().unwrap()) as usize;
                let mut fields = Vec::with_capacity(nfields);
                for _ in 0..nfields {
                    let name = read_utf(data, pos)?;
                    let value = Self::read(data, pos)?;
                    fields.push((name, value));
                }
                Ok(JValue::Object { class, fields })
            }
            t => Err(MarshalError::new(format!("unknown tag 0x{t:02x}"))),
        }
    }
}

fn write_utf(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_utf(data: &[u8], pos: &mut usize) -> Result<String, MarshalError> {
    let len = u16::from_be_bytes(take(data, pos, 2)?.try_into().unwrap()) as usize;
    let bytes = take(data, pos, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| MarshalError::new("invalid UTF-8 string"))
}

fn read_u32(data: &[u8], pos: &mut usize) -> Result<u32, MarshalError> {
    Ok(u32::from_be_bytes(take(data, pos, 4)?.try_into().unwrap()))
}

fn take<'a>(data: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], MarshalError> {
    let end = pos
        .checked_add(n)
        .ok_or_else(|| MarshalError::new("overflow"))?;
    if end > data.len() {
        return Err(MarshalError::new("truncated stream"));
    }
    let slice = &data[*pos..end];
    *pos = end;
    Ok(slice)
}

/// A deterministic stand-in for `serialVersionUID`.
fn class_uid(class: &str) -> i64 {
    let mut h: i64 = 1125899906842597; // prime
    for b in class.bytes() {
        h = h.wrapping_mul(31).wrapping_add(i64::from(b));
    }
    h
}

/// A marshalling failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarshalError {
    /// What went wrong.
    pub message: String,
}

impl MarshalError {
    /// Creates an error with the given message.
    pub fn new(m: impl Into<String>) -> Self {
        MarshalError { message: m.into() }
    }
}

impl fmt::Display for MarshalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "marshal error: {}", self.message)
    }
}

impl std::error::Error for MarshalError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &JValue) -> JValue {
        JValue::unmarshal(&v.marshal()).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            JValue::Null,
            JValue::Bool(true),
            JValue::Bool(false),
            JValue::Int(-1),
            JValue::Int(i64::MAX),
            JValue::Double(2.5),
            JValue::Str("日本語 ok".into()),
            JValue::Str(String::new()),
            JValue::Bytes(vec![0, 255, 128]),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn objects_round_trip() {
        let v = JValue::object(
            "net.jini.lookup.entry.Name",
            vec![
                ("name".into(), JValue::Str("laserdisc".into())),
                ("rank".into(), JValue::Int(1)),
                (
                    "inner".into(),
                    JValue::object(
                        "java.awt.Point",
                        vec![("x".into(), JValue::Int(3)), ("y".into(), JValue::Int(4))],
                    ),
                ),
            ],
        );
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn lists_round_trip() {
        let v = JValue::List(vec![JValue::Int(1), JValue::Str("x".into()), JValue::Null]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn bad_streams_are_errors() {
        assert!(JValue::unmarshal(b"").is_err());
        assert!(JValue::unmarshal(b"XXXX\x02").is_err());
        assert!(JValue::unmarshal(b"JRM1").is_err());
        assert!(JValue::unmarshal(b"JRM1\xff").is_err());
        // Trailing garbage is rejected.
        let mut data = JValue::Int(1).marshal();
        data.push(0);
        assert!(JValue::unmarshal(&data).is_err());
        // Truncation is rejected.
        let data = JValue::Str("hello".into()).marshal();
        assert!(JValue::unmarshal(&data[..data.len() - 2]).is_err());
    }

    #[test]
    fn uid_mismatch_detected() {
        // Corrupt the class-name byte so the UID no longer matches —
        // the incompatible-class-change failure mode of real RMI.
        let mut data = JValue::object("com.sun.X", vec![]).marshal();
        let name_start = 4 + 1 + 2;
        data[name_start] ^= 0x01;
        let err = JValue::unmarshal(&data).unwrap_err();
        assert!(err.message.contains("serialVersionUID"), "{err}");
    }

    #[test]
    fn serialization_overhead_is_visible() {
        // Class descriptors make objects much bigger than their data —
        // the Java-weight the paper complains about in §2.1.
        let obj = JValue::object(
            "net.jini.core.lookup.ServiceItem",
            vec![("a".into(), JValue::Int(1))],
        );
        let plain = JValue::Int(1);
        assert!(obj.marshal().len() > plain.marshal().len() * 4);
    }

    #[test]
    fn accessors() {
        let v = JValue::object("C", vec![("f".into(), JValue::Int(7))]);
        assert_eq!(v.field("f").and_then(JValue::as_int), Some(7));
        assert!(v.field("g").is_none());
        assert_eq!(JValue::Str("s".into()).as_str(), Some("s"));
        assert_eq!(JValue::Bool(true).as_bool(), Some(true));
        assert_eq!(JValue::Double(0.5).as_double(), Some(0.5));
        assert_eq!(JValue::Null.as_int(), None);
    }
}
