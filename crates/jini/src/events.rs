//! Remote events (`net.jini.core.event`).
//!
//! Jini's **push** notification model: a listener is itself a remote
//! object whose `notify(RemoteEvent)` the event source invokes over RMI.
//! Experiment E6 contrasts this native push path with the HTTP-polling
//! bridge the paper's SOAP-based VSG is limited to (§4.2).

use crate::jvalue::JValue;
use crate::rmi::{JiniError, ProxyStub, RemoteProxy, RmiExporter};
use parking_lot::Mutex;
use simnet::{Network, Sim};
use std::sync::Arc;

/// A remote event: source-scoped id, monotonically increasing sequence
/// number, and an opaque payload.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteEvent {
    /// The event stream id within the source.
    pub event_id: u64,
    /// Sequence number within the stream.
    pub seq: u64,
    /// Event payload.
    pub payload: JValue,
}

impl RemoteEvent {
    /// Encodes for marshalling.
    pub fn to_jvalue(&self) -> JValue {
        JValue::object(
            "net.jini.core.event.RemoteEvent",
            vec![
                ("eventID".into(), JValue::Int(self.event_id as i64)),
                ("seqNum".into(), JValue::Int(self.seq as i64)),
                ("payload".into(), self.payload.clone()),
            ],
        )
    }

    /// Inverse of [`RemoteEvent::to_jvalue`].
    pub fn from_jvalue(v: &JValue) -> Option<RemoteEvent> {
        Some(RemoteEvent {
            event_id: v.field("eventID")?.as_int()? as u64,
            seq: v.field("seqNum")?.as_int()? as u64,
            payload: v.field("payload")?.clone(),
        })
    }
}

/// Exports a listener callback as a remote object and returns the stub an
/// event source needs.
pub fn export_listener(
    exporter: &RmiExporter,
    mut on_event: impl FnMut(&Sim, RemoteEvent) + Send + 'static,
) -> ProxyStub {
    exporter.export(
        "net.jini.core.event.RemoteEventListener",
        move |sim, method, args| {
            if method != "notify" {
                return Err(format!("listener has no method {method}"));
            }
            let event = args
                .first()
                .and_then(RemoteEvent::from_jvalue)
                .ok_or("notify expects a RemoteEvent")?;
            on_event(sim, event);
            Ok(JValue::Null)
        },
    )
}

/// The source side: tracks registered listeners and pushes events to them
/// over RMI.
#[derive(Clone)]
pub struct EventSource {
    net: Network,
    host: simnet::NodeId,
    event_id: u64,
    listeners: Arc<Mutex<Vec<ProxyStub>>>,
    seq: Arc<Mutex<u64>>,
}

impl EventSource {
    /// Creates an event stream `event_id` fired from `host`.
    pub fn new(net: &Network, host: simnet::NodeId, event_id: u64) -> EventSource {
        EventSource {
            net: net.clone(),
            host,
            event_id,
            listeners: Arc::new(Mutex::new(Vec::new())),
            seq: Arc::new(Mutex::new(0)),
        }
    }

    /// Registers a listener stub.
    pub fn register(&self, listener: ProxyStub) {
        self.listeners.lock().push(listener);
    }

    /// Removes a listener stub.
    pub fn unregister(&self, listener: &ProxyStub) {
        self.listeners.lock().retain(|l| l != listener);
    }

    /// Number of registered listeners.
    pub fn listener_count(&self) -> usize {
        self.listeners.lock().len()
    }

    /// Fires an event to every listener, returning per-listener delivery
    /// results (a dead listener does not prevent delivery to the rest).
    pub fn fire(&self, payload: JValue) -> Vec<Result<(), JiniError>> {
        let seq = {
            let mut s = self.seq.lock();
            *s += 1;
            *s
        };
        let event = RemoteEvent {
            event_id: self.event_id,
            seq,
            payload,
        };
        let listeners = self.listeners.lock().clone();
        listeners
            .into_iter()
            .map(|stub| {
                RemoteProxy::new(&self.net, self.host, stub)
                    .invoke("notify", &[event.to_jvalue()])
                    .map(|_| ())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Sim;

    #[test]
    fn events_push_to_listeners() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let sensor = net.attach("sensor");
        let source = EventSource::new(&net, sensor, 7);

        let exporter = RmiExporter::attach(&net, "pc");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let stub = export_listener(&exporter, move |_, e| seen2.lock().push(e));
        source.register(stub);
        assert_eq!(source.listener_count(), 1);

        let results = source.fire(JValue::Str("motion".into()));
        assert!(results.iter().all(Result::is_ok));
        let results = source.fire(JValue::Str("motion2".into()));
        assert!(results.iter().all(Result::is_ok));

        let seen = seen.lock();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].seq, 1);
        assert_eq!(seen[1].seq, 2);
        assert_eq!(seen[0].event_id, 7);
        assert_eq!(seen[0].payload, JValue::Str("motion".into()));
    }

    #[test]
    fn dead_listener_does_not_block_others() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let sensor = net.attach("sensor");
        let source = EventSource::new(&net, sensor, 1);

        let exporter = RmiExporter::attach(&net, "alive");
        let seen = Arc::new(Mutex::new(0u32));
        let seen2 = seen.clone();
        let alive = export_listener(&exporter, move |_, _| *seen2.lock() += 1);
        let dead = ProxyStub {
            host: simnet::NodeId(999),
            object_id: 1,
            interface: "L".into(),
        };
        source.register(dead);
        source.register(alive);

        let results = source.fire(JValue::Null);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
        assert_eq!(*seen.lock(), 1);
    }

    #[test]
    fn unregister_stops_delivery() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let sensor = net.attach("sensor");
        let source = EventSource::new(&net, sensor, 1);
        let exporter = RmiExporter::attach(&net, "pc");
        let seen = Arc::new(Mutex::new(0u32));
        let seen2 = seen.clone();
        let stub = export_listener(&exporter, move |_, _| *seen2.lock() += 1);
        source.register(stub.clone());
        source.fire(JValue::Null);
        source.unregister(&stub);
        assert_eq!(source.listener_count(), 0);
        source.fire(JValue::Null);
        assert_eq!(*seen.lock(), 1);
    }

    #[test]
    fn event_jvalue_round_trip() {
        let e = RemoteEvent {
            event_id: 3,
            seq: 14,
            payload: JValue::Int(9),
        };
        assert_eq!(RemoteEvent::from_jvalue(&e.to_jvalue()).unwrap(), e);
        assert!(RemoteEvent::from_jvalue(&JValue::Null).is_none());
    }
}
