//! RMI-style remote invocation.
//!
//! Jini service proxies are "downloaded code" that speaks RMI back to its
//! exporter. The simulation keeps the two essential properties: a proxy
//! is a *portable value* (a [`ProxyStub`] that can be marshalled into the
//! lookup service and handed to any client) and invoking it costs a
//! marshal → network round trip → unmarshal.

use crate::jvalue::{JValue, MarshalError};
use parking_lot::Mutex;
use simnet::{Network, NodeId, Protocol, Sim, SimDuration};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// CPU cost of Java serialization, charged on both sides of every call.
#[derive(Debug, Clone, Copy)]
pub struct RmiCost {
    /// Marshalling cost per byte produced.
    pub marshal_ns_per_byte: u64,
    /// Unmarshalling cost per byte consumed (reflection-heavy).
    pub unmarshal_ns_per_byte: u64,
    /// Fixed dispatch overhead per remote call.
    pub dispatch: SimDuration,
}

impl Default for RmiCost {
    fn default() -> Self {
        RmiCost {
            marshal_ns_per_byte: 120,
            unmarshal_ns_per_byte: 250,
            dispatch: SimDuration::from_micros(150),
        }
    }
}

impl RmiCost {
    fn marshal(&self, sim: &Sim, bytes: usize) {
        sim.advance(SimDuration::from_micros(
            bytes as u64 * self.marshal_ns_per_byte / 1_000,
        ));
    }
    fn unmarshal(&self, sim: &Sim, bytes: usize) {
        sim.advance(SimDuration::from_micros(
            bytes as u64 * self.unmarshal_ns_per_byte / 1_000,
        ));
    }
}

/// A marshalled remote reference: where the object lives and which
/// interface it implements. This is what gets stored in the lookup
/// service and "downloaded" by clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyStub {
    /// The exporter's node on the Jini network.
    pub host: NodeId,
    /// The exported object within that node.
    pub object_id: u64,
    /// The remote interface name (e.g. `LaserdiscPlayer`).
    pub interface: String,
}

impl ProxyStub {
    /// Encodes for marshalling.
    pub fn to_jvalue(&self) -> JValue {
        JValue::object(
            "net.jini.jeri.BasicObjectEndpoint",
            vec![
                ("host".into(), JValue::Int(i64::from(self.host.0))),
                ("objectId".into(), JValue::Int(self.object_id as i64)),
                ("interface".into(), JValue::Str(self.interface.clone())),
            ],
        )
    }

    /// Inverse of [`ProxyStub::to_jvalue`].
    pub fn from_jvalue(v: &JValue) -> Option<ProxyStub> {
        Some(ProxyStub {
            host: NodeId(u32::try_from(v.field("host")?.as_int()?).ok()?),
            object_id: v.field("objectId")?.as_int()? as u64,
            interface: v.field("interface")?.as_str()?.to_owned(),
        })
    }
}

/// A remote method implementation.
pub type RemoteObject = Box<dyn FnMut(&Sim, &str, &[JValue]) -> Result<JValue, String> + Send>;

/// Exports objects from one node, dispatching incoming RMI calls to them.
#[derive(Clone)]
pub struct RmiExporter {
    node: NodeId,
    objects: Arc<Mutex<HashMap<u64, RemoteObject>>>,
    next_id: Arc<Mutex<u64>>,
}

impl RmiExporter {
    /// Creates an exporter on a fresh node of `net`.
    pub fn attach(net: &Network, label: &str) -> RmiExporter {
        let node = net.attach(label);
        RmiExporter::on_node(net, node)
    }

    /// Creates an exporter on an existing node, installing its request
    /// handler (replacing any previous one).
    pub fn on_node(net: &Network, node: NodeId) -> RmiExporter {
        let objects: Arc<Mutex<HashMap<u64, RemoteObject>>> = Arc::new(Mutex::new(HashMap::new()));
        let cost = RmiCost::default();
        let objects2 = objects.clone();
        net.set_request_handler(node, move |sim, frame| {
            cost.unmarshal(sim, frame.payload.len());
            sim.advance(cost.dispatch);
            let reply = match decode_call(&frame.payload) {
                Ok((object_id, method, args)) => {
                    let mut objects = objects2.lock();
                    match objects.get_mut(&object_id) {
                        Some(obj) => match obj(sim, &method, &args) {
                            Ok(v) => rmi_ok(v),
                            Err(e) => rmi_err(&e),
                        },
                        None => rmi_err(&format!("no exported object {object_id}")),
                    }
                }
                Err(e) => rmi_err(&format!("unmarshal failed: {e}")),
            };
            cost.marshal(sim, reply.len());
            Ok(reply.into())
        })
        .expect("exporter node exists");
        RmiExporter {
            node,
            objects,
            next_id: Arc::new(Mutex::new(0)),
        }
    }

    /// The node this exporter serves from.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Exports an object, returning the stub clients use to reach it.
    pub fn export(
        &self,
        interface: &str,
        object: impl FnMut(&Sim, &str, &[JValue]) -> Result<JValue, String> + Send + 'static,
    ) -> ProxyStub {
        let mut next = self.next_id.lock();
        *next += 1;
        let object_id = *next;
        self.objects.lock().insert(object_id, Box::new(object));
        ProxyStub {
            host: self.node,
            object_id,
            interface: interface.to_owned(),
        }
    }

    /// Withdraws an exported object.
    pub fn unexport(&self, stub: &ProxyStub) -> bool {
        self.objects.lock().remove(&stub.object_id).is_some()
    }

    /// Number of live exported objects.
    pub fn exported_count(&self) -> usize {
        self.objects.lock().len()
    }
}

impl fmt::Debug for RmiExporter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RmiExporter")
            .field("node", &self.node)
            .field("objects", &self.exported_count())
            .finish()
    }
}

/// A client-side handle for invoking a remote object.
#[derive(Debug, Clone)]
pub struct RemoteProxy {
    stub: ProxyStub,
    net: Network,
    caller: NodeId,
    cost: RmiCost,
}

impl RemoteProxy {
    /// Binds a stub to the calling node.
    pub fn new(net: &Network, caller: NodeId, stub: ProxyStub) -> RemoteProxy {
        RemoteProxy {
            stub,
            net: net.clone(),
            caller,
            cost: RmiCost::default(),
        }
    }

    /// The stub this proxy wraps.
    pub fn stub(&self) -> &ProxyStub {
        &self.stub
    }

    /// Invokes a remote method.
    pub fn invoke(&self, method: &str, args: &[JValue]) -> Result<JValue, JiniError> {
        let sim = self.net.sim().clone();
        let call = JValue::object(
            "RmiCall",
            vec![
                ("objectId".into(), JValue::Int(self.stub.object_id as i64)),
                ("method".into(), JValue::Str(method.to_owned())),
                ("args".into(), JValue::List(args.to_vec())),
            ],
        );
        let payload = call.marshal();
        self.cost.marshal(&sim, payload.len());
        let reply = self
            .net
            .request(self.caller, self.stub.host, Protocol::Jini, payload)
            .map_err(|e| JiniError::Network(e.to_string()))?;
        self.cost.unmarshal(&sim, reply.len());
        let v = JValue::unmarshal(&reply)?;
        match v.field("ok").and_then(JValue::as_bool) {
            Some(true) => Ok(v.field("value").cloned().unwrap_or(JValue::Null)),
            Some(false) => Err(JiniError::Remote(
                v.field("error")
                    .and_then(JValue::as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
            )),
            None => Err(JiniError::Protocol("malformed RMI reply".into())),
        }
    }
}

fn decode_call(data: &[u8]) -> Result<(u64, String, Vec<JValue>), MarshalError> {
    let v = JValue::unmarshal(data)?;
    let object_id = v
        .field("objectId")
        .and_then(JValue::as_int)
        .ok_or_else(|| marshal_err("missing objectId"))? as u64;
    let method = v
        .field("method")
        .and_then(JValue::as_str)
        .ok_or_else(|| marshal_err("missing method"))?
        .to_owned();
    let args = match v.field("args") {
        Some(JValue::List(items)) => items.clone(),
        _ => return Err(marshal_err("missing args")),
    };
    Ok((object_id, method, args))
}

fn marshal_err(m: &str) -> MarshalError {
    MarshalError::new(m)
}

fn rmi_ok(v: JValue) -> Vec<u8> {
    JValue::object(
        "RmiResult",
        vec![("ok".into(), JValue::Bool(true)), ("value".into(), v)],
    )
    .marshal()
}

fn rmi_err(e: &str) -> Vec<u8> {
    JValue::object(
        "RmiResult",
        vec![
            ("ok".into(), JValue::Bool(false)),
            ("error".into(), JValue::Str(e.to_owned())),
        ],
    )
    .marshal()
}

/// Errors surfaced by the Jini layer.
#[derive(Debug, Clone, PartialEq)]
pub enum JiniError {
    /// The network failed.
    Network(String),
    /// Marshalling failed.
    Marshal(MarshalError),
    /// The remote implementation threw.
    Remote(String),
    /// The reply was not valid RMI protocol.
    Protocol(String),
    /// Lookup found no matching service.
    NotFound(String),
    /// The registrar rejected a lease operation.
    Lease(String),
}

impl fmt::Display for JiniError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JiniError::Network(m) => write!(f, "jini network error: {m}"),
            JiniError::Marshal(e) => write!(f, "jini {e}"),
            JiniError::Remote(m) => write!(f, "remote exception: {m}"),
            JiniError::Protocol(m) => write!(f, "jini protocol error: {m}"),
            JiniError::NotFound(m) => write!(f, "no matching service: {m}"),
            JiniError::Lease(m) => write!(f, "lease denied: {m}"),
        }
    }
}

impl std::error::Error for JiniError {}

impl From<MarshalError> for JiniError {
    fn from(e: MarshalError) -> JiniError {
        JiniError::Marshal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Sim, Network) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        (sim, net)
    }

    #[test]
    fn export_invoke_round_trip() {
        let (_sim, net) = setup();
        let exporter = RmiExporter::attach(&net, "laserdisc");
        let stub = exporter.export("LaserdiscPlayer", |_, method, args| match method {
            "play" => Ok(JValue::Str(format!(
                "playing chapter {}",
                args[0].as_int().unwrap_or(0)
            ))),
            _ => Err(format!("no such method {method}")),
        });
        let caller = net.attach("pc");
        let proxy = RemoteProxy::new(&net, caller, stub);
        let got = proxy.invoke("play", &[JValue::Int(3)]).unwrap();
        assert_eq!(got, JValue::Str("playing chapter 3".into()));
        match proxy.invoke("eject", &[]) {
            Err(JiniError::Remote(m)) => assert!(m.contains("eject")),
            other => panic!("expected remote error, got {other:?}"),
        }
    }

    #[test]
    fn invoke_advances_virtual_time() {
        let (sim, net) = setup();
        let exporter = RmiExporter::attach(&net, "svc");
        let stub = exporter.export("X", |_, _, _| Ok(JValue::Null));
        let caller = net.attach("pc");
        let proxy = RemoteProxy::new(&net, caller, stub);
        let before = sim.now();
        proxy.invoke("m", &[]).unwrap();
        assert!(sim.now() > before);
    }

    #[test]
    fn unexported_object_rejects_calls() {
        let (_sim, net) = setup();
        let exporter = RmiExporter::attach(&net, "svc");
        let stub = exporter.export("X", |_, _, _| Ok(JValue::Null));
        assert_eq!(exporter.exported_count(), 1);
        assert!(exporter.unexport(&stub));
        assert!(!exporter.unexport(&stub));
        let caller = net.attach("pc");
        let proxy = RemoteProxy::new(&net, caller, stub);
        assert!(matches!(proxy.invoke("m", &[]), Err(JiniError::Remote(_))));
    }

    #[test]
    fn stub_jvalue_round_trip() {
        let stub = ProxyStub {
            host: NodeId(7),
            object_id: 42,
            interface: "Vcr".into(),
        };
        assert_eq!(ProxyStub::from_jvalue(&stub.to_jvalue()).unwrap(), stub);
        assert!(ProxyStub::from_jvalue(&JValue::Null).is_none());
    }

    #[test]
    fn multiple_objects_dispatch_independently() {
        let (_sim, net) = setup();
        let exporter = RmiExporter::attach(&net, "multi");
        let a = exporter.export("A", |_, _, _| Ok(JValue::Str("a".into())));
        let b = exporter.export("B", |_, _, _| Ok(JValue::Str("b".into())));
        assert_ne!(a.object_id, b.object_id);
        let caller = net.attach("pc");
        assert_eq!(
            RemoteProxy::new(&net, caller, a).invoke("m", &[]).unwrap(),
            JValue::Str("a".into())
        );
        assert_eq!(
            RemoteProxy::new(&net, caller, b).invoke("m", &[]).unwrap(),
            JValue::Str("b".into())
        );
    }

    #[test]
    fn garbage_payload_to_exporter_is_refused_gracefully() {
        let (_sim, net) = setup();
        let exporter = RmiExporter::attach(&net, "svc");
        let _ = exporter.export("X", |_, _, _| Ok(JValue::Null));
        let caller = net.attach("pc");
        let reply = net
            .request(caller, exporter.node(), Protocol::Jini, &b"junk"[..])
            .unwrap();
        let v = JValue::unmarshal(&reply).unwrap();
        assert_eq!(v.field("ok").and_then(JValue::as_bool), Some(false));
    }
}
