//! Multicast discovery.
//!
//! The Jini discovery protocol lets a joining device find lookup services
//! for its groups without configuration: it multicasts a request and
//! collects unicast responses from matching registrars.

use simnet::{Addr, Frame, Network, NodeId, Protocol};

/// Wire prefix of a multicast discovery request (followed by the UTF-8
/// group name).
pub const DISCOVERY_REQ_PREFIX: &[u8] = b"JINI-DISCO-REQ:";

/// Wire prefix of a unicast discovery response (followed by the
/// registrar's node id, big-endian u32).
pub const DISCOVERY_RESP_PREFIX: &[u8] = b"JINI-DISCO-RESP:";

/// Multicasts a discovery request for `group` from `node` and returns the
/// nodes of every registrar that answered.
///
/// Responses arrive in the requester's inbox (synchronously, in the
/// simulation); the caller must not have a frame handler installed on
/// `node` while discovering.
pub fn discover(net: &Network, node: NodeId, group: &str) -> Vec<NodeId> {
    let mut payload = DISCOVERY_REQ_PREFIX.to_vec();
    payload.extend_from_slice(group.as_bytes());
    // Broadcast; losses are possible on lossy media, in which case the
    // caller simply discovers nothing and retries later (as real Jini
    // clients re-announce for 90 seconds).
    let _ = net.send(Frame::new(node, Addr::Broadcast, Protocol::Jini, payload));

    let mut found = Vec::new();
    while let Some(frame) = net.recv(node) {
        if let Some(rest) = frame.payload.strip_prefix(DISCOVERY_RESP_PREFIX) {
            if rest.len() == 4 {
                let id = u32::from_be_bytes(rest.try_into().expect("length checked"));
                found.push(NodeId(id));
            }
        }
    }
    found.sort();
    found.dedup();
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::LookupService;
    use simnet::{Sim, SimDuration};

    #[test]
    fn discovers_matching_registrars_only() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let pub1 = LookupService::start(&net, "reggie1", &["public"], SimDuration::from_secs(5));
        let pub2 = LookupService::start(
            &net,
            "reggie2",
            &["public", "av"],
            SimDuration::from_secs(5),
        );
        let _private =
            LookupService::start(&net, "reggie3", &["private"], SimDuration::from_secs(5));

        let pc = net.attach("pc");
        let found = discover(&net, pc, "public");
        assert_eq!(found, vec![pub1.node(), pub2.node()]);

        let av = discover(&net, pc, "av");
        assert_eq!(av, vec![pub2.node()]);

        let none = discover(&net, pc, "nonexistent");
        assert!(none.is_empty());
    }

    #[test]
    fn discovery_advances_time() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let _reggie = LookupService::start(&net, "reggie", &["public"], SimDuration::from_secs(5));
        let pc = net.attach("pc");
        let before = sim.now();
        discover(&net, pc, "public");
        assert!(sim.now() > before);
    }

    #[test]
    fn discovery_on_a_down_network_finds_nothing() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let _reggie = LookupService::start(&net, "reggie", &["public"], SimDuration::from_secs(5));
        let pc = net.attach("pc");
        net.set_down(true);
        assert!(discover(&net, pc, "public").is_empty());
        net.set_down(false);
        assert_eq!(discover(&net, pc, "public").len(), 1);
    }

    #[test]
    fn foreign_inbox_frames_are_ignored() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let pc = net.attach("pc");
        let other = net.attach("other");
        net.send(Frame::new(other, pc, Protocol::Raw, &b"noise"[..]))
            .unwrap();
        let found = discover(&net, pc, "public");
        assert!(found.is_empty());
    }
}
