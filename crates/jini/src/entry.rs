//! Entry attributes and service templates (`net.jini.core.entry`,
//! `net.jini.core.lookup.ServiceTemplate`).

use crate::id::ServiceId;
use crate::jvalue::JValue;

/// An attribute entry: a named class with string-valued public fields,
/// like `net.jini.lookup.entry.Name` or `Location`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Entry class name.
    pub class: String,
    /// Public fields.
    pub fields: Vec<(String, String)>,
}

impl Entry {
    /// Creates an entry with no fields.
    pub fn new(class: impl Into<String>) -> Entry {
        Entry {
            class: class.into(),
            fields: Vec::new(),
        }
    }

    /// The standard `Name` entry.
    pub fn name(name: &str) -> Entry {
        Entry::new("net.jini.lookup.entry.Name").field("name", name)
    }

    /// The standard `Location` entry.
    pub fn location(room: &str) -> Entry {
        Entry::new("net.jini.lookup.entry.Location").field("room", room)
    }

    /// Adds a field (builder style).
    pub fn field(mut self, name: impl Into<String>, value: impl Into<String>) -> Entry {
        self.fields.push((name.into(), value.into()));
        self
    }

    /// A field value by name.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Jini entry matching: the template matches if classes are equal and
    /// every template field is present with an equal value (fields absent
    /// from the template are wildcards).
    pub fn matches(&self, template: &Entry) -> bool {
        self.class == template.class
            && template
                .fields
                .iter()
                .all(|(k, v)| self.get(k) == Some(v.as_str()))
    }

    /// Encodes for marshalling.
    pub fn to_jvalue(&self) -> JValue {
        JValue::object(
            self.class.clone(),
            self.fields
                .iter()
                .map(|(k, v)| (k.clone(), JValue::Str(v.clone())))
                .collect(),
        )
    }

    /// Inverse of [`Entry::to_jvalue`].
    pub fn from_jvalue(v: &JValue) -> Option<Entry> {
        match v {
            JValue::Object { class, fields } => Some(Entry {
                class: class.clone(),
                fields: fields
                    .iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
                    .collect(),
            }),
            _ => None,
        }
    }
}

/// A lookup template: all present parts must match.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceTemplate {
    /// Match a specific service id, if set.
    pub service_id: Option<ServiceId>,
    /// Interfaces the service must implement (all of them).
    pub interfaces: Vec<String>,
    /// Entry templates the service's attributes must match (all of them).
    pub entries: Vec<Entry>,
}

impl ServiceTemplate {
    /// The match-anything template.
    pub fn any() -> ServiceTemplate {
        ServiceTemplate::default()
    }

    /// A template matching one interface.
    pub fn by_interface(name: &str) -> ServiceTemplate {
        ServiceTemplate {
            interfaces: vec![name.to_owned()],
            ..Default::default()
        }
    }

    /// A template matching a specific id.
    pub fn by_id(id: ServiceId) -> ServiceTemplate {
        ServiceTemplate {
            service_id: Some(id),
            ..Default::default()
        }
    }

    /// Adds an entry requirement (builder style).
    pub fn entry(mut self, e: Entry) -> ServiceTemplate {
        self.entries.push(e);
        self
    }

    /// Adds an interface requirement (builder style).
    pub fn interface(mut self, name: &str) -> ServiceTemplate {
        self.interfaces.push(name.to_owned());
        self
    }

    /// Encodes for marshalling.
    pub fn to_jvalue(&self) -> JValue {
        JValue::object(
            "net.jini.core.lookup.ServiceTemplate",
            vec![
                (
                    "serviceID".into(),
                    match self.service_id {
                        Some(id) => JValue::Bytes(id.to_bytes().to_vec()),
                        None => JValue::Null,
                    },
                ),
                (
                    "serviceTypes".into(),
                    JValue::List(self.interfaces.iter().cloned().map(JValue::Str).collect()),
                ),
                (
                    "attributeSetTemplates".into(),
                    JValue::List(self.entries.iter().map(Entry::to_jvalue).collect()),
                ),
            ],
        )
    }

    /// Inverse of [`ServiceTemplate::to_jvalue`].
    pub fn from_jvalue(v: &JValue) -> Option<ServiceTemplate> {
        let service_id = match v.field("serviceID")? {
            JValue::Null => None,
            JValue::Bytes(b) => Some(ServiceId::from_bytes(b.as_slice().try_into().ok()?)),
            _ => return None,
        };
        let interfaces = match v.field("serviceTypes")? {
            JValue::List(items) => items
                .iter()
                .map(|i| i.as_str().map(str::to_owned))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let entries = match v.field("attributeSetTemplates")? {
            JValue::List(items) => items
                .iter()
                .map(Entry::from_jvalue)
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(ServiceTemplate {
            service_id,
            interfaces,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_matching_semantics() {
        let item = Entry::name("laserdisc").field("lang", "en");
        assert!(item.matches(&Entry::new("net.jini.lookup.entry.Name")));
        assert!(item.matches(&Entry::name("laserdisc")));
        assert!(!item.matches(&Entry::name("vcr")));
        assert!(!item.matches(&Entry::new("other.Class")));
        assert!(item.matches(&Entry::new("net.jini.lookup.entry.Name").field("lang", "en")));
        assert!(!item.matches(&Entry::new("net.jini.lookup.entry.Name").field("lang", "jp")));
    }

    #[test]
    fn entry_jvalue_round_trip() {
        let e = Entry::location("living-room").field("floor", "1");
        assert_eq!(Entry::from_jvalue(&e.to_jvalue()).unwrap(), e);
        assert!(Entry::from_jvalue(&JValue::Int(1)).is_none());
    }

    #[test]
    fn template_jvalue_round_trip() {
        let t = ServiceTemplate::by_interface("LaserdiscPlayer")
            .entry(Entry::name("ld"))
            .interface("MediaPlayer");
        let back = ServiceTemplate::from_jvalue(&t.to_jvalue()).unwrap();
        assert_eq!(back, t);

        let t = ServiceTemplate::by_id(ServiceId::derive(1, 2));
        let back = ServiceTemplate::from_jvalue(&t.to_jvalue()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn standard_entries() {
        assert_eq!(Entry::name("x").get("name"), Some("x"));
        assert_eq!(Entry::location("den").get("room"), Some("den"));
        assert_eq!(Entry::name("x").get("nope"), None);
    }
}
