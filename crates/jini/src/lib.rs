//! # jini — a Jini middleware simulation
//!
//! The Ethernet-dwelling middleware of the paper's prototype (§2.1):
//! "Jini enables various computer devices … to be cooperated. Jini calls
//! the cooperation *federation*." This crate reproduces the five Jini
//! mechanisms the Protocol Conversion Manager interacts with:
//!
//! * **multicast discovery** ([`discover`]) of lookup services,
//! * the **lookup service** ([`LookupService`]) holding [`ServiceItem`]s,
//! * **leases** ([`Lease`]) with renewal and expiry,
//! * **mobile proxies** over **RMI** ([`ProxyStub`], [`RemoteProxy`],
//!   [`RmiExporter`]) with a Java-serialization-like codec ([`JValue`]),
//! * **remote events** ([`EventSource`], [`export_listener`]) — Jini's
//!   native *push* notification path.
//!
//! ```
//! use simnet::{Sim, Network, SimDuration};
//! use jini::{LookupService, RegistrarClient, RmiExporter, ServiceItem,
//!            ServiceTemplate, Entry, JValue, RemoteProxy, discover};
//!
//! let sim = Sim::new(7);
//! let eth = Network::ethernet(&sim);
//! let reggie = LookupService::start(&eth, "reggie", &["public"], SimDuration::from_secs(5));
//!
//! // A device exports its proxy and joins the federation.
//! let exporter = RmiExporter::attach(&eth, "laserdisc");
//! let stub = exporter.export("LaserdiscPlayer", |_, method, _| {
//!     Ok(JValue::Str(format!("did {method}")))
//! });
//! let item = ServiceItem::new(stub, vec!["LaserdiscPlayer".into()],
//!                             vec![Entry::name("laserdisc")]);
//! let pc = eth.attach("pc");
//! let registrars = discover(&eth, pc, "public");
//! let client = RegistrarClient::new(&eth, pc, registrars[0]);
//! client.register(&item, SimDuration::from_secs(30)).unwrap();
//!
//! // A client federates: lookup, download proxy, invoke.
//! let found = client.lookup_one(&ServiceTemplate::by_interface("LaserdiscPlayer")).unwrap();
//! let proxy = RemoteProxy::new(&eth, pc, found.proxy);
//! assert_eq!(proxy.invoke("play", &[]).unwrap(), JValue::Str("did play".into()));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod discovery;
pub mod entry;
pub mod events;
pub mod id;
pub mod join;
pub mod jvalue;
pub mod lease;
pub mod lookup;
pub mod rmi;

pub use discovery::{discover, DISCOVERY_REQ_PREFIX, DISCOVERY_RESP_PREFIX};
pub use entry::{Entry, ServiceTemplate};
pub use events::{export_listener, EventSource, RemoteEvent};
pub use id::ServiceId;
pub use join::{JoinManager, JoinStats};
pub use jvalue::{JValue, MarshalError};
pub use lease::{Lease, LeaseError, LeaseId, LeasePolicy, LeaseTable};
pub use lookup::{LookupService, RegistrarClient, ServiceItem, ServiceRegistration};
pub use rmi::{JiniError, ProxyStub, RemoteProxy, RmiCost, RmiExporter};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_jvalue(depth: u32) -> BoxedStrategy<JValue> {
        let leaf = prop_oneof![
            Just(JValue::Null),
            any::<bool>().prop_map(JValue::Bool),
            any::<i64>().prop_map(JValue::Int),
            (-1.0e12f64..1.0e12).prop_map(JValue::Double),
            "[ -~]{0,24}".prop_map(JValue::Str),
            prop::collection::vec(any::<u8>(), 0..48).prop_map(JValue::Bytes),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        prop_oneof![
            4 => leaf,
            1 => prop::collection::vec(arb_jvalue(depth - 1), 0..4).prop_map(JValue::List),
            1 => ("[A-Za-z][A-Za-z0-9.]{0,16}",
                  prop::collection::vec(("[a-z][a-zA-Z0-9]{0,8}", arb_jvalue(depth - 1)), 0..4))
                .prop_map(|(class, fields)| JValue::object(class, fields)),
        ]
        .boxed()
    }

    proptest! {
        #[test]
        fn marshal_round_trip(v in arb_jvalue(3)) {
            let bytes = v.marshal();
            prop_assert_eq!(JValue::unmarshal(&bytes).unwrap(), v);
        }

        #[test]
        fn unmarshal_never_panics(data in prop::collection::vec(any::<u8>(), 0..200)) {
            let _ = JValue::unmarshal(&data);
        }

        #[test]
        fn truncated_streams_always_error(v in arb_jvalue(2)) {
            let bytes = v.marshal();
            if bytes.len() > 5 {
                // Any strict prefix must fail, never mis-decode.
                let cut = bytes.len() - 1;
                prop_assert!(JValue::unmarshal(&bytes[..cut]).is_err());
            }
        }

        #[test]
        fn entry_matching_is_reflexive(
            class in "[A-Za-z.]{1,16}",
            fields in prop::collection::btree_map("[a-z]{1,6}", "[a-z0-9 ]{0,8}", 0..4),
        ) {
            let mut e = Entry::new(class);
            for (k, v) in fields {
                e = e.field(k, v);
            }
            prop_assert!(e.matches(&e));
            // Class-only template always matches.
            let class_only = Entry::new(e.class.clone());
            prop_assert!(e.matches(&class_only));
        }
    }
}
