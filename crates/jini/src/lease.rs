//! Leases (`net.jini.core.lease`).
//!
//! Jini's self-healing mechanism: every registration is granted for a
//! limited time and must be renewed, so crashed services vanish from the
//! lookup service automatically. The PCM relies on this when it mirrors
//! Jini services into the Virtual Service Repository.

use simnet::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;

/// Identifies a granted lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeaseId(pub u64);

impl fmt::Display for LeaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lease#{}", self.0)
    }
}

/// A granted lease: an id plus its absolute expiration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The lease id.
    pub id: LeaseId,
    /// When it expires.
    pub expiration: SimTime,
}

impl Lease {
    /// True if the lease is still live at `now`.
    pub fn is_live(&self, now: SimTime) -> bool {
        self.expiration > now
    }

    /// Time remaining at `now` (zero if expired).
    pub fn remaining(&self, now: SimTime) -> SimDuration {
        self.expiration - now
    }
}

/// The grantor's policy.
#[derive(Debug, Clone, Copy)]
pub struct LeasePolicy {
    /// The longest duration ever granted, regardless of request.
    pub max_duration: SimDuration,
    /// Granted when the requester asks for `ANY` (zero).
    pub default_duration: SimDuration,
}

impl Default for LeasePolicy {
    fn default() -> Self {
        LeasePolicy {
            max_duration: SimDuration::from_secs(300),
            default_duration: SimDuration::from_secs(30),
        }
    }
}

/// The grantor-side lease table.
#[derive(Debug, Default)]
pub struct LeaseTable {
    leases: HashMap<LeaseId, SimTime>,
    next_id: u64,
    policy: LeasePolicy,
}

/// Why a renewal or cancellation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseError {
    /// The lease is unknown or already expired.
    Unknown(LeaseId),
}

impl fmt::Display for LeaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaseError::Unknown(id) => write!(f, "unknown or expired {id}"),
        }
    }
}

impl std::error::Error for LeaseError {}

impl LeaseTable {
    /// Creates a table with the given policy.
    pub fn new(policy: LeasePolicy) -> Self {
        LeaseTable {
            policy,
            ..Default::default()
        }
    }

    /// Grants a lease for `requested` (clamped to policy), starting at `now`.
    /// A zero request means "any duration" and receives the default.
    pub fn grant(&mut self, requested: SimDuration, now: SimTime) -> Lease {
        let duration = if requested.is_zero() {
            self.policy.default_duration
        } else {
            requested.min(self.policy.max_duration)
        };
        self.next_id += 1;
        let id = LeaseId(self.next_id);
        let expiration = now + duration;
        self.leases.insert(id, expiration);
        Lease { id, expiration }
    }

    /// Renews a live lease for `requested` more time from `now`.
    pub fn renew(
        &mut self,
        id: LeaseId,
        requested: SimDuration,
        now: SimTime,
    ) -> Result<Lease, LeaseError> {
        match self.leases.get_mut(&id) {
            Some(exp) if *exp > now => {
                let duration = if requested.is_zero() {
                    self.policy.default_duration
                } else {
                    requested.min(self.policy.max_duration)
                };
                *exp = now + duration;
                Ok(Lease {
                    id,
                    expiration: *exp,
                })
            }
            _ => Err(LeaseError::Unknown(id)),
        }
    }

    /// Cancels a lease.
    pub fn cancel(&mut self, id: LeaseId) -> Result<(), LeaseError> {
        self.leases
            .remove(&id)
            .map(|_| ())
            .ok_or(LeaseError::Unknown(id))
    }

    /// True if `id` is granted and unexpired at `now`.
    pub fn is_live(&self, id: LeaseId, now: SimTime) -> bool {
        self.leases.get(&id).is_some_and(|exp| *exp > now)
    }

    /// Removes and returns every lease expired at `now`.
    pub fn collect_expired(&mut self, now: SimTime) -> Vec<LeaseId> {
        let expired: Vec<LeaseId> = self
            .leases
            .iter()
            .filter(|(_, exp)| **exp <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in &expired {
            self.leases.remove(id);
        }
        expired
    }

    /// Number of live leases (including any not yet swept).
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// True if no leases are outstanding.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1_000)
    }

    #[test]
    fn grant_clamps_to_policy() {
        let mut table = LeaseTable::new(LeasePolicy {
            max_duration: SimDuration::from_millis(100),
            default_duration: SimDuration::from_millis(10),
        });
        let l = table.grant(SimDuration::from_secs(999), t(0));
        assert_eq!(l.expiration, t(100));
        let l = table.grant(SimDuration::ZERO, t(0));
        assert_eq!(l.expiration, t(10));
        let l = table.grant(SimDuration::from_millis(5), t(0));
        assert_eq!(l.expiration, t(5));
    }

    #[test]
    fn renewal_extends_from_now() {
        let mut table = LeaseTable::new(LeasePolicy::default());
        let l = table.grant(SimDuration::from_millis(50), t(0));
        let renewed = table
            .renew(l.id, SimDuration::from_millis(50), t(40))
            .unwrap();
        assert_eq!(renewed.expiration, t(90));
        assert!(table.is_live(l.id, t(80)));
    }

    #[test]
    fn expired_lease_cannot_renew() {
        let mut table = LeaseTable::new(LeasePolicy::default());
        let l = table.grant(SimDuration::from_millis(10), t(0));
        assert_eq!(
            table.renew(l.id, SimDuration::from_millis(10), t(11)),
            Err(LeaseError::Unknown(l.id))
        );
    }

    #[test]
    fn cancel_and_unknown() {
        let mut table = LeaseTable::new(LeasePolicy::default());
        let l = table.grant(SimDuration::from_millis(10), t(0));
        assert!(table.cancel(l.id).is_ok());
        assert!(table.cancel(l.id).is_err());
        assert!(!table.is_live(l.id, t(1)));
    }

    #[test]
    fn sweep_collects_only_expired() {
        let mut table = LeaseTable::new(LeasePolicy::default());
        let a = table.grant(SimDuration::from_millis(10), t(0));
        let b = table.grant(SimDuration::from_millis(100), t(0));
        let expired = table.collect_expired(t(50));
        assert_eq!(expired, vec![a.id]);
        assert_eq!(table.len(), 1);
        assert!(table.is_live(b.id, t(50)));
        assert!(table.collect_expired(t(50)).is_empty());
    }

    #[test]
    fn lease_helpers() {
        let l = Lease {
            id: LeaseId(1),
            expiration: t(100),
        };
        assert!(l.is_live(t(99)));
        assert!(!l.is_live(t(100)));
        assert_eq!(l.remaining(t(40)), SimDuration::from_millis(60));
        assert_eq!(l.remaining(t(200)), SimDuration::ZERO);
    }
}
