//! Service identity.

use std::fmt;

/// A Jini `ServiceID`: a 128-bit universally unique identifier assigned
/// by the lookup service on first registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(pub u128);

impl ServiceId {
    /// Derives an id deterministically from a registrar id and a counter
    /// (the simulation's stand-in for the spec's secure random bits).
    pub fn derive(registrar: u64, counter: u64) -> ServiceId {
        // Mix with two odd constants (splitmix-style) so ids look opaque.
        let hi = (registrar ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let lo = (counter ^ 0x94D0_49BB_1331_11EB).wrapping_mul(0x2545_F491_4F6C_DD1D);
        ServiceId((u128::from(hi) << 64) | u128::from(lo))
    }

    /// Big-endian byte representation (for marshalling).
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Inverse of [`ServiceId::to_bytes`].
    pub fn from_bytes(b: [u8; 16]) -> ServiceId {
        ServiceId(u128::from_be_bytes(b))
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // UUID-style grouping.
        let b = self.to_bytes();
        write!(
            f,
            "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_distinct() {
        let a = ServiceId::derive(1, 1);
        assert_eq!(a, ServiceId::derive(1, 1));
        assert_ne!(a, ServiceId::derive(1, 2));
        assert_ne!(a, ServiceId::derive(2, 1));
    }

    #[test]
    fn byte_round_trip() {
        let id = ServiceId::derive(42, 7);
        assert_eq!(ServiceId::from_bytes(id.to_bytes()), id);
    }

    #[test]
    fn display_is_uuid_shaped() {
        let s = ServiceId::derive(1, 1).to_string();
        assert_eq!(s.len(), 36);
        assert_eq!(s.chars().filter(|c| *c == '-').count(), 4);
    }
}
