//! The join manager (`net.jini.lookup.JoinManager`).
//!
//! Jini's standard helper for well-behaved services: it registers a
//! service item with the lookup service, renews the lease on a schedule,
//! and re-registers from scratch if the registration is ever lost (a
//! registrar restart, a missed renewal window). Devices built on it
//! survive the failures that `crate::lease` makes realistic.

use crate::lookup::{RegistrarClient, ServiceItem, ServiceRegistration};
use crate::rmi::JiniError;
use parking_lot::Mutex;
use simnet::{Network, RepeatHandle, SimDuration};
use std::sync::Arc;

/// Counters describing the join manager's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Successful lease renewals.
    pub renewals: u64,
    /// Full re-registrations (after a lost lease).
    pub reregistrations: u64,
}

struct JoinState {
    registration: Option<ServiceRegistration>,
    stats: JoinStats,
}

/// Keeps one service item registered, forever.
pub struct JoinManager {
    state: Arc<Mutex<JoinState>>,
    handle: RepeatHandle,
}

impl JoinManager {
    /// Registers `item` through `client` with leases of `lease` duration,
    /// maintaining the registration every `lease / 2` of virtual time.
    pub fn start(
        net: &Network,
        client: RegistrarClient,
        item: ServiceItem,
        lease: SimDuration,
    ) -> Result<JoinManager, JiniError> {
        let registration = client.register(&item, lease)?;
        let state = Arc::new(Mutex::new(JoinState {
            registration: Some(registration),
            stats: JoinStats::default(),
        }));

        let state2 = state.clone();
        let period = lease / 2;
        let handle = net
            .sim()
            .every(period.max(SimDuration::from_millis(1)), move |sim| {
                let current = state2.lock().registration;
                let Some(reg) = current else { return };
                match client.renew(reg.lease.id, lease) {
                    Ok(renewed) => {
                        let mut st = state2.lock();
                        st.stats.renewals += 1;
                        st.registration = Some(ServiceRegistration {
                            service_id: reg.service_id,
                            lease: renewed,
                        });
                    }
                    Err(_) => {
                        // Lost (expired lease, registrar wiped): rejoin with
                        // the same service id so clients keep working.
                        let mut fresh = item.clone();
                        fresh.service_id = reg.service_id;
                        match client.register(&fresh, lease) {
                            Ok(new_reg) => {
                                let mut st = state2.lock();
                                st.stats.reregistrations += 1;
                                st.registration = Some(new_reg);
                                sim.trace(
                                    "join-manager",
                                    format!("re-registered {}", reg.service_id),
                                );
                            }
                            Err(e) => {
                                sim.trace("join-manager", format!("rejoin failed: {e}"));
                            }
                        }
                    }
                }
            });
        Ok(JoinManager { state, handle })
    }

    /// The current registration, if live.
    pub fn registration(&self) -> Option<ServiceRegistration> {
        self.state.lock().registration
    }

    /// Renewal/re-registration counters.
    pub fn stats(&self) -> JoinStats {
        self.state.lock().stats
    }

    /// Stops maintaining the registration (the lease will lapse).
    pub fn terminate(&self) {
        self.handle.cancel();
        self.state.lock().registration = None;
    }
}

impl std::fmt::Debug for JoinManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinManager")
            .field("registered", &self.registration().is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::discover;
    use crate::entry::{Entry, ServiceTemplate};
    use crate::jvalue::JValue;
    use crate::lookup::LookupService;
    use crate::rmi::RmiExporter;
    use simnet::Sim;

    fn world() -> (Sim, Network, LookupService, RegistrarClient, ServiceItem) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let reggie = LookupService::start(&net, "reggie", &["public"], SimDuration::from_secs(5));
        let exporter = RmiExporter::attach(&net, "device");
        let stub = exporter.export("Vcr", |_, _, _| Ok(JValue::Null));
        let item = ServiceItem::new(stub, vec!["Vcr".into()], vec![Entry::name("vcr")]);
        let node = net.attach("joiner");
        let registrars = discover(&net, node, "public");
        let client = RegistrarClient::new(&net, node, registrars[0]);
        (sim, net, reggie, client, item)
    }

    #[test]
    fn join_manager_keeps_service_alive_indefinitely() {
        let (sim, net, reggie, client, item) = world();
        let jm =
            JoinManager::start(&net, client.clone(), item, SimDuration::from_secs(30)).unwrap();
        // Far beyond the 30 s lease, the service is still registered.
        sim.run_for(SimDuration::from_secs(600));
        assert_eq!(reggie.registered_count(), 1);
        assert!(jm.stats().renewals >= 30);
        assert_eq!(jm.stats().reregistrations, 0);
        assert!(client
            .lookup_one(&ServiceTemplate::by_interface("Vcr"))
            .is_ok());
    }

    #[test]
    fn join_manager_recovers_from_cancelled_lease() {
        let (sim, net, reggie, client, item) = world();
        let jm =
            JoinManager::start(&net, client.clone(), item, SimDuration::from_secs(30)).unwrap();
        // Somebody cancels the lease out from under the manager (a
        // registrar wipe, administratively removed).
        let reg = jm.registration().unwrap();
        client.cancel(reg.lease.id).unwrap();
        assert_eq!(reggie.registered_count(), 0);

        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(reggie.registered_count(), 1, "rejoined");
        assert!(jm.stats().reregistrations >= 1);
        // The same service id survived the rejoin.
        let found = client
            .lookup_one(&ServiceTemplate::by_interface("Vcr"))
            .unwrap();
        assert_eq!(found.service_id, reg.service_id);
    }

    #[test]
    fn terminate_lets_the_lease_lapse() {
        let (sim, net, reggie, client, item) = world();
        let jm = JoinManager::start(&net, client, item, SimDuration::from_secs(30)).unwrap();
        jm.terminate();
        assert!(jm.registration().is_none());
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(reggie.registered_count(), 0);
    }
}
