//! The lookup service (the `reggie` registrar) and its client protocol.
//!
//! Jini's rendezvous point: services register [`ServiceItem`]s under
//! leases; clients match them with [`ServiceTemplate`]s and receive the
//! marshalled proxies.

use crate::discovery::{DISCOVERY_REQ_PREFIX, DISCOVERY_RESP_PREFIX};
use crate::entry::{Entry, ServiceTemplate};
use crate::id::ServiceId;
use crate::jvalue::JValue;
use crate::lease::{Lease, LeaseId, LeasePolicy, LeaseTable};
use crate::rmi::{JiniError, ProxyStub};
use parking_lot::Mutex;
use simnet::{Frame, Network, NodeId, Protocol, SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A registered service: identity, interfaces, attributes and the
/// marshalled proxy clients download.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceItem {
    /// The service id (zero until first registration assigns one).
    pub service_id: ServiceId,
    /// Remote interfaces the proxy implements.
    pub interfaces: Vec<String>,
    /// Attribute entries.
    pub entries: Vec<Entry>,
    /// The marshalled proxy.
    pub proxy: ProxyStub,
}

impl ServiceItem {
    /// Creates an unregistered item (id zero).
    pub fn new(proxy: ProxyStub, interfaces: Vec<String>, entries: Vec<Entry>) -> ServiceItem {
        ServiceItem {
            service_id: ServiceId(0),
            interfaces,
            entries,
            proxy,
        }
    }

    /// True if this item matches `template`.
    pub fn matches(&self, template: &ServiceTemplate) -> bool {
        if let Some(id) = template.service_id {
            if id != self.service_id {
                return false;
            }
        }
        template
            .interfaces
            .iter()
            .all(|i| self.interfaces.contains(i))
            && template
                .entries
                .iter()
                .all(|t| self.entries.iter().any(|e| e.matches(t)))
    }

    /// Encodes for marshalling.
    pub fn to_jvalue(&self) -> JValue {
        JValue::object(
            "net.jini.core.lookup.ServiceItem",
            vec![
                (
                    "serviceID".into(),
                    JValue::Bytes(self.service_id.to_bytes().to_vec()),
                ),
                (
                    "interfaces".into(),
                    JValue::List(self.interfaces.iter().cloned().map(JValue::Str).collect()),
                ),
                (
                    "attributeSets".into(),
                    JValue::List(self.entries.iter().map(Entry::to_jvalue).collect()),
                ),
                ("service".into(), self.proxy.to_jvalue()),
            ],
        )
    }

    /// Inverse of [`ServiceItem::to_jvalue`].
    pub fn from_jvalue(v: &JValue) -> Option<ServiceItem> {
        let service_id = match v.field("serviceID")? {
            JValue::Bytes(b) => ServiceId::from_bytes(b.as_slice().try_into().ok()?),
            _ => return None,
        };
        let interfaces = match v.field("interfaces")? {
            JValue::List(items) => items
                .iter()
                .map(|i| i.as_str().map(str::to_owned))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let entries = match v.field("attributeSets")? {
            JValue::List(items) => items
                .iter()
                .map(Entry::from_jvalue)
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let proxy = ProxyStub::from_jvalue(v.field("service")?)?;
        Some(ServiceItem {
            service_id,
            interfaces,
            entries,
            proxy,
        })
    }
}

/// A successful registration: the assigned id and the granted lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceRegistration {
    /// The assigned service id.
    pub service_id: ServiceId,
    /// The granted lease.
    pub lease: Lease,
}

struct RegistrarState {
    items: HashMap<ServiceId, (ServiceItem, LeaseId)>,
    by_lease: HashMap<LeaseId, ServiceId>,
    leases: LeaseTable,
    next_counter: u64,
}

/// A running lookup service.
#[derive(Clone)]
pub struct LookupService {
    node: NodeId,
    groups: Vec<String>,
    state: Arc<Mutex<RegistrarState>>,
}

impl LookupService {
    /// Starts a registrar on a fresh node of `net`, serving `groups`
    /// (e.g. `["public"]`), with an expiry sweep every `sweep` of virtual
    /// time.
    pub fn start(net: &Network, label: &str, groups: &[&str], sweep: SimDuration) -> LookupService {
        let node = net.attach(label);
        let registrar_id = u64::from(node.0) + 1;
        let state = Arc::new(Mutex::new(RegistrarState {
            items: HashMap::new(),
            by_lease: HashMap::new(),
            leases: LeaseTable::new(LeasePolicy::default()),
            next_counter: 0,
        }));
        let svc = LookupService {
            node,
            groups: groups.iter().map(|s| (*s).to_owned()).collect(),
            state,
        };

        // Unicast protocol: register / lookup / renew / cancel.
        let state2 = svc.state.clone();
        let registrar_id2 = registrar_id;
        net.set_request_handler(node, move |sim, frame| {
            sim.advance(SimDuration::from_micros(100)); // registrar CPU
            let reply = handle_request(&state2, registrar_id2, sim.now(), &frame.payload);
            Ok(reply.into())
        })
        .expect("registrar node exists");

        // Multicast discovery: answer group-matching broadcasts.
        let groups2 = svc.groups.clone();
        let net2 = net.clone();
        net.set_frame_handler(node, move |_sim, frame| {
            let payload = &frame.payload;
            if let Some(group) = payload
                .strip_prefix(DISCOVERY_REQ_PREFIX)
                .and_then(|g| std::str::from_utf8(g).ok())
            {
                if groups2.iter().any(|g| g == group) {
                    let mut resp = DISCOVERY_RESP_PREFIX.to_vec();
                    resp.extend_from_slice(&node.0.to_be_bytes());
                    let _ = net2.send(Frame::new(node, frame.src, Protocol::Jini, resp));
                }
            }
        })
        .expect("registrar node exists");

        // Lease expiry sweep.
        let state3 = svc.state.clone();
        net.sim().every(sweep, move |sim| {
            let mut st = state3.lock();
            let now = sim.now();
            for lease_id in st.leases.collect_expired(now) {
                if let Some(id) = st.by_lease.remove(&lease_id) {
                    st.items.remove(&id);
                    sim.trace("reggie", format!("service {id} expired"));
                }
            }
        });

        svc
    }

    /// The registrar's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The groups this registrar serves.
    pub fn groups(&self) -> &[String] {
        &self.groups
    }

    /// Number of currently registered services (unexpired, pre-sweep).
    pub fn registered_count(&self) -> usize {
        self.state.lock().items.len()
    }
}

impl fmt::Debug for LookupService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LookupService")
            .field("node", &self.node)
            .field("groups", &self.groups)
            .field("registered", &self.registered_count())
            .finish()
    }
}

fn handle_request(
    state: &Mutex<RegistrarState>,
    registrar_id: u64,
    now: SimTime,
    payload: &[u8],
) -> Vec<u8> {
    let req = match JValue::unmarshal(payload) {
        Ok(v) => v,
        Err(e) => return reggie_err(&format!("bad request: {e}")),
    };
    let class = match &req {
        JValue::Object { class, .. } => class.as_str(),
        _ => return reggie_err("request must be an object"),
    };
    let mut st = state.lock();
    match class {
        "ReggieRegister" => {
            let item = match req.field("item").and_then(ServiceItem::from_jvalue) {
                Some(i) => i,
                None => return reggie_err("malformed item"),
            };
            let requested = SimDuration::from_micros(
                req.field("durationUs")
                    .and_then(JValue::as_int)
                    .unwrap_or(0)
                    .max(0) as u64,
            );
            let mut item = item;
            if item.service_id == ServiceId(0) {
                st.next_counter += 1;
                item.service_id = ServiceId::derive(registrar_id, st.next_counter);
            }
            // Re-registration of the same id replaces the old item.
            if let Some((_, old_lease)) = st.items.remove(&item.service_id) {
                st.by_lease.remove(&old_lease);
                let _ = st.leases.cancel(old_lease);
            }
            let lease = st.leases.grant(requested, now);
            st.by_lease.insert(lease.id, item.service_id);
            let id = item.service_id;
            st.items.insert(id, (item, lease.id));
            JValue::object(
                "ReggieRegistered",
                vec![
                    ("serviceID".into(), JValue::Bytes(id.to_bytes().to_vec())),
                    ("leaseId".into(), JValue::Int(lease.id.0 as i64)),
                    (
                        "expirationUs".into(),
                        JValue::Int(lease.expiration.as_micros() as i64),
                    ),
                ],
            )
            .marshal()
        }
        "ReggieLookup" => {
            let template = match req.field("template").and_then(ServiceTemplate::from_jvalue) {
                Some(t) => t,
                None => return reggie_err("malformed template"),
            };
            let max = req
                .field("max")
                .and_then(JValue::as_int)
                .unwrap_or(i64::MAX);
            let mut matches: Vec<&ServiceItem> = st
                .items
                .values()
                .filter(|(_, lease)| st.leases.is_live(*lease, now))
                .map(|(item, _)| item)
                .filter(|item| item.matches(&template))
                .collect();
            matches.sort_by_key(|i| i.service_id);
            matches.truncate(usize::try_from(max).unwrap_or(usize::MAX));
            JValue::object(
                "ReggieMatches",
                vec![(
                    "items".into(),
                    JValue::List(matches.iter().map(|i| i.to_jvalue()).collect()),
                )],
            )
            .marshal()
        }
        "ReggieRenew" => {
            let lease_id = LeaseId(
                req.field("leaseId")
                    .and_then(JValue::as_int)
                    .unwrap_or(-1)
                    .max(0) as u64,
            );
            let requested = SimDuration::from_micros(
                req.field("durationUs")
                    .and_then(JValue::as_int)
                    .unwrap_or(0)
                    .max(0) as u64,
            );
            match st.leases.renew(lease_id, requested, now) {
                Ok(lease) => JValue::object(
                    "ReggieRenewed",
                    vec![(
                        "expirationUs".into(),
                        JValue::Int(lease.expiration.as_micros() as i64),
                    )],
                )
                .marshal(),
                Err(e) => reggie_err(&e.to_string()),
            }
        }
        "ReggieCancel" => {
            let lease_id = LeaseId(
                req.field("leaseId")
                    .and_then(JValue::as_int)
                    .unwrap_or(-1)
                    .max(0) as u64,
            );
            if let Some(id) = st.by_lease.remove(&lease_id) {
                st.items.remove(&id);
            }
            match st.leases.cancel(lease_id) {
                Ok(()) => JValue::object("ReggieCancelled", vec![]).marshal(),
                Err(e) => reggie_err(&e.to_string()),
            }
        }
        other => reggie_err(&format!("unknown request {other}")),
    }
}

fn reggie_err(m: &str) -> Vec<u8> {
    JValue::object(
        "ReggieError",
        vec![("message".into(), JValue::Str(m.to_owned()))],
    )
    .marshal()
}

/// The client side of the registrar protocol.
#[derive(Debug, Clone)]
pub struct RegistrarClient {
    net: Network,
    node: NodeId,
    registrar: NodeId,
}

impl RegistrarClient {
    /// Binds a client on `node` to the registrar at `registrar`.
    pub fn new(net: &Network, node: NodeId, registrar: NodeId) -> RegistrarClient {
        RegistrarClient {
            net: net.clone(),
            node,
            registrar,
        }
    }

    fn call(&self, req: JValue) -> Result<JValue, JiniError> {
        let reply = self
            .net
            .request(self.node, self.registrar, Protocol::Jini, req.marshal())
            .map_err(|e| JiniError::Network(e.to_string()))?;
        let v = JValue::unmarshal(&reply)?;
        if let JValue::Object { class, .. } = &v {
            if class == "ReggieError" {
                return Err(JiniError::Lease(
                    v.field("message")
                        .and_then(JValue::as_str)
                        .unwrap_or("")
                        .to_owned(),
                ));
            }
        }
        Ok(v)
    }

    /// Registers `item`, requesting a lease of `duration` (zero = any).
    pub fn register(
        &self,
        item: &ServiceItem,
        duration: SimDuration,
    ) -> Result<ServiceRegistration, JiniError> {
        let req = JValue::object(
            "ReggieRegister",
            vec![
                ("item".into(), item.to_jvalue()),
                (
                    "durationUs".into(),
                    JValue::Int(duration.as_micros() as i64),
                ),
            ],
        );
        let v = self.call(req)?;
        let service_id = match v.field("serviceID") {
            Some(JValue::Bytes(b)) => ServiceId::from_bytes(
                b.as_slice()
                    .try_into()
                    .map_err(|_| JiniError::Protocol("bad serviceID".into()))?,
            ),
            _ => return Err(JiniError::Protocol("registration reply missing id".into())),
        };
        let lease = Lease {
            id: LeaseId(
                v.field("leaseId")
                    .and_then(JValue::as_int)
                    .unwrap_or(0)
                    .max(0) as u64,
            ),
            expiration: SimTime::from_micros(
                v.field("expirationUs")
                    .and_then(JValue::as_int)
                    .unwrap_or(0)
                    .max(0) as u64,
            ),
        };
        Ok(ServiceRegistration { service_id, lease })
    }

    /// Finds up to `max` services matching `template`.
    pub fn lookup(
        &self,
        template: &ServiceTemplate,
        max: usize,
    ) -> Result<Vec<ServiceItem>, JiniError> {
        let req = JValue::object(
            "ReggieLookup",
            vec![
                ("template".into(), template.to_jvalue()),
                ("max".into(), JValue::Int(max as i64)),
            ],
        );
        let v = self.call(req)?;
        match v.field("items") {
            Some(JValue::List(items)) => items
                .iter()
                .map(|i| {
                    ServiceItem::from_jvalue(i)
                        .ok_or_else(|| JiniError::Protocol("bad item in reply".into()))
                })
                .collect(),
            _ => Err(JiniError::Protocol("lookup reply missing items".into())),
        }
    }

    /// Finds exactly one match, erroring on zero.
    pub fn lookup_one(&self, template: &ServiceTemplate) -> Result<ServiceItem, JiniError> {
        self.lookup(template, 1)?
            .into_iter()
            .next()
            .ok_or_else(|| JiniError::NotFound(format!("{template:?}")))
    }

    /// Renews a lease.
    pub fn renew(&self, lease: LeaseId, duration: SimDuration) -> Result<Lease, JiniError> {
        let req = JValue::object(
            "ReggieRenew",
            vec![
                ("leaseId".into(), JValue::Int(lease.0 as i64)),
                (
                    "durationUs".into(),
                    JValue::Int(duration.as_micros() as i64),
                ),
            ],
        );
        let v = self.call(req)?;
        Ok(Lease {
            id: lease,
            expiration: SimTime::from_micros(
                v.field("expirationUs")
                    .and_then(JValue::as_int)
                    .unwrap_or(0)
                    .max(0) as u64,
            ),
        })
    }

    /// Cancels a lease (withdrawing the service).
    pub fn cancel(&self, lease: LeaseId) -> Result<(), JiniError> {
        let req = JValue::object(
            "ReggieCancel",
            vec![("leaseId".into(), JValue::Int(lease.0 as i64))],
        );
        self.call(req).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmi::RmiExporter;
    use simnet::Sim;

    fn world() -> (Sim, Network, LookupService) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let reggie = LookupService::start(&net, "reggie", &["public"], SimDuration::from_secs(5));
        (sim, net, reggie)
    }

    fn export_dummy(net: &Network, label: &str, iface: &str) -> ServiceItem {
        let exporter = RmiExporter::attach(net, label);
        let stub = exporter.export(iface, |_, _, _| Ok(JValue::Null));
        ServiceItem::new(stub, vec![iface.to_owned()], vec![Entry::name(label)])
    }

    #[test]
    fn register_assigns_id_and_lease() {
        let (_sim, net, reggie) = world();
        let item = export_dummy(&net, "vcr", "VcrControl");
        let client = RegistrarClient::new(&net, net.attach("pc"), reggie.node());
        let reg = client.register(&item, SimDuration::from_secs(30)).unwrap();
        assert_ne!(reg.service_id, ServiceId(0));
        assert!(reg.lease.expiration > SimTime::ZERO);
        assert_eq!(reggie.registered_count(), 1);
    }

    #[test]
    fn lookup_by_interface_and_entry() {
        let (_sim, net, reggie) = world();
        let client = RegistrarClient::new(&net, net.attach("pc"), reggie.node());
        client
            .register(
                &export_dummy(&net, "vcr", "VcrControl"),
                SimDuration::from_secs(30),
            )
            .unwrap();
        client
            .register(
                &export_dummy(&net, "ld", "LaserdiscPlayer"),
                SimDuration::from_secs(30),
            )
            .unwrap();

        let all = client.lookup(&ServiceTemplate::any(), 10).unwrap();
        assert_eq!(all.len(), 2);

        let lds = client
            .lookup(&ServiceTemplate::by_interface("LaserdiscPlayer"), 10)
            .unwrap();
        assert_eq!(lds.len(), 1);
        assert_eq!(lds[0].entries[0].get("name"), Some("ld"));

        let by_name = client
            .lookup(&ServiceTemplate::any().entry(Entry::name("vcr")), 10)
            .unwrap();
        assert_eq!(by_name.len(), 1);

        let one = client
            .lookup_one(&ServiceTemplate::by_id(lds[0].service_id))
            .unwrap();
        assert_eq!(one.service_id, lds[0].service_id);

        assert!(client
            .lookup_one(&ServiceTemplate::by_interface("Toaster"))
            .is_err());
    }

    #[test]
    fn expired_services_disappear() {
        let (sim, net, reggie) = world();
        let client = RegistrarClient::new(&net, net.attach("pc"), reggie.node());
        client
            .register(
                &export_dummy(&net, "vcr", "Vcr"),
                SimDuration::from_millis(500),
            )
            .unwrap();
        // Before expiry the lookup finds it.
        assert_eq!(client.lookup(&ServiceTemplate::any(), 10).unwrap().len(), 1);
        // After expiry (sweep at 5s) it is gone.
        sim.run_for(SimDuration::from_secs(6));
        assert_eq!(reggie.registered_count(), 0);
        assert!(client
            .lookup(&ServiceTemplate::any(), 10)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn renewal_keeps_service_alive() {
        let (sim, net, reggie) = world();
        let client = RegistrarClient::new(&net, net.attach("pc"), reggie.node());
        let reg = client
            .register(&export_dummy(&net, "vcr", "Vcr"), SimDuration::from_secs(2))
            .unwrap();
        sim.run_for(SimDuration::from_secs(1));
        client
            .renew(reg.lease.id, SimDuration::from_secs(2))
            .unwrap();
        sim.run_for(SimDuration::from_millis(1_500));
        // Original lease would have expired at 2s; renewal carried it to 3s.
        assert_eq!(client.lookup(&ServiceTemplate::any(), 10).unwrap().len(), 1);
        sim.run_for(SimDuration::from_secs(6));
        assert_eq!(reggie.registered_count(), 0);
    }

    #[test]
    fn cancel_withdraws_immediately() {
        let (_sim, net, reggie) = world();
        let client = RegistrarClient::new(&net, net.attach("pc"), reggie.node());
        let reg = client
            .register(
                &export_dummy(&net, "vcr", "Vcr"),
                SimDuration::from_secs(30),
            )
            .unwrap();
        client.cancel(reg.lease.id).unwrap();
        assert!(client
            .lookup(&ServiceTemplate::any(), 10)
            .unwrap()
            .is_empty());
        assert!(client.cancel(reg.lease.id).is_err());
    }

    #[test]
    fn reregistration_with_same_id_replaces() {
        let (_sim, net, reggie) = world();
        let client = RegistrarClient::new(&net, net.attach("pc"), reggie.node());
        let item = export_dummy(&net, "vcr", "Vcr");
        let reg = client.register(&item, SimDuration::from_secs(30)).unwrap();
        let mut item2 = export_dummy(&net, "vcr2", "Vcr");
        item2.service_id = reg.service_id;
        client.register(&item2, SimDuration::from_secs(30)).unwrap();
        assert_eq!(reggie.registered_count(), 1);
        let found = client.lookup(&ServiceTemplate::any(), 10).unwrap();
        assert_eq!(found[0].entries[0].get("name"), Some("vcr2"));
    }

    #[test]
    fn lookup_max_truncates() {
        let (_sim, net, reggie) = world();
        let client = RegistrarClient::new(&net, net.attach("pc"), reggie.node());
        for i in 0..5 {
            client
                .register(
                    &export_dummy(&net, &format!("svc{i}"), "Iface"),
                    SimDuration::from_secs(30),
                )
                .unwrap();
        }
        assert_eq!(client.lookup(&ServiceTemplate::any(), 3).unwrap().len(), 3);
    }

    #[test]
    fn item_matching_rules() {
        let stub = ProxyStub {
            host: NodeId(1),
            object_id: 1,
            interface: "A".into(),
        };
        let mut item = ServiceItem::new(
            stub,
            vec!["A".into(), "B".into()],
            vec![Entry::name("x"), Entry::location("den")],
        );
        item.service_id = ServiceId(99);
        assert!(item.matches(&ServiceTemplate::any()));
        assert!(item.matches(&ServiceTemplate::by_interface("A").interface("B")));
        assert!(!item.matches(&ServiceTemplate::by_interface("C")));
        assert!(item.matches(&ServiceTemplate::by_id(ServiceId(99))));
        assert!(!item.matches(&ServiceTemplate::by_id(ServiceId(1))));
        assert!(item.matches(&ServiceTemplate::any().entry(Entry::location("den"))));
        assert!(!item.matches(&ServiceTemplate::any().entry(Entry::location("attic"))));
    }

    #[test]
    fn garbage_request_gets_error_reply() {
        let (_sim, net, reggie) = world();
        let pc = net.attach("pc");
        let reply = net
            .request(pc, reggie.node(), Protocol::Jini, &b"nonsense"[..])
            .unwrap();
        let v = JValue::unmarshal(&reply).unwrap();
        assert!(matches!(&v, JValue::Object { class, .. } if class == "ReggieError"));
    }
}
