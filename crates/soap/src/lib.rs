//! # soap — SOAP 1.1 over simulated HTTP
//!
//! The Virtual Service Gateway protocol of the paper's prototype
//! ("we implement the prototype of our framework with SOAP, a simple
//! protocol", §3.1), reimplemented over [`simnet`]:
//!
//! * [`Value`] — the SOAP section-5 RPC data model, the framework's
//!   lingua franca.
//! * [`RpcCall`] / [`RpcResponse`] / [`Fault`] — envelope encoding.
//! * [`HttpRequest`] / [`HttpResponse`] / [`HttpServer`] / [`HttpClient`]
//!   — simulated HTTP/1.1 with per-connection TCP costs.
//! * [`SoapServer`] / [`SoapClient`] — the rpcrouter endpoint, with a
//!   [`CpuModel`] for the XML-processing costs of the 2002 Java stack.
//!
//! ```
//! use simnet::{Sim, Network};
//! use soap::{SoapServer, SoapClient, RpcCall, Value, Fault};
//!
//! let sim = Sim::new(7);
//! let net = Network::ethernet(&sim);
//! let server = SoapServer::bind(&net, "router");
//! server.mount("urn:vcr", |_, call| match call.method.as_str() {
//!     "record" => Ok(Value::Bool(true)),
//!     m => Err(Fault::client(format!("no method {m}"))),
//! });
//! let client = SoapClient::attach(&net, "pc");
//! let ok = client.call(server.node(), &RpcCall::new("urn:vcr", "record")).unwrap();
//! assert_eq!(ok, Value::Bool(true));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod endpoint;
pub mod fault;
pub mod http;
pub mod rpc;
pub mod value;

pub use endpoint::{CpuModel, ServiceHandler, SoapClient, SoapServer, RPC_ROUTER_PATH};
pub use fault::{Fault, FaultCode};
pub use http::{
    HttpClient, HttpError, HttpRequest, HttpRequestRef, HttpResponse, HttpResponseRef, HttpServer,
    ResponseParts, TcpModel, ZeroRouteHandler,
};
pub use rpc::{call_envelope, fault_envelope, RpcCall, RpcResponse, SoapError};
pub use value::{base64_decode, base64_encode, Value, ValueError};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value(depth: u32) -> BoxedStrategy<Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            // Finite, round-trippable doubles.
            (-1.0e12f64..1.0e12).prop_map(Value::Float),
            "[ -~]{0,24}".prop_map(Value::Str),
            prop::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        prop_oneof![
            4 => leaf,
            1 => prop::collection::vec(arb_value(depth - 1), 0..4).prop_map(Value::List),
            1 => prop::collection::vec(("[a-z][a-z0-9]{0,6}", arb_value(depth - 1)), 0..4)
                .prop_map(Value::Record),
        ]
        .boxed()
    }

    proptest! {
        #[test]
        fn value_envelope_round_trip(v in arb_value(2)) {
            let resp = RpcResponse::new("m", v.clone());
            let back = RpcResponse::from_envelope(&resp.to_envelope()).unwrap();
            prop_assert_eq!(back.value, v);
        }

        #[test]
        fn call_envelope_round_trip(
            method in "[a-zA-Z][a-zA-Z0-9]{0,12}",
            args in prop::collection::vec(("[a-z][a-z0-9]{0,8}", arb_value(1)), 0..5),
        ) {
            let mut call = RpcCall::new("urn:vsg:prop", method);
            for (k, v) in args {
                call = call.arg(k, v);
            }
            let back = RpcCall::from_envelope(&call.to_envelope()).unwrap();
            prop_assert_eq!(back, call);
        }

        #[test]
        fn base64_round_trip(data in prop::collection::vec(any::<u8>(), 0..256)) {
            let enc = base64_encode(&data);
            prop_assert_eq!(base64_decode(&enc).unwrap(), data);
        }

        #[test]
        fn http_request_round_trip(
            path in "/[a-z0-9/]{0,24}",
            body in prop::collection::vec(any::<u8>(), 0..128),
        ) {
            let req = HttpRequest::post(path, "application/octet-stream", body);
            let back = HttpRequest::from_bytes(&req.to_bytes()).unwrap();
            prop_assert_eq!(back, req);
        }

        #[test]
        fn envelope_decoder_never_panics(s in ".{0,300}") {
            let _ = RpcCall::from_envelope(&s);
            let _ = RpcResponse::from_envelope(&s);
        }
    }
}
