//! SOAP 1.1 RPC envelopes: calls, responses, and their wire encoding.

use crate::fault::Fault;
use crate::http::HttpError;
use crate::value::{Value, ValueError};
use minixml::{escape_attr_into, escape_text_into, ElemRef, Element, ParseError};
use std::fmt;

const ENVELOPE_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";
const ENCODING_NS: &str = "http://schemas.xmlsoap.org/soap/encoding/";
const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema";
const XSI_NS: &str = "http://www.w3.org/2001/XMLSchema-instance";

/// An RPC invocation: `method` on the service identified by `namespace`,
/// with named arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcCall {
    /// Target service namespace, e.g. `urn:vsg:vcr`.
    pub namespace: String,
    /// Operation name.
    pub method: String,
    /// Named arguments, in call order.
    pub args: Vec<(String, Value)>,
    /// Out-of-band `SOAP-ENV:Header` entries as `(local-name, text)`
    /// pairs — metadata (e.g. a trace context) that rides the envelope
    /// without polluting the method arguments.
    pub headers: Vec<(String, String)>,
}

impl RpcCall {
    /// Creates a call with no arguments.
    pub fn new(namespace: impl Into<String>, method: impl Into<String>) -> Self {
        RpcCall {
            namespace: namespace.into(),
            method: method.into(),
            args: Vec::new(),
            headers: Vec::new(),
        }
    }

    /// Adds an argument (builder style).
    pub fn arg(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.args.push((name.into(), value.into()));
        self
    }

    /// Adds a header entry (builder style).
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Encodes as a complete SOAP envelope document.
    pub fn to_envelope(&self) -> String {
        call_envelope_with_headers(
            &self.namespace,
            &self.method,
            self.args.iter().map(|(k, v)| (k.as_str(), v)),
            &self.headers,
        )
    }

    /// Decodes a call envelope.
    ///
    /// Runs over the borrowed parse tier: tag names, attributes and
    /// clean text stay slices of `doc`, and only the strings that end
    /// up in the returned call are copied out.
    pub fn from_envelope(doc: &str) -> Result<RpcCall, SoapError> {
        let root = minixml::parse_ref(doc)?;
        let headers = root
            .find("Header")
            .map(|h| {
                h.elements()
                    .map(|e| (e.local_name().to_owned(), e.text_content().into_owned()))
                    .collect()
            })
            .unwrap_or_default();
        let body = body_of(&root)?;
        let call = body
            .elements()
            .next()
            .ok_or_else(|| SoapError::malformed("empty SOAP body"))?;
        let method = call.local_name().to_owned();
        let namespace = call
            .attrs
            .iter()
            .find(|(k, _)| k.starts_with("xmlns"))
            .map(|(_, v)| v.clone().into_owned())
            .unwrap_or_default();
        let args = call
            .elements()
            .map(|a| Value::from_element_ref(a).map(|v| (a.local_name().to_owned(), v)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RpcCall {
            namespace,
            method,
            args,
            headers,
        })
    }

    /// Looks up an argument by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.args.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Looks up a header entry by local name.
    pub fn get_header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// The result of an RPC: the return value, tagged with the method name.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcResponse {
    /// The method this responds to.
    pub method: String,
    /// The return value (`Value::Null` for void methods).
    pub value: Value,
}

impl RpcResponse {
    /// Creates a response.
    pub fn new(method: impl Into<String>, value: impl Into<Value>) -> Self {
        RpcResponse {
            method: method.into(),
            value: value.into(),
        }
    }

    /// Encodes as a complete SOAP envelope document, streamed straight
    /// into the output string (no element tree).
    pub fn to_envelope(&self) -> String {
        let mut out = String::with_capacity(384);
        write_envelope_open(&mut out, NO_HEADERS);
        out.push_str("<SOAP-ENV:Body><ns1:");
        out.push_str(&self.method);
        out.push_str("Response xmlns:ns1=\"urn:vsg:response\">");
        self.value.write_xml("return", &mut out);
        out.push_str("</ns1:");
        out.push_str(&self.method);
        out.push_str("Response></SOAP-ENV:Body></SOAP-ENV:Envelope>");
        out
    }

    /// Decodes a response envelope, surfacing a carried fault as
    /// `Err(SoapError::Fault)`. Runs over the borrowed parse tier.
    pub fn from_envelope(doc: &str) -> Result<RpcResponse, SoapError> {
        let root = minixml::parse_ref(doc)?;
        let body = body_of(&root)?;
        let first = body
            .elements()
            .next()
            .ok_or_else(|| SoapError::malformed("empty SOAP body"))?;
        if let Some(fault) = Fault::from_element_ref(first) {
            return Err(SoapError::Fault(fault));
        }
        let method = first
            .local_name()
            .strip_suffix("Response")
            .unwrap_or(first.local_name())
            .to_owned();
        let value = match first.find("return") {
            Some(r) => Value::from_element_ref(r)?,
            None => Value::Null,
        };
        Ok(RpcResponse { method, value })
    }
}

/// Encodes a call envelope directly from borrowed parts — bit-identical
/// to building an [`RpcCall`] and calling [`RpcCall::to_envelope`], but
/// without cloning the argument list into an owned value first.
pub fn call_envelope<'a>(
    namespace: &str,
    method: &str,
    args: impl IntoIterator<Item = (&'a str, &'a Value)>,
) -> String {
    call_envelope_with_headers(namespace, method, args, NO_HEADERS)
}

/// Like [`call_envelope`], with `SOAP-ENV:Header` entries. Headers are
/// emitted as text elements in the `urn:vsg:ext` namespace, before the
/// Body as SOAP 1.1 requires.
///
/// The envelope streams straight into the output string — no element
/// tree is built. The output stays byte-identical to serialising the
/// equivalent tree (the equivalence test in this module enforces it).
pub fn call_envelope_with_headers<'a, K: AsRef<str>, V: AsRef<str>>(
    namespace: &str,
    method: &str,
    args: impl IntoIterator<Item = (&'a str, &'a Value)>,
    headers: &[(K, V)],
) -> String {
    let mut out = String::with_capacity(512);
    write_envelope_open(&mut out, headers);
    out.push_str("<SOAP-ENV:Body><ns1:");
    out.push_str(method);
    out.push_str(" xmlns:ns1=\"");
    escape_attr_into(namespace, &mut out);
    out.push('"');
    let mut empty = true;
    for (name, value) in args {
        if empty {
            out.push('>');
            empty = false;
        }
        value.write_xml(name, &mut out);
    }
    if empty {
        out.push_str("/>");
    } else {
        out.push_str("</ns1:");
        out.push_str(method);
        out.push('>');
    }
    out.push_str("</SOAP-ENV:Body></SOAP-ENV:Envelope>");
    out
}

/// Type hint for header-less streaming envelopes.
const NO_HEADERS: &[(&str, &str)] = &[];

/// Writes the XML declaration, the envelope open tag with its
/// namespace attributes, and the (optional) `SOAP-ENV:Header` block.
fn write_envelope_open<K: AsRef<str>, V: AsRef<str>>(out: &mut String, headers: &[(K, V)]) {
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?><SOAP-ENV:Envelope xmlns:SOAP-ENV=\"");
    out.push_str(ENVELOPE_NS);
    out.push_str("\" xmlns:xsd=\"");
    out.push_str(XSD_NS);
    out.push_str("\" xmlns:xsi=\"");
    out.push_str(XSI_NS);
    out.push_str("\" SOAP-ENV:encodingStyle=\"");
    out.push_str(ENCODING_NS);
    out.push_str("\">");
    if !headers.is_empty() {
        out.push_str("<SOAP-ENV:Header>");
        for (name, value) in headers {
            out.push_str("<vsg:");
            out.push_str(name.as_ref());
            out.push_str(" xmlns:vsg=\"urn:vsg:ext\">");
            // Always open/close form: the element path stores a
            // (possibly empty) text child, never self-closing.
            escape_text_into(value.as_ref(), out);
            out.push_str("</vsg:");
            out.push_str(name.as_ref());
            out.push('>');
        }
        out.push_str("</SOAP-ENV:Header>");
    }
}

/// Encodes a fault as a complete SOAP envelope document. Faults are the
/// cold path; they still build the element tree.
pub fn fault_envelope(fault: &Fault) -> String {
    Element::new("SOAP-ENV:Envelope")
        .attr("xmlns:SOAP-ENV", ENVELOPE_NS)
        .attr("xmlns:xsd", XSD_NS)
        .attr("xmlns:xsi", XSI_NS)
        .attr("SOAP-ENV:encodingStyle", ENCODING_NS)
        .child(Element::new("SOAP-ENV:Body").child(fault.to_element()))
        .to_document()
}

fn body_of<'a, 'd>(root: &'a ElemRef<'d>) -> Result<&'a ElemRef<'d>, SoapError> {
    if root.local_name() != "Envelope" {
        return Err(SoapError::malformed(format!(
            "root element is <{}>, not an Envelope",
            root.name
        )));
    }
    root.find("Body")
        .ok_or_else(|| SoapError::malformed("Envelope has no Body"))
}

/// Errors surfaced by SOAP encoding, decoding and transport.
#[derive(Debug, Clone, PartialEq)]
pub enum SoapError {
    /// The XML itself would not parse.
    Xml(ParseError),
    /// A value failed to decode.
    Value(ValueError),
    /// Structurally valid XML that is not a valid SOAP message.
    Malformed(String),
    /// The peer returned a SOAP fault.
    Fault(Fault),
    /// The HTTP layer failed (connection refused, lost, bad status).
    /// Carries the typed [`HttpError`] so callers can classify the
    /// failure (request never delivered vs. response lost) without
    /// parsing message text.
    Http(HttpError),
}

impl SoapError {
    pub(crate) fn malformed(msg: impl Into<String>) -> SoapError {
        SoapError::Malformed(msg.into())
    }
}

impl fmt::Display for SoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoapError::Xml(e) => write!(f, "{e}"),
            SoapError::Value(e) => write!(f, "{e}"),
            SoapError::Malformed(m) => write!(f, "malformed SOAP message: {m}"),
            SoapError::Fault(fault) => write!(f, "SOAP fault: {fault}"),
            SoapError::Http(m) => write!(f, "HTTP error: {m}"),
        }
    }
}

impl std::error::Error for SoapError {}

impl From<ParseError> for SoapError {
    fn from(e: ParseError) -> SoapError {
        SoapError::Xml(e)
    }
}

impl From<ValueError> for SoapError {
    fn from(e: ValueError) -> SoapError {
        SoapError::Value(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_round_trips() {
        let call = RpcCall::new("urn:vsg:vcr", "record")
            .arg("channel", 42)
            .arg("title", "News & Weather")
            .arg("immediate", true);
        let doc = call.to_envelope();
        assert!(doc.contains("SOAP-ENV:Envelope"));
        let back = RpcCall::from_envelope(&doc).unwrap();
        assert_eq!(back, call);
        assert_eq!(back.get("channel").and_then(Value::as_int), Some(42));
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn header_entries_round_trip() {
        let call = RpcCall::new("urn:vsg:gateway", "play")
            .arg("chapter", 1)
            .header("TraceContext", "1f-2e");
        let doc = call.to_envelope();
        assert!(doc.contains("SOAP-ENV:Header"), "{doc}");
        // SOAP 1.1: the Header element precedes the Body.
        assert!(
            doc.find("SOAP-ENV:Header").unwrap() < doc.find("SOAP-ENV:Body").unwrap(),
            "{doc}"
        );
        let back = RpcCall::from_envelope(&doc).unwrap();
        assert_eq!(back, call);
        assert_eq!(back.get_header("TraceContext"), Some("1f-2e"));
        assert_eq!(back.get_header("absent"), None);
        // Headers never leak into the argument list.
        assert_eq!(back.args.len(), 1);
    }

    #[test]
    fn headerless_envelopes_have_no_header_element() {
        let doc = RpcCall::new("urn:x", "ping").to_envelope();
        assert!(!doc.contains("SOAP-ENV:Header"), "{doc}");
    }

    #[test]
    fn response_round_trips() {
        let resp = RpcResponse::new(
            "record",
            Value::Record(vec![
                ("ok".into(), Value::Bool(true)),
                ("tape_pos".into(), Value::Int(1234)),
            ]),
        );
        let back = RpcResponse::from_envelope(&resp.to_envelope()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn void_response() {
        let resp = RpcResponse::new("stop", Value::Null);
        let back = RpcResponse::from_envelope(&resp.to_envelope()).unwrap();
        assert_eq!(back.value, Value::Null);
    }

    #[test]
    fn fault_envelope_decodes_as_fault_error() {
        let doc = fault_envelope(&Fault::server("VCR is on fire"));
        match RpcResponse::from_envelope(&doc) {
            Err(SoapError::Fault(f)) => assert_eq!(f.string, "VCR is on fire"),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn malformed_envelopes_rejected() {
        assert!(matches!(
            RpcCall::from_envelope("<NotAnEnvelope/>"),
            Err(SoapError::Malformed(_))
        ));
        assert!(matches!(
            RpcCall::from_envelope("not xml at all"),
            Err(SoapError::Xml(_))
        ));
        let no_body = Element::new("SOAP-ENV:Envelope").to_document();
        assert!(matches!(
            RpcCall::from_envelope(&no_body),
            Err(SoapError::Malformed(_))
        ));
        let empty_body = Element::new("SOAP-ENV:Envelope")
            .child(Element::new("SOAP-ENV:Body"))
            .to_document();
        assert!(matches!(
            RpcCall::from_envelope(&empty_body),
            Err(SoapError::Malformed(_))
        ));
    }

    /// The element-tree encoder the streaming writer replaced,
    /// reconstructed here as the reference for byte-identity.
    fn tree_envelope(headers: &[(String, String)], body_child: Element) -> String {
        let mut env = Element::new("SOAP-ENV:Envelope")
            .attr("xmlns:SOAP-ENV", ENVELOPE_NS)
            .attr("xmlns:xsd", XSD_NS)
            .attr("xmlns:xsi", XSI_NS)
            .attr("SOAP-ENV:encodingStyle", ENCODING_NS);
        if !headers.is_empty() {
            let mut header = Element::new("SOAP-ENV:Header");
            for (name, value) in headers {
                header.push(
                    Element::new(format!("vsg:{name}"))
                        .attr("xmlns:vsg", "urn:vsg:ext")
                        .text(value),
                );
            }
            env = env.child(header);
        }
        env.child(Element::new("SOAP-ENV:Body").child(body_child))
            .to_document()
    }

    #[test]
    fn streamed_call_envelope_matches_element_path() {
        let call = RpcCall::new("urn:vsg:vcr", "record")
            .arg("channel", 42)
            .arg("title", "News & <Weather>")
            .arg("empty", "")
            .header("TraceContext", "1f-2e")
            .header("Empty", "");
        let mut body =
            Element::new(format!("ns1:{}", call.method)).attr("xmlns:ns1", call.namespace.clone());
        for (k, v) in &call.args {
            body.push(v.to_element(k));
        }
        assert_eq!(call.to_envelope(), tree_envelope(&call.headers, body));
        // No arguments → the method element self-closes, on both paths.
        let bare = RpcCall::new("urn:x", "ping");
        assert_eq!(
            bare.to_envelope(),
            tree_envelope(&[], Element::new("ns1:ping").attr("xmlns:ns1", "urn:x"))
        );
    }

    #[test]
    fn streamed_response_envelope_matches_element_path() {
        let resp = RpcResponse::new(
            "record",
            Value::Record(vec![("ok".into(), Value::Bool(true))]),
        );
        let body = Element::new("ns1:recordResponse")
            .attr("xmlns:ns1", "urn:vsg:response")
            .child(resp.value.to_element("return"));
        assert_eq!(resp.to_envelope(), tree_envelope(&[], body));
    }

    #[test]
    fn call_namespace_is_preserved() {
        let call = RpcCall::new("urn:vsg:laserdisc", "play");
        let back = RpcCall::from_envelope(&call.to_envelope()).unwrap();
        assert_eq!(back.namespace, "urn:vsg:laserdisc");
    }

    #[test]
    fn envelope_overhead_is_realistic() {
        // The E4 experiment reports SOAP overhead; sanity-check the
        // envelope costs hundreds of bytes even for a trivial call.
        let doc = RpcCall::new("urn:x", "ping").to_envelope();
        assert!(doc.len() > 250, "envelope is {} bytes", doc.len());
    }
}
