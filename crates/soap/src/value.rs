//! The SOAP section-5 RPC data model.
//!
//! This is the *lingua franca* of the whole framework: the VSG carries
//! invocations as SOAP-encoded [`Value`]s, and every Protocol Conversion
//! Manager translates its middleware's native representation to and from
//! this model (exactly the role Apache SOAP's type mappings played in the
//! paper's prototype).

use minixml::{escape_text_into, ElemRef, Element};
use std::fmt;

/// A dynamically typed RPC value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The absence of a value (`xsi:null`).
    Null,
    /// `xsd:boolean`.
    Bool(bool),
    /// `xsd:int` / `xsd:long`.
    Int(i64),
    /// `xsd:double`.
    Float(f64),
    /// `xsd:string`.
    Str(String),
    /// `SOAP-ENC:base64` binary data.
    Bytes(Vec<u8>),
    /// `SOAP-ENC:Array`.
    List(Vec<Value>),
    /// A compound value with named accessors (a SOAP struct).
    Record(Vec<(String, Value)>),
}

impl Value {
    /// The `xsi:type` label used on the wire.
    pub fn type_label(&self) -> &'static str {
        match self {
            Value::Null => "xsi:null",
            Value::Bool(_) => "xsd:boolean",
            Value::Int(_) => "xsd:long",
            Value::Float(_) => "xsd:double",
            Value::Str(_) => "xsd:string",
            Value::Bytes(_) => "SOAP-ENC:base64",
            Value::List(_) => "SOAP-ENC:Array",
            Value::Record(_) => "SOAP-ENC:Struct",
        }
    }

    /// Encodes as an element named `name`.
    pub fn to_element(&self, name: &str) -> Element {
        let e = Element::new(name).attr("xsi:type", self.type_label());
        match self {
            Value::Null => e.attr("xsi:nil", "true"),
            Value::Bool(b) => e.text(if *b { "true" } else { "false" }),
            Value::Int(i) => e.text(i.to_string()),
            Value::Float(f) => e.text(format_f64(*f)),
            Value::Str(s) => e.text(s.clone()),
            Value::Bytes(b) => e.text(base64_encode(b)),
            Value::List(items) => {
                let mut e = e;
                for item in items {
                    e.push(item.to_element("item"));
                }
                e
            }
            Value::Record(fields) => {
                let mut e = e;
                for (k, v) in fields {
                    e.push(v.to_element(k));
                }
                e
            }
        }
    }

    /// Streams the element encoding of `self` into `out`: byte-identical
    /// to serialising [`Value::to_element`] compactly, without building
    /// the intermediate element tree (whose every name, attribute and
    /// text run is an owned `String`). This is the marshal hot path.
    pub fn write_xml(&self, name: &str, out: &mut String) {
        out.push('<');
        out.push_str(name);
        out.push_str(" xsi:type=\"");
        out.push_str(self.type_label());
        out.push('"');
        let close = |out: &mut String| {
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        };
        match self {
            Value::Null => out.push_str(" xsi:nil=\"true\"/>"),
            Value::Bool(b) => {
                out.push('>');
                out.push_str(if *b { "true" } else { "false" });
                close(out);
            }
            Value::Int(i) => {
                use std::fmt::Write as _;
                out.push('>');
                write!(out, "{i}").expect("string write");
                close(out);
            }
            Value::Float(f) => {
                out.push('>');
                write_f64(*f, out);
                close(out);
            }
            // Empty strings and byte runs still take the open/close
            // form — the element path stores a (possibly empty) text
            // child, which never serialises self-closing.
            Value::Str(s) => {
                out.push('>');
                escape_text_into(s, out);
                close(out);
            }
            Value::Bytes(b) => {
                out.push('>');
                base64_encode_into(b, out);
                close(out);
            }
            Value::List(items) => {
                if items.is_empty() {
                    out.push_str("/>");
                    return;
                }
                out.push('>');
                for item in items {
                    item.write_xml("item", out);
                }
                close(out);
            }
            Value::Record(fields) => {
                if fields.is_empty() {
                    out.push_str("/>");
                    return;
                }
                out.push('>');
                for (k, v) in fields {
                    v.write_xml(k, out);
                }
                close(out);
            }
        }
    }

    /// Decodes from an element produced by [`Value::to_element`] (or by a
    /// foreign SOAP stack using the same subset).
    pub fn from_element(e: &Element) -> Result<Value, ValueError> {
        let ty = e.get_attr("xsi:type").unwrap_or("xsd:string");
        if e.get_attr("xsi:nil") == Some("true") || ty == "xsi:null" {
            return Ok(Value::Null);
        }
        match ty {
            "xsd:boolean" => match e.text_content().trim() {
                "true" | "1" => Ok(Value::Bool(true)),
                "false" | "0" => Ok(Value::Bool(false)),
                other => Err(ValueError::new(format!("bad boolean '{other}'"))),
            },
            "xsd:int" | "xsd:long" | "xsd:short" | "xsd:byte" => e
                .text_content()
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| ValueError::new(format!("bad integer '{}'", e.text_content()))),
            "xsd:double" | "xsd:float" | "xsd:decimal" => e
                .text_content()
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| ValueError::new(format!("bad double '{}'", e.text_content()))),
            "xsd:string" => Ok(Value::Str(e.text_content())),
            "SOAP-ENC:base64" | "xsd:base64Binary" => base64_decode(e.text_content().trim())
                .map(Value::Bytes)
                .ok_or_else(|| ValueError::new("bad base64 payload")),
            "SOAP-ENC:Array" => e
                .elements()
                .map(Value::from_element)
                .collect::<Result<Vec<_>, _>>()
                .map(Value::List),
            "SOAP-ENC:Struct" => e
                .elements()
                .map(|c| Value::from_element(c).map(|v| (c.local_name().to_owned(), v)))
                .collect::<Result<Vec<_>, _>>()
                .map(Value::Record),
            other => Err(ValueError::new(format!("unsupported xsi:type '{other}'"))),
        }
    }

    /// [`Value::from_element`] over the borrowed parse tier: decodes
    /// straight from document slices, so only the resulting `Value`'s
    /// own strings allocate — no intermediate owned element tree. Kept
    /// in lock-step with `from_element` (the equivalence proptest in
    /// this module enforces it).
    pub fn from_element_ref(e: &ElemRef<'_>) -> Result<Value, ValueError> {
        let ty = e.get_attr("xsi:type").unwrap_or("xsd:string");
        if e.get_attr("xsi:nil") == Some("true") || ty == "xsi:null" {
            return Ok(Value::Null);
        }
        match ty {
            "xsd:boolean" => match e.text_content().trim() {
                "true" | "1" => Ok(Value::Bool(true)),
                "false" | "0" => Ok(Value::Bool(false)),
                other => Err(ValueError::new(format!("bad boolean '{other}'"))),
            },
            "xsd:int" | "xsd:long" | "xsd:short" | "xsd:byte" => e
                .text_content()
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| ValueError::new(format!("bad integer '{}'", e.text_content()))),
            "xsd:double" | "xsd:float" | "xsd:decimal" => e
                .text_content()
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| ValueError::new(format!("bad double '{}'", e.text_content()))),
            "xsd:string" => Ok(Value::Str(e.text_content().into_owned())),
            "SOAP-ENC:base64" | "xsd:base64Binary" => base64_decode(e.text_content().trim())
                .map(Value::Bytes)
                .ok_or_else(|| ValueError::new("bad base64 payload")),
            "SOAP-ENC:Array" => e
                .elements()
                .map(Value::from_element_ref)
                .collect::<Result<Vec<_>, _>>()
                .map(Value::List),
            "SOAP-ENC:Struct" => e
                .elements()
                .map(|c| Value::from_element_ref(c).map(|v| (c.local_name().to_owned(), v)))
                .collect::<Result<Vec<_>, _>>()
                .map(Value::Record),
            other => Err(ValueError::new(format!("unsupported xsi:type '{other}'"))),
        }
    }

    // ---- convenience accessors -------------------------------------------

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean inside, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The float inside, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// A named field, if this is a `Record`.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Record(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Value {
        Value::Bytes(b)
    }
}

fn format_f64(f: f64) -> String {
    let mut out = String::new();
    write_f64(f, &mut out);
    out
}

/// [`format_f64`] written into the caller's buffer (no intermediate
/// `String` on the marshal hot path).
fn write_f64(f: f64, out: &mut String) {
    use std::fmt::Write as _;
    // Keep integral doubles distinguishable from xsd:long on re-parse.
    if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
        write!(out, "{f:.1}").expect("string write")
    } else {
        write!(out, "{f}").expect("string write")
    }
}

/// A value encode/decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError {
    /// What went wrong.
    pub message: String,
}

impl ValueError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ValueError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SOAP value error: {}", self.message)
    }
}

impl std::error::Error for ValueError {}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 (RFC 2045 alphabet, `=` padding).
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    base64_encode_into(data, &mut out);
    out
}

/// [`base64_encode`] written into the caller's buffer.
pub fn base64_encode_into(data: &[u8], out: &mut String) {
    out.reserve(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
}

/// Inverse of [`base64_encode`]. Returns `None` on malformed input.
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let s: Vec<u8> = s.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !s.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 4 * 3);
    for chunk in s.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 {
            return None;
        }
        let mut n: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' {
                if i < 4 - pad {
                    return None;
                }
                0
            } else {
                val(c)?
            };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let e = v.to_element("arg");
        let reparsed = minixml::parse(&e.to_document()).unwrap();
        Value::from_element(&reparsed).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Float(-0.5),
            Value::Str("hello <world> & friends".into()),
            Value::Str(String::new()),
            Value::Bytes(vec![0, 1, 2, 255, 254]),
            Value::Bytes(Vec::new()),
        ] {
            assert_eq!(round_trip(&v), v, "round-trip of {v}");
        }
    }

    #[test]
    fn integral_float_stays_float() {
        assert_eq!(round_trip(&Value::Float(2.0)), Value::Float(2.0));
    }

    #[test]
    fn compounds_round_trip() {
        let v = Value::Record(vec![
            ("channel".into(), Value::Int(42)),
            ("title".into(), Value::Str("News".into())),
            (
                "tags".into(),
                Value::List(vec![Value::Str("tv".into()), Value::Str("live".into())]),
            ),
            (
                "nested".into(),
                Value::Record(vec![("x".into(), Value::Null)]),
            ),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn untyped_elements_decode_as_strings() {
        // Lenient like Apache SOAP: missing xsi:type means string.
        let e = minixml::parse("<arg>plain</arg>").unwrap();
        assert_eq!(Value::from_element(&e).unwrap(), Value::Str("plain".into()));
    }

    #[test]
    fn bad_payloads_are_errors_not_panics() {
        for xml in [
            r#"<a xsi:type="xsd:int">notanumber</a>"#,
            r#"<a xsi:type="xsd:boolean">maybe</a>"#,
            r#"<a xsi:type="xsd:double">NaNish</a>"#,
            r#"<a xsi:type="SOAP-ENC:base64">!!!</a>"#,
            r#"<a xsi:type="vendor:custom">x</a>"#,
        ] {
            let e = minixml::parse(xml).unwrap();
            assert!(Value::from_element(&e).is_err(), "{xml}");
        }
    }

    #[test]
    fn accessors() {
        let v = Value::Record(vec![("n".into(), Value::Int(5))]);
        assert_eq!(v.field("n").and_then(Value::as_int), Some(5));
        assert_eq!(v.field("missing"), None);
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Int(1).as_str(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(vec![1u8]), Value::Bytes(vec![1]));
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(base64_decode("Zg==").unwrap(), b"f");
        assert!(base64_decode("Zg=").is_none());
        assert!(base64_decode("====").is_none());
        assert!(base64_decode("Z*==").is_none());
    }

    fn edge_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Str(String::new()),
            Value::Bytes(Vec::new()),
            Value::List(Vec::new()),
            Value::Record(Vec::new()),
            Value::Float(2.0),
            Value::Str("a <b> & \"c\"".into()),
            Value::Record(vec![
                ("l".into(), Value::List(vec![Value::Null, Value::Int(1)])),
                ("b".into(), Value::Bytes(vec![1, 2, 3])),
            ]),
        ]
    }

    #[test]
    fn streamed_marshal_matches_element_path() {
        // The streaming writer must stay byte-identical to serialising
        // the element tree — including the self-closing/open-close
        // distinction for empty values.
        for v in edge_values() {
            let mut streamed = String::new();
            v.write_xml("arg", &mut streamed);
            assert_eq!(streamed, v.to_element("arg").to_xml(), "value {v}");
        }
    }

    #[test]
    fn borrowed_decode_matches_owned() {
        for v in edge_values() {
            let doc = v.to_element("arg").to_document();
            let owned = Value::from_element(&minixml::parse(&doc).unwrap()).unwrap();
            let borrowed = Value::from_element_ref(&minixml::parse_ref(&doc).unwrap()).unwrap();
            assert_eq!(borrowed, owned, "value {v}");
            assert_eq!(borrowed, v, "value {v}");
        }
        // Bad payloads fail identically on both tiers.
        for xml in [
            r#"<a xsi:type="xsd:int">notanumber</a>"#,
            r#"<a xsi:type="vendor:custom">x</a>"#,
        ] {
            let owned = Value::from_element(&minixml::parse(xml).unwrap());
            let borrowed = Value::from_element_ref(&minixml::parse_ref(xml).unwrap());
            assert_eq!(owned, borrowed, "{xml}");
            assert!(owned.is_err());
        }
    }

    #[test]
    fn display_is_readable() {
        let v = Value::Record(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::List(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.to_string(), "{a: 1, b: [true]}");
    }
}
