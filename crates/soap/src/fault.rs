//! SOAP 1.1 faults.

use minixml::Element;
use std::fmt;

/// The standard SOAP 1.1 fault code classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCode {
    /// `SOAP-ENV:VersionMismatch`.
    VersionMismatch,
    /// `SOAP-ENV:MustUnderstand`.
    MustUnderstand,
    /// `SOAP-ENV:Client` — the caller's message was at fault.
    Client,
    /// `SOAP-ENV:Server` — processing failed; retrying may succeed.
    Server,
}

impl FaultCode {
    /// The qualified name on the wire.
    pub fn as_qname(self) -> &'static str {
        match self {
            FaultCode::VersionMismatch => "SOAP-ENV:VersionMismatch",
            FaultCode::MustUnderstand => "SOAP-ENV:MustUnderstand",
            FaultCode::Client => "SOAP-ENV:Client",
            FaultCode::Server => "SOAP-ENV:Server",
        }
    }

    /// Parses the qualified (or unqualified) name.
    pub fn from_qname(s: &str) -> Option<FaultCode> {
        let local = s.rsplit(':').next().unwrap_or(s);
        match local {
            "VersionMismatch" => Some(FaultCode::VersionMismatch),
            "MustUnderstand" => Some(FaultCode::MustUnderstand),
            "Client" => Some(FaultCode::Client),
            "Server" => Some(FaultCode::Server),
            _ => None,
        }
    }
}

/// A SOAP fault carried in a response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The fault class.
    pub code: FaultCode,
    /// Human-readable explanation.
    pub string: String,
    /// Optional application-specific detail.
    pub detail: Option<String>,
}

impl Fault {
    /// A server-side processing fault.
    pub fn server(msg: impl Into<String>) -> Fault {
        Fault {
            code: FaultCode::Server,
            string: msg.into(),
            detail: None,
        }
    }

    /// A malformed-request fault.
    pub fn client(msg: impl Into<String>) -> Fault {
        Fault {
            code: FaultCode::Client,
            string: msg.into(),
            detail: None,
        }
    }

    /// Attaches detail text (builder style).
    pub fn with_detail(mut self, detail: impl Into<String>) -> Fault {
        self.detail = Some(detail.into());
        self
    }

    /// Encodes as the `<SOAP-ENV:Fault>` element.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("SOAP-ENV:Fault")
            .child(Element::new("faultcode").text(self.code.as_qname()))
            .child(Element::new("faultstring").text(self.string.clone()));
        if let Some(d) = &self.detail {
            e.push(Element::new("detail").text(d.clone()));
        }
        e
    }

    /// Decodes from a `<Fault>` element.
    pub fn from_element(e: &Element) -> Option<Fault> {
        if e.local_name() != "Fault" {
            return None;
        }
        let code = FaultCode::from_qname(&e.find("faultcode")?.text_content())?;
        let string = e.find("faultstring")?.text_content();
        let detail = e.find("detail").map(Element::text_content);
        Some(Fault {
            code,
            string,
            detail,
        })
    }

    /// [`Fault::from_element`] over the borrowed parse tier.
    pub fn from_element_ref(e: &minixml::ElemRef<'_>) -> Option<Fault> {
        if e.local_name() != "Fault" {
            return None;
        }
        let code = FaultCode::from_qname(&e.find("faultcode")?.text_content())?;
        let string = e.find("faultstring")?.text_content().into_owned();
        let detail = e.find("detail").map(|d| d.text_content().into_owned());
        Some(Fault {
            code,
            string,
            detail,
        })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_qname(), self.string)?;
        if let Some(d) = &self.detail {
            write!(f, " ({d})")?;
        }
        Ok(())
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_round_trips() {
        let f = Fault::server("device unreachable").with_detail("x10 frame lost");
        let back = Fault::from_element(&f.to_element()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn fault_without_detail() {
        let f = Fault::client("no such method");
        let e = f.to_element();
        assert!(e.find("detail").is_none());
        assert_eq!(Fault::from_element(&e).unwrap(), f);
    }

    #[test]
    fn code_qnames_round_trip() {
        for c in [
            FaultCode::VersionMismatch,
            FaultCode::MustUnderstand,
            FaultCode::Client,
            FaultCode::Server,
        ] {
            assert_eq!(FaultCode::from_qname(c.as_qname()), Some(c));
        }
        assert_eq!(FaultCode::from_qname("Server"), Some(FaultCode::Server));
        assert_eq!(FaultCode::from_qname("env:Bogus"), None);
    }

    #[test]
    fn non_fault_element_rejected() {
        assert!(Fault::from_element(&Element::new("NotAFault")).is_none());
        // Fault with an unparseable code is rejected too.
        let bad = Element::new("Fault")
            .child(Element::new("faultcode").text("nonsense"))
            .child(Element::new("faultstring").text("x"));
        assert!(Fault::from_element(&bad).is_none());
    }

    #[test]
    fn display_mentions_code_and_detail() {
        let f = Fault::server("boom").with_detail("why");
        assert_eq!(f.to_string(), "SOAP-ENV:Server: boom (why)");
    }
}
