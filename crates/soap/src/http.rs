//! Simulated HTTP/1.1 over [`simnet`].
//!
//! The paper's prototype carries every VSG interaction over HTTP, and two
//! of its findings hinge on HTTP's behaviour: it is client/server only
//! (no asynchronous notification, §4.2) and it rides a TCP stack that is
//! heavy for small appliances. The simulation therefore models the
//! request/response pattern, per-connection handshake cost, and real
//! header bytes on the wire.

use bytes::Bytes;
use parking_lot::Mutex;
use simnet::{Frame, Network, NodeId, Protocol, Sim, SimDuration, SimError};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Header a pipelining client stamps on each request so it can match
/// responses that the server finishes in a different order.
const CORR_HEADER: &str = "X-Corr-Id";

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method, e.g. `POST`.
    pub method: String,
    /// Request path, e.g. `/soap/rpcrouter`.
    pub path: String,
    /// Headers in order.
    pub headers: Vec<(String, String)>,
    /// Entity body.
    pub body: Vec<u8>,
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Reason phrase, e.g. `OK`.
    pub reason: String,
    /// Headers in order.
    pub headers: Vec<(String, String)>,
    /// Entity body.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Creates a POST with a body (the SOAP workhorse).
    pub fn post(path: impl Into<String>, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        let body = body.into();
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            headers: vec![
                ("Content-Type".into(), content_type.into()),
                ("Content-Length".into(), body.len().to_string()),
                ("User-Agent".into(), "metaware/0.1".into()),
                ("Connection".into(), "close".into()),
            ],
            body,
        }
    }

    /// Creates a body-less GET.
    pub fn get(path: impl Into<String>) -> Self {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            headers: vec![
                ("User-Agent".into(), "metaware/0.1".into()),
                ("Connection".into(), "close".into()),
            ],
            body: Vec::new(),
        }
    }

    /// Adds a header (builder style).
    pub fn header(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((key.into(), value.into()));
        self
    }

    /// The first header with the given (case-insensitive) name.
    pub fn get_header(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_bytes_into(&mut out, None);
        out
    }

    /// Serialises into the caller's buffer, reserving exact capacity up
    /// front — one allocation for head plus body instead of an
    /// intermediate head `String` that grows as headers are appended.
    /// `extra` appends one more header line (the pipelining client's
    /// correlation id) without cloning the request to add it.
    pub(crate) fn write_bytes_into(&self, out: &mut Vec<u8>, extra: Option<(&str, &str)>) {
        let mut head_len = self.method.len() + 1 + self.path.len() + " HTTP/1.1\r\n".len();
        for (k, v) in &self.headers {
            head_len += k.len() + 2 + v.len() + 2;
        }
        if let Some((k, v)) = extra {
            head_len += k.len() + 2 + v.len() + 2;
        }
        out.reserve(head_len + 2 + self.body.len());
        out.extend_from_slice(self.method.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.path.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        let lines = self.headers.iter().map(|(k, v)| (k.as_str(), v.as_str()));
        for (k, v) in lines.chain(extra) {
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
    }

    /// Parses wire bytes.
    pub fn from_bytes(data: &[u8]) -> Result<HttpRequest, HttpError> {
        HttpRequestRef::parse(data).map(|r| r.to_owned())
    }
}

/// A request parsed in place: every field borrows the wire buffer, so
/// the server's hot path allocates nothing to look at a message. The
/// owned [`HttpRequest`] tier is [`HttpRequestRef::to_owned`].
#[derive(Debug, Clone, Copy)]
pub struct HttpRequestRef<'a> {
    /// Method, e.g. `POST`.
    pub method: &'a str,
    /// Request path.
    pub path: &'a str,
    /// The raw header block (validated lines, without the request line).
    header_lines: &'a str,
    /// Entity body.
    pub body: &'a [u8],
}

impl<'a> HttpRequestRef<'a> {
    /// Parses wire bytes without copying. Accepts and rejects exactly
    /// what [`HttpRequest::from_bytes`] does.
    pub fn parse(data: &'a [u8]) -> Result<HttpRequestRef<'a>, HttpError> {
        let (head, body) = split_head_ref(data)?;
        let mut lines = head.lines();
        let request_line = lines.next().ok_or(HttpError::Malformed("empty request"))?;
        let mut parts = request_line.split_whitespace();
        let method = parts.next().ok_or(HttpError::Malformed("no method"))?;
        let path = parts.next().ok_or(HttpError::Malformed("no path"))?;
        let version = parts.next().ok_or(HttpError::Malformed("no version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        let header_lines = validate_header_lines(head, request_line)?;
        Ok(HttpRequestRef {
            method,
            path,
            header_lines,
            body,
        })
    }

    /// The first header with the given (case-insensitive) name.
    pub fn get_header(&self, key: &str) -> Option<&'a str> {
        find_header(self.header_lines, key)
    }

    /// Materialises the owned tier.
    pub fn to_owned(&self) -> HttpRequest {
        HttpRequest {
            method: self.method.to_owned(),
            path: self.path.to_owned(),
            headers: own_headers(self.header_lines),
            body: self.body.to_vec(),
        }
    }
}

/// A response parsed in place — the client-side twin of
/// [`HttpRequestRef`].
#[derive(Debug, Clone, Copy)]
pub struct HttpResponseRef<'a> {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'a str,
    /// The raw header block (validated lines, without the status line).
    header_lines: &'a str,
    /// Entity body.
    pub body: &'a [u8],
}

impl<'a> HttpResponseRef<'a> {
    /// Parses wire bytes without copying. Accepts and rejects exactly
    /// what [`HttpResponse::from_bytes`] does.
    pub fn parse(data: &'a [u8]) -> Result<HttpResponseRef<'a>, HttpError> {
        let (head, body) = split_head_ref(data)?;
        let mut lines = head.lines();
        let status_line = lines.next().ok_or(HttpError::Malformed("empty response"))?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().ok_or(HttpError::Malformed("no version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        let status = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(HttpError::Malformed("bad status code"))?;
        let reason = parts.next().unwrap_or("");
        let header_lines = validate_header_lines(head, status_line)?;
        Ok(HttpResponseRef {
            status,
            reason,
            header_lines,
            body,
        })
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// The first header with the given (case-insensitive) name.
    pub fn get_header(&self, key: &str) -> Option<&'a str> {
        find_header(self.header_lines, key)
    }

    /// Materialises the owned tier.
    pub fn to_owned(&self) -> HttpResponse {
        HttpResponse {
            status: self.status,
            reason: self.reason.to_owned(),
            headers: own_headers(self.header_lines),
            body: self.body.to_vec(),
        }
    }
}

/// The header block after the start line, with every line checked for
/// the `name: value` shape (mirroring [`parse_headers`]'s rejects).
fn validate_header_lines<'a>(head: &'a str, start_line: &str) -> Result<&'a str, HttpError> {
    let rest = &head[start_line.len()..];
    let rest = rest
        .strip_prefix("\r\n")
        .or_else(|| rest.strip_prefix('\n'))
        .unwrap_or(rest);
    for line in rest.lines() {
        if line.is_empty() {
            break;
        }
        if !line.contains(':') {
            return Err(HttpError::Malformed("header without colon"));
        }
    }
    Ok(rest)
}

fn find_header<'a>(header_lines: &'a str, key: &str) -> Option<&'a str> {
    for line in header_lines.lines() {
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case(key) {
                return Some(v.trim());
            }
        }
    }
    None
}

fn own_headers(header_lines: &str) -> Vec<(String, String)> {
    let mut headers = Vec::new();
    for line in header_lines.lines() {
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_owned(), v.trim().to_owned()));
        }
    }
    headers
}

impl HttpResponse {
    /// A 200 OK with a body.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        let body = body.into();
        HttpResponse {
            status: 200,
            reason: "OK".into(),
            headers: vec![
                ("Content-Type".into(), content_type.into()),
                ("Content-Length".into(), body.len().to_string()),
                ("Server".into(), "metaware/0.1".into()),
            ],
            body,
        }
    }

    /// An error status with a plain-text body.
    pub fn error(status: u16, reason: &str, body: impl Into<Vec<u8>>) -> Self {
        let body = body.into();
        HttpResponse {
            status,
            reason: reason.into(),
            headers: vec![
                ("Content-Type".into(), "text/plain".into()),
                ("Content-Length".into(), body.len().to_string()),
            ],
            body,
        }
    }

    /// A 404.
    pub fn not_found(path: &str) -> Self {
        HttpResponse::error(404, "Not Found", format!("no handler for {path}"))
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// The first header with the given (case-insensitive) name.
    pub fn get_header(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_bytes_into(&mut out);
        out
    }

    /// Serialises into the caller's buffer — the server assembles a
    /// whole pipelined response train in one buffer this way.
    pub(crate) fn write_bytes_into(&self, out: &mut Vec<u8>) {
        use std::io::Write as _;
        let mut head_len = "HTTP/1.1 nnn ".len() + self.reason.len() + 2;
        for (k, v) in &self.headers {
            head_len += k.len() + 2 + v.len() + 2;
        }
        out.reserve(head_len + 2 + self.body.len());
        out.extend_from_slice(b"HTTP/1.1 ");
        write!(out, "{}", self.status).expect("vec write");
        out.push(b' ');
        out.extend_from_slice(self.reason.as_bytes());
        out.extend_from_slice(b"\r\n");
        for (k, v) in &self.headers {
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
    }

    /// Parses wire bytes.
    pub fn from_bytes(data: &[u8]) -> Result<HttpResponse, HttpError> {
        HttpResponseRef::parse(data).map(|r| r.to_owned())
    }
}

/// Assembles a POST wire message in one buffer, byte-identical to
/// [`HttpRequest::post`] + [`HttpRequest::header`] for each `extra`
/// pair + [`HttpRequest::to_bytes`] — without building the owned
/// request (two `String`s per header) on the per-call path.
pub(crate) fn write_post_into(
    out: &mut Vec<u8>,
    path: &str,
    content_type: &str,
    body: &[u8],
    extra: &[(&str, &str)],
) {
    use std::io::Write as _;
    let mut head_len =
        "POST  HTTP/1.1\r\n".len() + path.len() + 64 + content_type.len() + body.len();
    for (k, v) in extra {
        head_len += k.len() + 2 + v.len() + 2;
    }
    out.reserve(head_len);
    out.extend_from_slice(b"POST ");
    out.extend_from_slice(path.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    write!(out, "{}", body.len()).expect("vec write");
    out.extend_from_slice(b"\r\nUser-Agent: metaware/0.1\r\nConnection: close\r\n");
    for (k, v) in extra {
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(v.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
}

/// Length of the first self-delimiting HTTP message in `data`: head,
/// `\r\n\r\n`, then `Content-Length` body bytes. A message without
/// `Content-Length` runs to the end of the buffer (the
/// `Connection: close` convention), so only messages that declare their
/// length can share a pipelined payload.
fn message_len(data: &[u8]) -> Result<usize, HttpError> {
    let sep = data
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(HttpError::Malformed("missing header terminator"))?;
    let head = std::str::from_utf8(&data[..sep])
        .map_err(|_| HttpError::Malformed("non-UTF8 header block"))?;
    let mut content_length = None;
    for line in head.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse::<usize>().ok();
            }
        }
    }
    match content_length {
        Some(n) if sep + 4 + n <= data.len() => Ok(sep + 4 + n),
        Some(_) => Err(HttpError::Malformed("truncated body")),
        None => Ok(data.len()),
    }
}

fn split_head_ref(data: &[u8]) -> Result<(&str, &[u8]), HttpError> {
    let sep = data
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(HttpError::Malformed("missing header terminator"))?;
    let head = std::str::from_utf8(&data[..sep])
        .map_err(|_| HttpError::Malformed("non-UTF8 header block"))?;
    Ok((head, &data[sep + 4..]))
}

/// HTTP transport failures.
///
/// Network failures stay typed — they carry the underlying
/// [`SimError`], split by whether the request provably never reached
/// the server — so retry classification upstream never depends on
/// message text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The bytes did not parse as HTTP.
    Malformed(&'static str),
    /// The network failed before the request reached the server: the
    /// exchange is guaranteed not to have executed.
    Unreachable(SimError),
    /// The network failed after the request was delivered (the
    /// response was lost in transit): the server may well have
    /// processed the request.
    ResponseLost(SimError),
    /// Non-success status from the server.
    Status(u16, String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed HTTP message: {m}"),
            HttpError::Unreachable(e) => write!(f, "network error before delivery: {e}"),
            HttpError::ResponseLost(e) => write!(f, "network error, response lost: {e}"),
            HttpError::Status(code, body) => write!(f, "HTTP {code}: {body}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// The per-request TCP cost model.
///
/// 2002-era HTTP clients open a fresh connection per request
/// (`Connection: close`), paying the three-way handshake plus slow-start;
/// we charge `handshake_rtts` link round-trips before the request proper.
#[derive(Debug, Clone, Copy)]
pub struct TcpModel {
    /// Round trips charged for connection establishment + teardown.
    pub handshake_rtts: u32,
    /// Fixed per-request processing charged on the server (accept, parse
    /// headers, dispatch).
    pub server_overhead: SimDuration,
    /// When `true`, the client keeps one connection per peer alive
    /// (HTTP/1.1 keep-alive): only the first exchange to a peer pays
    /// the handshake, and a transport fault tears the connection down
    /// so the next exchange pays it again.
    pub persistent: bool,
}

impl Default for TcpModel {
    fn default() -> Self {
        TcpModel {
            handshake_rtts: 2, // SYN/SYN-ACK/ACK + FIN exchange, amortised
            server_overhead: SimDuration::from_micros(300),
            persistent: false,
        }
    }
}

impl TcpModel {
    /// The default cost model with persistent per-peer connections —
    /// the multiplexed wire path's transport, as opposed to 2002's
    /// connect-per-call.
    pub fn persistent() -> Self {
        TcpModel {
            persistent: true,
            ..TcpModel::default()
        }
    }
}

/// A route handler: consumes a request, produces a response, and may
/// charge CPU time on the `Sim` clock.
pub type RouteHandler = Box<dyn FnMut(&Sim, &HttpRequest) -> HttpResponse + Send>;

/// A zero-copy route handler: reads the request in place (borrowed
/// tier) and returns lean [`ResponseParts`] the server serialises
/// straight into the response train.
pub type ZeroRouteHandler =
    Box<dyn for<'a> FnMut(&Sim, &HttpRequestRef<'a>) -> ResponseParts + Send>;

enum Route {
    Owned(RouteHandler),
    Zero(ZeroRouteHandler),
}

/// What a zero-copy route handler returns: just the pieces that vary.
/// The server writes the status line and standard headers directly into
/// the response buffer, producing byte-identical wire output to the
/// owned [`HttpResponse::ok`]/[`HttpResponse::error`] constructors
/// without building their header `String`s.
#[derive(Debug)]
pub struct ResponseParts {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Entity body.
    pub body: Vec<u8>,
    /// Whether to stamp the `Server:` header ([`HttpResponse::ok`]
    /// does, [`HttpResponse::error`] does not).
    server_header: bool,
}

impl ResponseParts {
    /// A 200 OK (wire-identical to [`HttpResponse::ok`]).
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> ResponseParts {
        ResponseParts {
            status: 200,
            reason: "OK",
            content_type,
            body: body.into(),
            server_header: true,
        }
    }

    /// An error status (wire-identical to [`HttpResponse::error`] with
    /// the given content type).
    pub fn error(
        status: u16,
        reason: &'static str,
        content_type: &'static str,
        body: impl Into<Vec<u8>>,
    ) -> ResponseParts {
        ResponseParts {
            status,
            reason,
            content_type,
            body: body.into(),
            server_header: false,
        }
    }

    /// Serialises into the response train, echoing `corr` last — the
    /// same position the owned tier gives a correlation header pushed
    /// after construction.
    fn write_into(&self, out: &mut Vec<u8>, corr: Option<&str>) {
        use std::io::Write as _;
        out.reserve(96 + self.content_type.len() + self.body.len());
        out.extend_from_slice(b"HTTP/1.1 ");
        write!(out, "{}", self.status).expect("vec write");
        out.push(b' ');
        out.extend_from_slice(self.reason.as_bytes());
        out.extend_from_slice(b"\r\nContent-Type: ");
        out.extend_from_slice(self.content_type.as_bytes());
        out.extend_from_slice(b"\r\nContent-Length: ");
        write!(out, "{}", self.body.len()).expect("vec write");
        out.extend_from_slice(b"\r\n");
        if self.server_header {
            out.extend_from_slice(b"Server: metaware/0.1\r\n");
        }
        if let Some(id) = corr {
            out.extend_from_slice(CORR_HEADER.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(id.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
    }
}

/// A simulated HTTP server bound to one network node.
#[derive(Clone)]
pub struct HttpServer {
    node: NodeId,
    routes: Arc<Mutex<HashMap<String, Route>>>,
}

impl HttpServer {
    /// Binds a server on `net`, attaching a new node with `label`.
    pub fn bind(net: &Network, label: &str, tcp: TcpModel) -> HttpServer {
        let node = net.attach(label);
        let routes: Arc<Mutex<HashMap<String, Route>>> = Arc::new(Mutex::new(HashMap::new()));
        let routes2 = routes.clone();
        net.set_request_handler(node, move |sim, frame: &Frame| {
            // A payload may carry several pipelined requests; each is
            // self-delimiting (Content-Length) and each pays the
            // per-request server overhead. Every request is parsed on
            // the borrowed tier; owned-route handlers get a
            // materialised request, zero-copy routes read in place.
            let mut data: &[u8] = &frame.payload;
            let mut train: Vec<u8> = Vec::new();
            let mut spans: Vec<std::ops::Range<usize>> = Vec::new();
            loop {
                sim.advance(tcp.server_overhead);
                let start = train.len();
                let (msg, rest) = match message_len(data) {
                    Ok(n) => data.split_at(n),
                    Err(e) => {
                        ResponseParts::error(400, "Bad Request", "text/plain", e.to_string())
                            .write_into(&mut train, None);
                        spans.push(start..train.len());
                        break;
                    }
                };
                match HttpRequestRef::parse(msg) {
                    Ok(req) => {
                        // The correlation id is echoed so the client
                        // can match responses regardless of completion
                        // order.
                        let corr = req.get_header(CORR_HEADER);
                        let mut routes = routes2.lock();
                        match routes.get_mut(req.path) {
                            Some(Route::Zero(h)) => {
                                h(sim, &req).write_into(&mut train, corr);
                            }
                            Some(Route::Owned(h)) => {
                                let owned = req.to_owned();
                                let mut resp = h(sim, &owned);
                                if let Some(id) = corr {
                                    resp.headers.push((CORR_HEADER.into(), id.to_owned()));
                                }
                                resp.write_bytes_into(&mut train);
                            }
                            None => {
                                let mut body = String::with_capacity(15 + req.path.len());
                                body.push_str("no handler for ");
                                body.push_str(req.path);
                                ResponseParts::error(404, "Not Found", "text/plain", body)
                                    .write_into(&mut train, corr);
                            }
                        }
                    }
                    Err(e) => {
                        ResponseParts::error(400, "Bad Request", "text/plain", e.to_string())
                            .write_into(&mut train, None);
                    }
                }
                spans.push(start..train.len());
                data = rest;
                if data.is_empty() {
                    break;
                }
            }
            // A pipelined server may finish requests in any order; we
            // reverse deliberately so clients must correlate by id
            // instead of assuming FIFO.
            if spans.len() > 1 {
                let mut out = Vec::with_capacity(train.len());
                for span in spans.iter().rev() {
                    out.extend_from_slice(&train[span.clone()]);
                }
                return Ok(Bytes::from(out));
            }
            Ok(Bytes::from(train))
        })
        .expect("node attached above");
        HttpServer { node, routes }
    }

    /// The node this server listens on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers (or replaces) the handler for `path`.
    pub fn route(
        &self,
        path: impl Into<String>,
        handler: impl FnMut(&Sim, &HttpRequest) -> HttpResponse + Send + 'static,
    ) {
        self.routes
            .lock()
            .insert(path.into(), Route::Owned(Box::new(handler)));
    }

    /// Registers (or replaces) a zero-copy handler for `path`: it reads
    /// the request through [`HttpRequestRef`] (no per-request
    /// materialisation) and returns [`ResponseParts`] serialised in
    /// place.
    pub fn route_zero(
        &self,
        path: impl Into<String>,
        handler: impl for<'a> FnMut(&Sim, &HttpRequestRef<'a>) -> ResponseParts + Send + 'static,
    ) {
        self.routes
            .lock()
            .insert(path.into(), Route::Zero(Box::new(handler)));
    }

    /// Removes the handler for `path`.
    pub fn unroute(&self, path: &str) {
        self.routes.lock().remove(path);
    }
}

impl fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HttpServer")
            .field("node", &self.node)
            .field("routes", &self.routes.lock().len())
            .finish()
    }
}

/// A simulated HTTP client bound to one network node.
#[derive(Debug, Clone)]
pub struct HttpClient {
    net: Network,
    node: NodeId,
    tcp: TcpModel,
    /// Peers with an established connection (persistent mode only).
    /// Shared across clones so every handle to the same node reuses
    /// the same connections.
    conns: Arc<Mutex<HashSet<NodeId>>>,
}

impl HttpClient {
    /// Creates a client that sends from `node` on `net`.
    pub fn new(net: &Network, node: NodeId, tcp: TcpModel) -> HttpClient {
        HttpClient {
            net: net.clone(),
            node,
            tcp,
            conns: Arc::new(Mutex::new(HashSet::new())),
        }
    }

    /// Attaches a fresh node and wraps it in a client.
    pub fn attach(net: &Network, label: &str, tcp: TcpModel) -> HttpClient {
        let node = net.attach(label);
        HttpClient::new(net, node, tcp)
    }

    /// The node this client sends from.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Charges connection establishment unless a persistent connection
    /// to `server` is already up. Every handshake is counted in the
    /// network's [`simnet::NetStats`] so benches can report connection
    /// churn.
    fn connect(&self, sim: &Sim, server: NodeId) {
        if self.tcp.persistent && self.conns.lock().contains(&server) {
            return;
        }
        // Per-request TCP connection (Connection: close, as in 2002) —
        // or the first exchange on a persistent connection.
        let rtt = self.net.link().latency * 2;
        sim.advance(rtt * u64::from(self.tcp.handshake_rtts));
        self.net.with_stats(|s| s.record_conn_open());
        if self.tcp.persistent {
            self.conns.lock().insert(server);
        }
    }

    /// One raw exchange: connect (if needed), send `payload`, return
    /// the raw response bytes. A transport fault tears a persistent
    /// connection down, so the next exchange pays a fresh handshake.
    fn exchange(&self, server: NodeId, payload: Vec<u8>) -> Result<Bytes, HttpError> {
        let sim = self.net.sim().clone();
        self.connect(&sim, server);
        self.net
            .request(self.node, server, Protocol::Http, payload)
            .map_err(|e| {
                if self.tcp.persistent {
                    self.conns.lock().remove(&server);
                }
                // The client knows its own node, so it can tell a
                // request-leg failure (server never saw the request)
                // from a lost response (it may have executed).
                if e.before_delivery(self.node) {
                    HttpError::Unreachable(e)
                } else {
                    HttpError::ResponseLost(e)
                }
            })
    }

    /// Executes one HTTP exchange, charging connection setup plus both
    /// transfer legs to the virtual clock.
    pub fn send(&self, server: NodeId, req: &HttpRequest) -> Result<HttpResponse, HttpError> {
        let raw = self.exchange(server, req.to_bytes())?;
        HttpResponse::from_bytes(&raw)
    }

    /// One exchange over pre-assembled wire bytes, returning the raw
    /// response for the caller to parse on the borrowed tier — the
    /// zero-copy twin of [`HttpClient::send`].
    pub(crate) fn send_raw(&self, server: NodeId, payload: Vec<u8>) -> Result<Bytes, HttpError> {
        self.exchange(server, payload)
    }

    /// Pipelines several requests over one exchange: all requests go
    /// out back-to-back on one connection, the server may finish them
    /// in any order, and responses are matched back to their requests
    /// by correlation id. Returns responses in *request* order. The
    /// whole pipeline shares one transport fate: a network error fails
    /// every request in it.
    pub fn send_pipelined(
        &self,
        server: NodeId,
        reqs: &[HttpRequest],
    ) -> Result<Vec<HttpResponse>, HttpError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        // Each request is written with its correlation id appended in
        // place — no clone of the request (body included) just to tag
        // it with one extra header.
        let mut payload = Vec::new();
        let mut id = String::with_capacity(4);
        for (i, req) in reqs.iter().enumerate() {
            use std::fmt::Write as _;
            id.clear();
            write!(id, "{i}").expect("string write");
            req.write_bytes_into(&mut payload, Some((CORR_HEADER, &id)));
        }
        let raw = self.exchange(server, payload)?;
        let mut slots: Vec<Option<HttpResponse>> = vec![None; reqs.len()];
        let mut data: &[u8] = &raw;
        while !data.is_empty() {
            let (msg, rest) = data.split_at(message_len(data)?);
            let resp = HttpResponse::from_bytes(msg)?;
            let idx = resp
                .get_header(CORR_HEADER)
                .and_then(|id| id.parse::<usize>().ok())
                .filter(|i| *i < slots.len())
                .ok_or(HttpError::Malformed("missing or bad correlation id"))?;
            if slots[idx].is_some() {
                return Err(HttpError::Malformed("duplicate correlation id"));
            }
            slots[idx] = Some(resp);
            data = rest;
        }
        slots
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .ok_or(HttpError::Malformed("missing pipelined response"))
    }

    /// `send` + non-2xx as error.
    pub fn send_expect_ok(
        &self,
        server: NodeId,
        req: &HttpRequest,
    ) -> Result<HttpResponse, HttpError> {
        let resp = self.send(server, req)?;
        if resp.is_success() {
            Ok(resp)
        } else {
            Err(HttpError::Status(
                resp.status,
                String::from_utf8_lossy(&resp.body).into_owned(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_wire_round_trip() {
        let req = HttpRequest::post("/soap", "text/xml", "<x/>").header("SOAPAction", "\"\"");
        let back = HttpRequest::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.get_header("soapaction"), Some("\"\""));
        assert_eq!(back.get_header("content-length"), Some("4"));
    }

    #[test]
    fn response_wire_round_trip() {
        let resp = HttpResponse::ok("text/xml", "<ok/>");
        let back = HttpResponse::from_bytes(&resp.to_bytes()).unwrap();
        assert_eq!(back, resp);
        assert!(back.is_success());
        assert!(!HttpResponse::not_found("/x").is_success());
    }

    #[test]
    fn malformed_wire_data_rejected() {
        assert!(HttpRequest::from_bytes(b"garbage").is_err());
        assert!(HttpRequest::from_bytes(b"GET\r\n\r\n").is_err());
        assert!(HttpResponse::from_bytes(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        assert!(HttpRequest::from_bytes(b"GET / SPDY/9\r\n\r\n").is_err());
        assert!(HttpRequest::from_bytes(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n").is_err());
    }

    #[test]
    fn server_routes_and_404s() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/hello", |_, req| {
            HttpResponse::ok("text/plain", format!("hi via {}", req.method))
        });
        let client = HttpClient::attach(&net, "pc", TcpModel::default());
        let resp = client
            .send(server.node(), &HttpRequest::get("/hello"))
            .unwrap();
        assert_eq!(resp.body, b"hi via GET");
        let resp = client
            .send(server.node(), &HttpRequest::get("/nope"))
            .unwrap();
        assert_eq!(resp.status, 404);
        assert!(client
            .send_expect_ok(server.node(), &HttpRequest::get("/nope"))
            .is_err());
    }

    #[test]
    fn exchange_charges_handshake_and_transfer() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/", |_, _| HttpResponse::ok("text/plain", "x"));
        let client = HttpClient::attach(&net, "pc", TcpModel::default());
        let before = sim.now();
        client.send(server.node(), &HttpRequest::get("/")).unwrap();
        let elapsed = sim.now() - before;
        // 2 handshake RTTs (800us) + 2 transfer legs (>=400us) + server
        // overhead (300us) on 100Mb Ethernet with 200us latency.
        assert!(elapsed.as_micros() >= 1_500, "elapsed {elapsed}");
        assert!(elapsed.as_millis() < 10, "elapsed {elapsed}");
    }

    #[test]
    fn persistent_connection_pays_one_handshake() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/", |_, _| HttpResponse::ok("text/plain", "x"));
        let client = HttpClient::attach(&net, "pc", TcpModel::persistent());
        let before = sim.now();
        client.send(server.node(), &HttpRequest::get("/")).unwrap();
        let first = sim.now() - before;
        let before = sim.now();
        client.send(server.node(), &HttpRequest::get("/")).unwrap();
        let second = sim.now() - before;
        // Second exchange skips the 2-RTT handshake (800us here).
        assert!(
            second.as_micros() + 800 <= first.as_micros(),
            "first {first}, second {second}"
        );
        assert_eq!(net.with_stats(|s| s.conns_opened()), 1);
    }

    #[test]
    fn connect_per_call_opens_a_connection_every_time() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/", |_, _| HttpResponse::ok("text/plain", "x"));
        let client = HttpClient::attach(&net, "pc", TcpModel::default());
        for _ in 0..3 {
            client.send(server.node(), &HttpRequest::get("/")).unwrap();
        }
        assert_eq!(net.with_stats(|s| s.conns_opened()), 3);
    }

    #[test]
    fn pipelined_responses_correlate_despite_reordering() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/echo", |_, req| {
            HttpResponse::ok("text/plain", req.body.clone())
        });
        let client = HttpClient::attach(&net, "pc", TcpModel::persistent());
        let reqs: Vec<HttpRequest> = (0..4)
            .map(|i| HttpRequest::post("/echo", "text/plain", format!("body-{i}")))
            .collect();
        let resps = client.send_pipelined(server.node(), &reqs).unwrap();
        assert_eq!(resps.len(), 4);
        // The server reverses completion order, so matching in request
        // order proves correlation really happened.
        for (i, resp) in resps.iter().enumerate() {
            assert_eq!(resp.body, format!("body-{i}").into_bytes());
        }
        // One connection, one request frame for the whole pipeline.
        assert_eq!(net.with_stats(|s| s.conns_opened()), 1);
    }

    #[test]
    fn pipelined_batch_is_cheaper_than_serial_sends() {
        let elapsed_for = |pipelined: bool| {
            let sim = Sim::new(1);
            let net = Network::ethernet(&sim);
            let server = HttpServer::bind(&net, "web", TcpModel::default());
            server.route("/x", |_, _| HttpResponse::ok("text/plain", "ok"));
            let tcp = if pipelined {
                TcpModel::persistent()
            } else {
                TcpModel::default()
            };
            let client = HttpClient::attach(&net, "pc", tcp);
            let reqs: Vec<HttpRequest> = (0..8)
                .map(|_| HttpRequest::post("/x", "text/plain", "b"))
                .collect();
            let before = sim.now();
            if pipelined {
                let resps = client.send_pipelined(server.node(), &reqs).unwrap();
                assert!(resps.iter().all(|r| r.is_success()));
            } else {
                for req in &reqs {
                    assert!(client.send(server.node(), req).unwrap().is_success());
                }
            }
            (sim.now() - before).as_micros()
        };
        let serial = elapsed_for(false);
        let batched = elapsed_for(true);
        assert!(
            batched * 3 < serial,
            "pipelined {batched}us vs serial {serial}us"
        );
    }

    #[test]
    fn unroute_removes_handler() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/x", |_, _| HttpResponse::ok("text/plain", ""));
        server.unroute("/x");
        let client = HttpClient::attach(&net, "pc", TcpModel::default());
        let resp = client.send(server.node(), &HttpRequest::get("/x")).unwrap();
        assert_eq!(resp.status, 404);
    }
}
