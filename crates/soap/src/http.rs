//! Simulated HTTP/1.1 over [`simnet`].
//!
//! The paper's prototype carries every VSG interaction over HTTP, and two
//! of its findings hinge on HTTP's behaviour: it is client/server only
//! (no asynchronous notification, §4.2) and it rides a TCP stack that is
//! heavy for small appliances. The simulation therefore models the
//! request/response pattern, per-connection handshake cost, and real
//! header bytes on the wire.

use bytes::Bytes;
use parking_lot::Mutex;
use simnet::{Frame, Network, NodeId, Protocol, Sim, SimDuration, SimError};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Header a pipelining client stamps on each request so it can match
/// responses that the server finishes in a different order.
const CORR_HEADER: &str = "X-Corr-Id";

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method, e.g. `POST`.
    pub method: String,
    /// Request path, e.g. `/soap/rpcrouter`.
    pub path: String,
    /// Headers in order.
    pub headers: Vec<(String, String)>,
    /// Entity body.
    pub body: Vec<u8>,
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Reason phrase, e.g. `OK`.
    pub reason: String,
    /// Headers in order.
    pub headers: Vec<(String, String)>,
    /// Entity body.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Creates a POST with a body (the SOAP workhorse).
    pub fn post(path: impl Into<String>, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        let body = body.into();
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            headers: vec![
                ("Content-Type".into(), content_type.into()),
                ("Content-Length".into(), body.len().to_string()),
                ("User-Agent".into(), "metaware/0.1".into()),
                ("Connection".into(), "close".into()),
            ],
            body,
        }
    }

    /// Creates a body-less GET.
    pub fn get(path: impl Into<String>) -> Self {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            headers: vec![
                ("User-Agent".into(), "metaware/0.1".into()),
                ("Connection".into(), "close".into()),
            ],
            body: Vec::new(),
        }
    }

    /// Adds a header (builder style).
    pub fn header(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((key.into(), value.into()));
        self
    }

    /// The first header with the given (case-insensitive) name.
    pub fn get_header(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut s = format!("{} {} HTTP/1.1\r\n", self.method, self.path);
        for (k, v) in &self.headers {
            s.push_str(k);
            s.push_str(": ");
            s.push_str(v);
            s.push_str("\r\n");
        }
        s.push_str("\r\n");
        let mut out = s.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses wire bytes.
    pub fn from_bytes(data: &[u8]) -> Result<HttpRequest, HttpError> {
        let (head, body) = split_head(data)?;
        let mut lines = head.lines();
        let request_line = lines.next().ok_or(HttpError::Malformed("empty request"))?;
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or(HttpError::Malformed("no method"))?
            .to_owned();
        let path = parts
            .next()
            .ok_or(HttpError::Malformed("no path"))?
            .to_owned();
        let version = parts.next().ok_or(HttpError::Malformed("no version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        let headers = parse_headers(lines)?;
        Ok(HttpRequest {
            method,
            path,
            headers,
            body,
        })
    }
}

impl HttpResponse {
    /// A 200 OK with a body.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        let body = body.into();
        HttpResponse {
            status: 200,
            reason: "OK".into(),
            headers: vec![
                ("Content-Type".into(), content_type.into()),
                ("Content-Length".into(), body.len().to_string()),
                ("Server".into(), "metaware/0.1".into()),
            ],
            body,
        }
    }

    /// An error status with a plain-text body.
    pub fn error(status: u16, reason: &str, body: impl Into<Vec<u8>>) -> Self {
        let body = body.into();
        HttpResponse {
            status,
            reason: reason.into(),
            headers: vec![
                ("Content-Type".into(), "text/plain".into()),
                ("Content-Length".into(), body.len().to_string()),
            ],
            body,
        }
    }

    /// A 404.
    pub fn not_found(path: &str) -> Self {
        HttpResponse::error(404, "Not Found", format!("no handler for {path}"))
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// The first header with the given (case-insensitive) name.
    pub fn get_header(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut s = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason);
        for (k, v) in &self.headers {
            s.push_str(k);
            s.push_str(": ");
            s.push_str(v);
            s.push_str("\r\n");
        }
        s.push_str("\r\n");
        let mut out = s.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses wire bytes.
    pub fn from_bytes(data: &[u8]) -> Result<HttpResponse, HttpError> {
        let (head, body) = split_head(data)?;
        let mut lines = head.lines();
        let status_line = lines.next().ok_or(HttpError::Malformed("empty response"))?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().ok_or(HttpError::Malformed("no version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        let status = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(HttpError::Malformed("bad status code"))?;
        let reason = parts.next().unwrap_or("").to_owned();
        let headers = parse_headers(lines)?;
        Ok(HttpResponse {
            status,
            reason,
            headers,
            body,
        })
    }
}

/// Length of the first self-delimiting HTTP message in `data`: head,
/// `\r\n\r\n`, then `Content-Length` body bytes. A message without
/// `Content-Length` runs to the end of the buffer (the
/// `Connection: close` convention), so only messages that declare their
/// length can share a pipelined payload.
fn message_len(data: &[u8]) -> Result<usize, HttpError> {
    let sep = data
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(HttpError::Malformed("missing header terminator"))?;
    let head = std::str::from_utf8(&data[..sep])
        .map_err(|_| HttpError::Malformed("non-UTF8 header block"))?;
    let mut content_length = None;
    for line in head.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse::<usize>().ok();
            }
        }
    }
    match content_length {
        Some(n) if sep + 4 + n <= data.len() => Ok(sep + 4 + n),
        Some(_) => Err(HttpError::Malformed("truncated body")),
        None => Ok(data.len()),
    }
}

fn split_head(data: &[u8]) -> Result<(&str, Vec<u8>), HttpError> {
    let sep = data
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(HttpError::Malformed("missing header terminator"))?;
    let head = std::str::from_utf8(&data[..sep])
        .map_err(|_| HttpError::Malformed("non-UTF8 header block"))?;
    Ok((head, data[sep + 4..].to_vec()))
}

fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        headers.push((k.trim().to_owned(), v.trim().to_owned()));
    }
    Ok(headers)
}

/// HTTP transport failures.
///
/// Network failures stay typed — they carry the underlying
/// [`SimError`], split by whether the request provably never reached
/// the server — so retry classification upstream never depends on
/// message text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The bytes did not parse as HTTP.
    Malformed(&'static str),
    /// The network failed before the request reached the server: the
    /// exchange is guaranteed not to have executed.
    Unreachable(SimError),
    /// The network failed after the request was delivered (the
    /// response was lost in transit): the server may well have
    /// processed the request.
    ResponseLost(SimError),
    /// Non-success status from the server.
    Status(u16, String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed HTTP message: {m}"),
            HttpError::Unreachable(e) => write!(f, "network error before delivery: {e}"),
            HttpError::ResponseLost(e) => write!(f, "network error, response lost: {e}"),
            HttpError::Status(code, body) => write!(f, "HTTP {code}: {body}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// The per-request TCP cost model.
///
/// 2002-era HTTP clients open a fresh connection per request
/// (`Connection: close`), paying the three-way handshake plus slow-start;
/// we charge `handshake_rtts` link round-trips before the request proper.
#[derive(Debug, Clone, Copy)]
pub struct TcpModel {
    /// Round trips charged for connection establishment + teardown.
    pub handshake_rtts: u32,
    /// Fixed per-request processing charged on the server (accept, parse
    /// headers, dispatch).
    pub server_overhead: SimDuration,
    /// When `true`, the client keeps one connection per peer alive
    /// (HTTP/1.1 keep-alive): only the first exchange to a peer pays
    /// the handshake, and a transport fault tears the connection down
    /// so the next exchange pays it again.
    pub persistent: bool,
}

impl Default for TcpModel {
    fn default() -> Self {
        TcpModel {
            handshake_rtts: 2, // SYN/SYN-ACK/ACK + FIN exchange, amortised
            server_overhead: SimDuration::from_micros(300),
            persistent: false,
        }
    }
}

impl TcpModel {
    /// The default cost model with persistent per-peer connections —
    /// the multiplexed wire path's transport, as opposed to 2002's
    /// connect-per-call.
    pub fn persistent() -> Self {
        TcpModel {
            persistent: true,
            ..TcpModel::default()
        }
    }
}

/// A route handler: consumes a request, produces a response, and may
/// charge CPU time on the `Sim` clock.
pub type RouteHandler = Box<dyn FnMut(&Sim, &HttpRequest) -> HttpResponse + Send>;

/// A simulated HTTP server bound to one network node.
#[derive(Clone)]
pub struct HttpServer {
    node: NodeId,
    routes: Arc<Mutex<HashMap<String, RouteHandler>>>,
}

impl HttpServer {
    /// Binds a server on `net`, attaching a new node with `label`.
    pub fn bind(net: &Network, label: &str, tcp: TcpModel) -> HttpServer {
        let node = net.attach(label);
        let routes: Arc<Mutex<HashMap<String, RouteHandler>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let routes2 = routes.clone();
        net.set_request_handler(node, move |sim, frame: &Frame| {
            // A payload may carry several pipelined requests; each is
            // self-delimiting (Content-Length) and each pays the
            // per-request server overhead.
            let mut data: &[u8] = &frame.payload;
            let mut responses: Vec<HttpResponse> = Vec::new();
            loop {
                sim.advance(tcp.server_overhead);
                let (msg, rest) = match message_len(data) {
                    Ok(n) => data.split_at(n),
                    Err(e) => {
                        responses.push(HttpResponse::error(400, "Bad Request", e.to_string()));
                        break;
                    }
                };
                let resp = match HttpRequest::from_bytes(msg) {
                    Ok(req) => {
                        let mut resp = {
                            let mut routes = routes2.lock();
                            match routes.get_mut(&req.path) {
                                Some(h) => h(sim, &req),
                                None => HttpResponse::not_found(&req.path),
                            }
                        };
                        // Echo the correlation id so the client can
                        // match responses regardless of completion
                        // order.
                        if let Some(id) = req.get_header(CORR_HEADER) {
                            resp.headers.push((CORR_HEADER.into(), id.to_owned()));
                        }
                        resp
                    }
                    Err(e) => HttpResponse::error(400, "Bad Request", e.to_string()),
                };
                responses.push(resp);
                data = rest;
                if data.is_empty() {
                    break;
                }
            }
            // A pipelined server may finish requests in any order; we
            // reverse deliberately so clients must correlate by id
            // instead of assuming FIFO.
            if responses.len() > 1 {
                responses.reverse();
            }
            let mut out = Vec::new();
            for resp in &responses {
                out.extend_from_slice(&resp.to_bytes());
            }
            Ok(Bytes::from(out))
        })
        .expect("node attached above");
        HttpServer { node, routes }
    }

    /// The node this server listens on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers (or replaces) the handler for `path`.
    pub fn route(
        &self,
        path: impl Into<String>,
        handler: impl FnMut(&Sim, &HttpRequest) -> HttpResponse + Send + 'static,
    ) {
        self.routes.lock().insert(path.into(), Box::new(handler));
    }

    /// Removes the handler for `path`.
    pub fn unroute(&self, path: &str) {
        self.routes.lock().remove(path);
    }
}

impl fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HttpServer")
            .field("node", &self.node)
            .field("routes", &self.routes.lock().len())
            .finish()
    }
}

/// A simulated HTTP client bound to one network node.
#[derive(Debug, Clone)]
pub struct HttpClient {
    net: Network,
    node: NodeId,
    tcp: TcpModel,
    /// Peers with an established connection (persistent mode only).
    /// Shared across clones so every handle to the same node reuses
    /// the same connections.
    conns: Arc<Mutex<HashSet<NodeId>>>,
}

impl HttpClient {
    /// Creates a client that sends from `node` on `net`.
    pub fn new(net: &Network, node: NodeId, tcp: TcpModel) -> HttpClient {
        HttpClient {
            net: net.clone(),
            node,
            tcp,
            conns: Arc::new(Mutex::new(HashSet::new())),
        }
    }

    /// Attaches a fresh node and wraps it in a client.
    pub fn attach(net: &Network, label: &str, tcp: TcpModel) -> HttpClient {
        let node = net.attach(label);
        HttpClient::new(net, node, tcp)
    }

    /// The node this client sends from.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Charges connection establishment unless a persistent connection
    /// to `server` is already up. Every handshake is counted in the
    /// network's [`simnet::NetStats`] so benches can report connection
    /// churn.
    fn connect(&self, sim: &Sim, server: NodeId) {
        if self.tcp.persistent && self.conns.lock().contains(&server) {
            return;
        }
        // Per-request TCP connection (Connection: close, as in 2002) —
        // or the first exchange on a persistent connection.
        let rtt = self.net.link().latency * 2;
        sim.advance(rtt * u64::from(self.tcp.handshake_rtts));
        self.net.with_stats(|s| s.record_conn_open());
        if self.tcp.persistent {
            self.conns.lock().insert(server);
        }
    }

    /// One raw exchange: connect (if needed), send `payload`, return
    /// the raw response bytes. A transport fault tears a persistent
    /// connection down, so the next exchange pays a fresh handshake.
    fn exchange(&self, server: NodeId, payload: Vec<u8>) -> Result<Bytes, HttpError> {
        let sim = self.net.sim().clone();
        self.connect(&sim, server);
        self.net
            .request(self.node, server, Protocol::Http, payload)
            .map_err(|e| {
                if self.tcp.persistent {
                    self.conns.lock().remove(&server);
                }
                // The client knows its own node, so it can tell a
                // request-leg failure (server never saw the request)
                // from a lost response (it may have executed).
                if e.before_delivery(self.node) {
                    HttpError::Unreachable(e)
                } else {
                    HttpError::ResponseLost(e)
                }
            })
    }

    /// Executes one HTTP exchange, charging connection setup plus both
    /// transfer legs to the virtual clock.
    pub fn send(&self, server: NodeId, req: &HttpRequest) -> Result<HttpResponse, HttpError> {
        let raw = self.exchange(server, req.to_bytes())?;
        HttpResponse::from_bytes(&raw)
    }

    /// Pipelines several requests over one exchange: all requests go
    /// out back-to-back on one connection, the server may finish them
    /// in any order, and responses are matched back to their requests
    /// by correlation id. Returns responses in *request* order. The
    /// whole pipeline shares one transport fate: a network error fails
    /// every request in it.
    pub fn send_pipelined(
        &self,
        server: NodeId,
        reqs: &[HttpRequest],
    ) -> Result<Vec<HttpResponse>, HttpError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let mut payload = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            let tagged = req.clone().header(CORR_HEADER, i.to_string());
            payload.extend_from_slice(&tagged.to_bytes());
        }
        let raw = self.exchange(server, payload)?;
        let mut slots: Vec<Option<HttpResponse>> = vec![None; reqs.len()];
        let mut data: &[u8] = &raw;
        while !data.is_empty() {
            let (msg, rest) = data.split_at(message_len(data)?);
            let resp = HttpResponse::from_bytes(msg)?;
            let idx = resp
                .get_header(CORR_HEADER)
                .and_then(|id| id.parse::<usize>().ok())
                .filter(|i| *i < slots.len())
                .ok_or(HttpError::Malformed("missing or bad correlation id"))?;
            if slots[idx].is_some() {
                return Err(HttpError::Malformed("duplicate correlation id"));
            }
            slots[idx] = Some(resp);
            data = rest;
        }
        slots
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .ok_or(HttpError::Malformed("missing pipelined response"))
    }

    /// `send` + non-2xx as error.
    pub fn send_expect_ok(
        &self,
        server: NodeId,
        req: &HttpRequest,
    ) -> Result<HttpResponse, HttpError> {
        let resp = self.send(server, req)?;
        if resp.is_success() {
            Ok(resp)
        } else {
            Err(HttpError::Status(
                resp.status,
                String::from_utf8_lossy(&resp.body).into_owned(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_wire_round_trip() {
        let req = HttpRequest::post("/soap", "text/xml", "<x/>").header("SOAPAction", "\"\"");
        let back = HttpRequest::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.get_header("soapaction"), Some("\"\""));
        assert_eq!(back.get_header("content-length"), Some("4"));
    }

    #[test]
    fn response_wire_round_trip() {
        let resp = HttpResponse::ok("text/xml", "<ok/>");
        let back = HttpResponse::from_bytes(&resp.to_bytes()).unwrap();
        assert_eq!(back, resp);
        assert!(back.is_success());
        assert!(!HttpResponse::not_found("/x").is_success());
    }

    #[test]
    fn malformed_wire_data_rejected() {
        assert!(HttpRequest::from_bytes(b"garbage").is_err());
        assert!(HttpRequest::from_bytes(b"GET\r\n\r\n").is_err());
        assert!(HttpResponse::from_bytes(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        assert!(HttpRequest::from_bytes(b"GET / SPDY/9\r\n\r\n").is_err());
        assert!(HttpRequest::from_bytes(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n").is_err());
    }

    #[test]
    fn server_routes_and_404s() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/hello", |_, req| {
            HttpResponse::ok("text/plain", format!("hi via {}", req.method))
        });
        let client = HttpClient::attach(&net, "pc", TcpModel::default());
        let resp = client
            .send(server.node(), &HttpRequest::get("/hello"))
            .unwrap();
        assert_eq!(resp.body, b"hi via GET");
        let resp = client
            .send(server.node(), &HttpRequest::get("/nope"))
            .unwrap();
        assert_eq!(resp.status, 404);
        assert!(client
            .send_expect_ok(server.node(), &HttpRequest::get("/nope"))
            .is_err());
    }

    #[test]
    fn exchange_charges_handshake_and_transfer() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/", |_, _| HttpResponse::ok("text/plain", "x"));
        let client = HttpClient::attach(&net, "pc", TcpModel::default());
        let before = sim.now();
        client.send(server.node(), &HttpRequest::get("/")).unwrap();
        let elapsed = sim.now() - before;
        // 2 handshake RTTs (800us) + 2 transfer legs (>=400us) + server
        // overhead (300us) on 100Mb Ethernet with 200us latency.
        assert!(elapsed.as_micros() >= 1_500, "elapsed {elapsed}");
        assert!(elapsed.as_millis() < 10, "elapsed {elapsed}");
    }

    #[test]
    fn persistent_connection_pays_one_handshake() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/", |_, _| HttpResponse::ok("text/plain", "x"));
        let client = HttpClient::attach(&net, "pc", TcpModel::persistent());
        let before = sim.now();
        client.send(server.node(), &HttpRequest::get("/")).unwrap();
        let first = sim.now() - before;
        let before = sim.now();
        client.send(server.node(), &HttpRequest::get("/")).unwrap();
        let second = sim.now() - before;
        // Second exchange skips the 2-RTT handshake (800us here).
        assert!(
            second.as_micros() + 800 <= first.as_micros(),
            "first {first}, second {second}"
        );
        assert_eq!(net.with_stats(|s| s.conns_opened()), 1);
    }

    #[test]
    fn connect_per_call_opens_a_connection_every_time() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/", |_, _| HttpResponse::ok("text/plain", "x"));
        let client = HttpClient::attach(&net, "pc", TcpModel::default());
        for _ in 0..3 {
            client.send(server.node(), &HttpRequest::get("/")).unwrap();
        }
        assert_eq!(net.with_stats(|s| s.conns_opened()), 3);
    }

    #[test]
    fn pipelined_responses_correlate_despite_reordering() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/echo", |_, req| {
            HttpResponse::ok("text/plain", req.body.clone())
        });
        let client = HttpClient::attach(&net, "pc", TcpModel::persistent());
        let reqs: Vec<HttpRequest> = (0..4)
            .map(|i| HttpRequest::post("/echo", "text/plain", format!("body-{i}")))
            .collect();
        let resps = client.send_pipelined(server.node(), &reqs).unwrap();
        assert_eq!(resps.len(), 4);
        // The server reverses completion order, so matching in request
        // order proves correlation really happened.
        for (i, resp) in resps.iter().enumerate() {
            assert_eq!(resp.body, format!("body-{i}").into_bytes());
        }
        // One connection, one request frame for the whole pipeline.
        assert_eq!(net.with_stats(|s| s.conns_opened()), 1);
    }

    #[test]
    fn pipelined_batch_is_cheaper_than_serial_sends() {
        let elapsed_for = |pipelined: bool| {
            let sim = Sim::new(1);
            let net = Network::ethernet(&sim);
            let server = HttpServer::bind(&net, "web", TcpModel::default());
            server.route("/x", |_, _| HttpResponse::ok("text/plain", "ok"));
            let tcp = if pipelined {
                TcpModel::persistent()
            } else {
                TcpModel::default()
            };
            let client = HttpClient::attach(&net, "pc", tcp);
            let reqs: Vec<HttpRequest> = (0..8)
                .map(|_| HttpRequest::post("/x", "text/plain", "b"))
                .collect();
            let before = sim.now();
            if pipelined {
                let resps = client.send_pipelined(server.node(), &reqs).unwrap();
                assert!(resps.iter().all(|r| r.is_success()));
            } else {
                for req in &reqs {
                    assert!(client.send(server.node(), req).unwrap().is_success());
                }
            }
            (sim.now() - before).as_micros()
        };
        let serial = elapsed_for(false);
        let batched = elapsed_for(true);
        assert!(
            batched * 3 < serial,
            "pipelined {batched}us vs serial {serial}us"
        );
    }

    #[test]
    fn unroute_removes_handler() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = HttpServer::bind(&net, "web", TcpModel::default());
        server.route("/x", |_, _| HttpResponse::ok("text/plain", ""));
        server.unroute("/x");
        let client = HttpClient::attach(&net, "pc", TcpModel::default());
        let resp = client.send(server.node(), &HttpRequest::get("/x")).unwrap();
        assert_eq!(resp.status, 404);
    }
}
