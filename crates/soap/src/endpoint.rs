//! SOAP endpoints: an RPC router (the Apache-SOAP `rpcrouter` analogue)
//! and a client, with a CPU cost model for XML processing.

use crate::fault::Fault;
use crate::http::{
    HttpClient, HttpRequestRef, HttpResponseRef, HttpServer, ResponseParts, TcpModel,
};
use crate::rpc::{fault_envelope, RpcCall, RpcResponse, SoapError};
use crate::value::Value;
use parking_lot::Mutex;
use simnet::{Network, NodeId, Sim, SimDuration};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The conventional router path, as in Apache SOAP 2.x.
pub const RPC_ROUTER_PATH: &str = "/soap/servlet/rpcrouter";

/// CPU costs of XML processing, modelling the 2002-era Java stack the
/// prototype ran on ("Java's low performance", §2.1).
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Cost to parse one byte of XML.
    pub parse_ns_per_byte: u64,
    /// Cost to emit one byte of XML.
    pub emit_ns_per_byte: u64,
    /// Fixed dispatch overhead per call (reflection, type mapping).
    pub dispatch: SimDuration,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            parse_ns_per_byte: 400,
            emit_ns_per_byte: 150,
            dispatch: SimDuration::from_micros(250),
        }
    }
}

impl CpuModel {
    /// A zero-cost model, for isolating wire costs in experiments.
    pub fn free() -> Self {
        CpuModel {
            parse_ns_per_byte: 0,
            emit_ns_per_byte: 0,
            dispatch: SimDuration::ZERO,
        }
    }

    /// The time to parse `bytes` of XML.
    pub fn parse_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros(bytes as u64 * self.parse_ns_per_byte / 1_000)
    }

    /// The time to emit `bytes` of XML.
    pub fn emit_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros(bytes as u64 * self.emit_ns_per_byte / 1_000)
    }
}

/// A service handler mounted on a [`SoapServer`].
pub type ServiceHandler = Box<dyn FnMut(&Sim, &RpcCall) -> Result<Value, Fault> + Send>;

/// A SOAP RPC server: one HTTP endpoint dispatching by target namespace,
/// mirroring Apache SOAP's rpcrouter servlet.
#[derive(Clone)]
pub struct SoapServer {
    http: HttpServer,
    services: Arc<Mutex<HashMap<String, ServiceHandler>>>,
    cpu: CpuModel,
}

impl SoapServer {
    /// Binds a router on a fresh node of `net`.
    pub fn bind(net: &Network, label: &str) -> SoapServer {
        SoapServer::bind_with(net, label, CpuModel::default(), TcpModel::default())
    }

    /// Binds with explicit cost models.
    pub fn bind_with(net: &Network, label: &str, cpu: CpuModel, tcp: TcpModel) -> SoapServer {
        let http = HttpServer::bind(net, label, tcp);
        let services: Arc<Mutex<HashMap<String, ServiceHandler>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let services2 = services.clone();
        // Zero-copy route: the request is read in place (no header or
        // body materialisation) and the response envelope is handed to
        // the server as lean parts, serialised straight into the
        // response train.
        http.route_zero(RPC_ROUTER_PATH, move |sim, req: &HttpRequestRef<'_>| {
            sim.advance(cpu.parse_cost(req.body.len()));
            let doc = String::from_utf8_lossy(req.body);
            let outcome = match RpcCall::from_envelope(&doc) {
                Ok(call) => {
                    sim.advance(cpu.dispatch);
                    let mut services = services2.lock();
                    match services.get_mut(&call.namespace) {
                        Some(h) => h(sim, &call).map(|v| RpcResponse::new(&call.method, v)),
                        None => Err(Fault::client(format!(
                            "no service registered for namespace '{}'",
                            call.namespace
                        ))),
                    }
                }
                Err(e) => Err(Fault::client(e.to_string())),
            };
            let body = match &outcome {
                Ok(resp) => resp.to_envelope(),
                Err(fault) => fault_envelope(fault),
            };
            sim.advance(cpu.emit_cost(body.len()));
            // SOAP 1.1 over HTTP: faults ride a 500, successes a 200.
            match outcome {
                Ok(_) => ResponseParts::ok("text/xml; charset=utf-8", body.into_bytes()),
                Err(_) => ResponseParts::error(
                    500,
                    "Internal Server Error",
                    "text/xml; charset=utf-8",
                    body.into_bytes(),
                ),
            }
        });
        SoapServer {
            http,
            services,
            cpu,
        }
    }

    /// The node the router listens on.
    pub fn node(&self) -> NodeId {
        self.http.node()
    }

    /// Mounts a service under `namespace` (e.g. `urn:vsg:vcr`).
    pub fn mount(
        &self,
        namespace: impl Into<String>,
        handler: impl FnMut(&Sim, &RpcCall) -> Result<Value, Fault> + Send + 'static,
    ) {
        self.services
            .lock()
            .insert(namespace.into(), Box::new(handler));
    }

    /// Unmounts a service.
    pub fn unmount(&self, namespace: &str) {
        self.services.lock().remove(namespace);
    }

    /// Namespaces currently mounted.
    pub fn namespaces(&self) -> Vec<String> {
        let mut v: Vec<String> = self.services.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// This server's CPU model.
    pub fn cpu(&self) -> CpuModel {
        self.cpu
    }
}

impl fmt::Debug for SoapServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SoapServer")
            .field("node", &self.node())
            .field("services", &self.services.lock().len())
            .finish()
    }
}

/// A SOAP RPC client.
#[derive(Debug, Clone)]
pub struct SoapClient {
    http: HttpClient,
    cpu: CpuModel,
    sim: Sim,
}

impl SoapClient {
    /// Attaches a fresh node on `net` as a SOAP client.
    pub fn attach(net: &Network, label: &str) -> SoapClient {
        SoapClient::attach_with(net, label, CpuModel::default(), TcpModel::default())
    }

    /// Attaches with explicit cost models.
    pub fn attach_with(net: &Network, label: &str, cpu: CpuModel, tcp: TcpModel) -> SoapClient {
        SoapClient {
            http: HttpClient::attach(net, label, tcp),
            cpu,
            sim: net.sim().clone(),
        }
    }

    /// Wraps an existing node as a SOAP client.
    pub fn on_node(net: &Network, node: NodeId, cpu: CpuModel, tcp: TcpModel) -> SoapClient {
        SoapClient {
            http: HttpClient::new(net, node, tcp),
            cpu,
            sim: net.sim().clone(),
        }
    }

    /// The node this client calls from.
    pub fn node(&self) -> NodeId {
        self.http.node()
    }

    /// Invokes `call` on the router at `server`, returning the result
    /// value or the fault/transport error.
    pub fn call(&self, server: NodeId, call: &RpcCall) -> Result<Value, SoapError> {
        self.dispatch(server, &call.namespace, &call.method, call.to_envelope())
    }

    /// Invokes `method` under `namespace` with borrowed arguments —
    /// the hot-path variant that skips assembling an owned [`RpcCall`]
    /// (and thus cloning every argument) just to encode an envelope.
    pub fn call_parts<'a>(
        &self,
        server: NodeId,
        namespace: &str,
        method: &str,
        args: impl IntoIterator<Item = (&'a str, &'a Value)>,
    ) -> Result<Value, SoapError> {
        let body = crate::rpc::call_envelope(namespace, method, args);
        self.dispatch(server, namespace, method, body)
    }

    /// [`SoapClient::call_parts`] with `SOAP-ENV:Header` entries
    /// (out-of-band metadata such as a trace context).
    pub fn call_parts_with_headers<'a, K: AsRef<str>, V: AsRef<str>>(
        &self,
        server: NodeId,
        namespace: &str,
        method: &str,
        args: impl IntoIterator<Item = (&'a str, &'a Value)>,
        headers: &[(K, V)],
    ) -> Result<Value, SoapError> {
        let body = crate::rpc::call_envelope_with_headers(namespace, method, args, headers);
        self.dispatch(server, namespace, method, body)
    }

    fn dispatch(
        &self,
        server: NodeId,
        namespace: &str,
        method: &str,
        body: String,
    ) -> Result<Value, SoapError> {
        self.sim.advance(self.cpu.emit_cost(body.len()));
        // Assemble the SOAPAction value by hand: one exact-size
        // allocation, no formatter machinery on the per-call path.
        let mut action = String::with_capacity(namespace.len() + method.len() + 3);
        action.push('"');
        action.push_str(namespace);
        action.push('#');
        action.push_str(method);
        action.push('"');
        // Wire bytes are assembled directly (no owned request built
        // just to serialise it) and the response is parsed in place.
        let mut payload = Vec::new();
        crate::http::write_post_into(
            &mut payload,
            RPC_ROUTER_PATH,
            "text/xml; charset=utf-8",
            body.as_bytes(),
            &[("SOAPAction", &action)],
        );
        let raw = self
            .http
            .send_raw(server, payload)
            .map_err(SoapError::Http)?;
        let resp = HttpResponseRef::parse(&raw).map_err(SoapError::Http)?;
        self.sim.advance(self.cpu.parse_cost(resp.body.len()));
        let doc = String::from_utf8_lossy(resp.body);
        // Both 200s and 500-carried faults parse as envelopes.
        RpcResponse::from_envelope(&doc).map(|r| r.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Sim, SoapServer, SoapClient) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = SoapServer::bind(&net, "router");
        let client = SoapClient::attach(&net, "pc");
        (sim, server, client)
    }

    #[test]
    fn end_to_end_rpc() {
        let (_sim, server, client) = setup();
        server.mount("urn:calc", |_, call| {
            let a = call.get("a").and_then(Value::as_int).unwrap_or(0);
            let b = call.get("b").and_then(Value::as_int).unwrap_or(0);
            match call.method.as_str() {
                "add" => Ok(Value::Int(a + b)),
                other => Err(Fault::client(format!("no method {other}"))),
            }
        });
        let result = client
            .call(
                server.node(),
                &RpcCall::new("urn:calc", "add").arg("a", 2).arg("b", 40),
            )
            .unwrap();
        assert_eq!(result, Value::Int(42));
    }

    #[test]
    fn fault_propagates_to_caller() {
        let (_sim, server, client) = setup();
        server.mount("urn:calc", |_, _| Err(Fault::server("overheated")));
        let err = client
            .call(server.node(), &RpcCall::new("urn:calc", "add"))
            .unwrap_err();
        match err {
            SoapError::Fault(f) => assert_eq!(f.string, "overheated"),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn unknown_namespace_is_client_fault() {
        let (_sim, _server, client) = setup();
        let err = client
            .call(_server_node(&_server), &RpcCall::new("urn:ghost", "boo"))
            .unwrap_err();
        match err {
            SoapError::Fault(f) => {
                assert_eq!(f.code, crate::fault::FaultCode::Client);
                assert!(f.string.contains("urn:ghost"));
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    fn _server_node(s: &SoapServer) -> NodeId {
        s.node()
    }

    #[test]
    fn mount_unmount_cycle() {
        let (_sim, server, client) = setup();
        server.mount("urn:a", |_, _| Ok(Value::Null));
        assert_eq!(server.namespaces(), vec!["urn:a".to_owned()]);
        assert!(client
            .call(server.node(), &RpcCall::new("urn:a", "m"))
            .is_ok());
        server.unmount("urn:a");
        assert!(server.namespaces().is_empty());
        assert!(client
            .call(server.node(), &RpcCall::new("urn:a", "m"))
            .is_err());
    }

    #[test]
    fn rpc_costs_dominated_by_envelope_overhead() {
        // A trivial call still moves >600 wire bytes and burns visible
        // virtual time — the "SOAP is light but not free" observation
        // that E4 quantifies.
        let (sim, server, client) = setup();
        server.mount("urn:x", |_, _| Ok(Value::Int(1)));
        let before = sim.now();
        client
            .call(server.node(), &RpcCall::new("urn:x", "ping"))
            .unwrap();
        let elapsed = sim.now() - before;
        assert!(elapsed.as_micros() > 1_000, "elapsed {elapsed}");
    }

    #[test]
    fn client_against_plain_http_server_fails_cleanly() {
        // A SOAP client pointed at a web server with no rpcrouter gets a
        // clean error, not a panic or a bogus value.
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let web =
            crate::http::HttpServer::bind(&net, "plain-web", crate::http::TcpModel::default());
        web.route("/index.html", |_, _| {
            crate::http::HttpResponse::ok("text/html", "<html/>")
        });
        let client = SoapClient::attach(&net, "pc");
        let err = client
            .call(web.node(), &RpcCall::new("urn:x", "m"))
            .unwrap_err();
        // The 404 body is not a SOAP envelope.
        assert!(
            matches!(
                err,
                crate::rpc::SoapError::Xml(_) | crate::rpc::SoapError::Malformed(_)
            ),
            "{err:?}"
        );
    }

    #[test]
    fn client_against_dead_node_reports_http_error() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let client = SoapClient::attach(&net, "pc");
        let err = client
            .call(simnet::NodeId(999), &RpcCall::new("urn:x", "m"))
            .unwrap_err();
        assert!(matches!(err, crate::rpc::SoapError::Http(_)), "{err:?}");
    }

    #[test]
    fn free_cpu_model_is_cheaper() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = SoapServer::bind_with(&net, "r", CpuModel::free(), TcpModel::default());
        server.mount("urn:x", |_, _| Ok(Value::Null));
        let free_client = SoapClient::attach_with(&net, "c", CpuModel::free(), TcpModel::default());
        let t0 = sim.now();
        free_client
            .call(server.node(), &RpcCall::new("urn:x", "m"))
            .unwrap();
        let free_cost = sim.now() - t0;

        let sim2 = Sim::new(1);
        let net2 = Network::ethernet(&sim2);
        let server2 = SoapServer::bind(&net2, "r");
        server2.mount("urn:x", |_, _| Ok(Value::Null));
        let client2 = SoapClient::attach(&net2, "c");
        let t0 = sim2.now();
        client2
            .call(server2.node(), &RpcCall::new("urn:x", "m"))
            .unwrap();
        let java_cost = sim2.now() - t0;
        assert!(java_cost > free_cost, "{java_cost} vs {free_cost}");
    }
}
