//! WSDL-style service descriptions.
//!
//! §3.3 of the paper: "if the protocol of VSG is SOAP, the VSG will be
//! implemented with WSDL and UDDI". A [`ServiceDescription`] is the
//! document the Virtual Service Repository stores for every bridged
//! service: its abstract interface (port type + operations) plus the
//! concrete VSG endpoint that reaches it.

use crate::types::XsdType;
use minixml::Element;
use std::fmt;

/// One named, typed message part (a parameter or return value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Part {
    /// Parameter name.
    pub name: String,
    /// Declared wire type.
    pub ty: XsdType,
}

impl Part {
    /// Creates a part.
    pub fn new(name: impl Into<String>, ty: XsdType) -> Part {
        Part {
            name: name.into(),
            ty,
        }
    }
}

/// One operation of a port type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation name.
    pub name: String,
    /// Input parts, in call order.
    pub inputs: Vec<Part>,
    /// Output part; `None` for one-way/void operations.
    pub output: Option<Part>,
    /// Whether invoking the operation twice is equivalent to invoking
    /// it once (a pure read, or an absolute state set). Carried as an
    /// `idempotent="true"` attribute so resilience layers on *other*
    /// gateways can decide retry safety from the description alone.
    pub idempotent: bool,
}

impl Operation {
    /// Creates a void operation with no inputs.
    pub fn new(name: impl Into<String>) -> Operation {
        Operation {
            name: name.into(),
            inputs: Vec::new(),
            output: None,
            idempotent: false,
        }
    }

    /// Marks the operation idempotent (builder style).
    pub fn idempotent(mut self) -> Operation {
        self.idempotent = true;
        self
    }

    /// Adds an input part (builder style).
    pub fn input(mut self, name: impl Into<String>, ty: XsdType) -> Operation {
        self.inputs.push(Part::new(name, ty));
        self
    }

    /// Sets the output part (builder style).
    pub fn returns(mut self, ty: XsdType) -> Operation {
        self.output = Some(Part::new("return", ty));
        self
    }
}

/// A complete service description: abstract interface + concrete endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescription {
    /// Service name, unique within the home (e.g. `living-room-vcr`).
    pub name: String,
    /// Target namespace, also the SOAP routing key (e.g. `urn:vsg:vcr`).
    pub namespace: String,
    /// The operations this service offers.
    pub operations: Vec<Operation>,
    /// The VSG endpoint that reaches the service, as
    /// `vsg://<gateway>/<service>`.
    pub endpoint: String,
    /// Free-text documentation.
    pub documentation: String,
}

impl ServiceDescription {
    /// Creates a description with no operations.
    pub fn new(name: impl Into<String>, namespace: impl Into<String>) -> Self {
        ServiceDescription {
            name: name.into(),
            namespace: namespace.into(),
            operations: Vec::new(),
            endpoint: String::new(),
            documentation: String::new(),
        }
    }

    /// Adds an operation (builder style).
    pub fn operation(mut self, op: Operation) -> Self {
        self.operations.push(op);
        self
    }

    /// Sets the endpoint (builder style).
    pub fn at(mut self, endpoint: impl Into<String>) -> Self {
        self.endpoint = endpoint.into();
        self
    }

    /// Sets documentation (builder style).
    pub fn doc(mut self, text: impl Into<String>) -> Self {
        self.documentation = text.into();
        self
    }

    /// Finds an operation by name.
    pub fn find_operation(&self, name: &str) -> Option<&Operation> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// Serialises to a WSDL-style document.
    pub fn to_xml(&self) -> Element {
        let mut port_type = Element::new("portType").attr("name", format!("{}PortType", self.name));
        for op in &self.operations {
            let mut op_el = Element::new("operation").attr("name", &op.name);
            if op.idempotent {
                op_el = op_el.attr("idempotent", "true");
            }
            let mut input = Element::new("input");
            for p in &op.inputs {
                input.push(
                    Element::new("part")
                        .attr("name", &p.name)
                        .attr("type", p.ty.as_qname()),
                );
            }
            op_el.push(input);
            if let Some(out) = &op.output {
                op_el.push(
                    Element::new("output").child(
                        Element::new("part")
                            .attr("name", &out.name)
                            .attr("type", out.ty.as_qname()),
                    ),
                );
            }
            port_type.push(op_el);
        }
        let mut defs = Element::new("definitions")
            .attr("name", &self.name)
            .attr("targetNamespace", &self.namespace);
        if !self.documentation.is_empty() {
            defs.push(Element::new("documentation").text(&self.documentation));
        }
        defs.push(port_type);
        defs.push(
            Element::new("service").attr("name", &self.name).child(
                Element::new("port")
                    .child(Element::new("soap:address").attr("location", &self.endpoint)),
            ),
        );
        defs
    }

    /// Parses a WSDL-style document produced by [`Self::to_xml`].
    pub fn from_xml(e: &Element) -> Result<ServiceDescription, DescriptionError> {
        if e.local_name() != "definitions" {
            return Err(DescriptionError::new("root must be <definitions>"));
        }
        let name = e
            .get_attr("name")
            .ok_or_else(|| DescriptionError::new("definitions missing name"))?
            .to_owned();
        let namespace = e.get_attr("targetNamespace").unwrap_or_default().to_owned();
        let documentation = e
            .find("documentation")
            .map(Element::text_content)
            .unwrap_or_default();
        let mut operations = Vec::new();
        if let Some(pt) = e.find("portType") {
            for op_el in pt.find_all("operation") {
                let op_name = op_el
                    .get_attr("name")
                    .ok_or_else(|| DescriptionError::new("operation missing name"))?
                    .to_owned();
                let mut op = Operation::new(op_name);
                op.idempotent = op_el.get_attr("idempotent") == Some("true");
                if let Some(input) = op_el.find("input") {
                    for p in input.find_all("part") {
                        op.inputs.push(Part::new(
                            p.get_attr("name").unwrap_or("arg"),
                            XsdType::from_qname(p.get_attr("type").unwrap_or("anyType")),
                        ));
                    }
                }
                if let Some(output) = op_el.find("output") {
                    if let Some(p) = output.find("part") {
                        op.output = Some(Part::new(
                            p.get_attr("name").unwrap_or("return"),
                            XsdType::from_qname(p.get_attr("type").unwrap_or("anyType")),
                        ));
                    }
                }
                operations.push(op);
            }
        }
        let endpoint = e
            .find_path(&["service", "port", "address"])
            .and_then(|a| a.get_attr("location"))
            .unwrap_or_default()
            .to_owned();
        Ok(ServiceDescription {
            name,
            namespace,
            operations,
            endpoint,
            documentation,
        })
    }
}

/// A description parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescriptionError {
    /// What went wrong.
    pub message: String,
}

impl DescriptionError {
    fn new(m: impl Into<String>) -> Self {
        DescriptionError { message: m.into() }
    }
}

impl fmt::Display for DescriptionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid service description: {}", self.message)
    }
}

impl std::error::Error for DescriptionError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn vcr() -> ServiceDescription {
        ServiceDescription::new("living-room-vcr", "urn:vsg:vcr")
            .doc("HAVi VCR bridged to the VSG")
            .at("vsg://havi-gw/living-room-vcr")
            .operation(
                Operation::new("record")
                    .input("channel", XsdType::Int)
                    .input("title", XsdType::String)
                    .returns(XsdType::Boolean),
            )
            .operation(Operation::new("stop"))
            .operation(
                Operation::new("position")
                    .returns(XsdType::Int)
                    .idempotent(),
            )
    }

    #[test]
    fn xml_round_trip() {
        let d = vcr();
        let back = ServiceDescription::from_xml(&d.to_xml()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn round_trip_through_text() {
        let d = vcr();
        let doc = d.to_xml().to_document();
        let parsed = minixml::parse(&doc).unwrap();
        assert_eq!(ServiceDescription::from_xml(&parsed).unwrap(), d);
    }

    #[test]
    fn idempotence_survives_the_wire() {
        let d = vcr();
        let doc = d.to_xml().to_document();
        let back = ServiceDescription::from_xml(&minixml::parse(&doc).unwrap()).unwrap();
        assert!(back.find_operation("position").unwrap().idempotent);
        assert!(!back.find_operation("record").unwrap().idempotent);
    }

    #[test]
    fn find_operation() {
        let d = vcr();
        assert_eq!(d.find_operation("record").unwrap().inputs.len(), 2);
        assert!(d.find_operation("record").unwrap().output.is_some());
        assert!(d.find_operation("stop").unwrap().output.is_none());
        assert!(d.find_operation("rewind").is_none());
    }

    #[test]
    fn rejects_wrong_root() {
        let e = Element::new("notdefs");
        assert!(ServiceDescription::from_xml(&e).is_err());
        let e = Element::new("definitions"); // no name
        assert!(ServiceDescription::from_xml(&e).is_err());
    }

    #[test]
    fn unknown_part_types_become_any() {
        let doc = r#"<definitions name="s" targetNamespace="urn:s">
            <portType name="sPortType">
              <operation name="op"><input><part name="x" type="vendor:blob"/></input></operation>
            </portType></definitions>"#;
        let d = ServiceDescription::from_xml(&minixml::parse(doc).unwrap()).unwrap();
        assert_eq!(d.operations[0].inputs[0].ty, XsdType::Any);
        assert_eq!(d.endpoint, "");
    }
}
