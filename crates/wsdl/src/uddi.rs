//! A UDDI-style registry.
//!
//! Universal Description, Discovery and Integration, as the paper's
//! prototype used "to describe the repository" (§4.1). The model keeps
//! UDDI's three-tier structure — business entities own business services,
//! services carry binding templates pointing at access points, and
//! tModels hold the technical fingerprints (here: WSDL documents) —
//! with the v2 `find_*` inquiry semantics ('%' wildcards, category bags).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A registry key (`uuid:NNNN` style).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub String);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A publisher (in the home: a middleware island's gateway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessEntity {
    /// Registry key.
    pub key: Key,
    /// Display name.
    pub name: String,
    /// Free-text description.
    pub description: String,
}

/// A categorisation entry in a service's category bag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedReference {
    /// The taxonomy this reference belongs to (e.g. `uddi:middleware`).
    pub taxonomy: String,
    /// The value within the taxonomy (e.g. `jini`, `havi`, `x10`).
    pub value: String,
}

impl KeyedReference {
    /// Creates a reference.
    pub fn new(taxonomy: impl Into<String>, value: impl Into<String>) -> Self {
        KeyedReference {
            taxonomy: taxonomy.into(),
            value: value.into(),
        }
    }
}

/// A concrete way to reach a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingTemplate {
    /// Registry key.
    pub key: Key,
    /// The access point (here: a `vsg://gateway/service` endpoint).
    pub access_point: String,
    /// The tModel describing the interface, if registered.
    pub tmodel_key: Option<Key>,
}

/// A published service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessService {
    /// Registry key.
    pub key: Key,
    /// Owning business.
    pub business_key: Key,
    /// Display name.
    pub name: String,
    /// Categorisation.
    pub categories: Vec<KeyedReference>,
    /// Ways to reach the service.
    pub bindings: Vec<BindingTemplate>,
}

impl BusinessService {
    /// True if the category bag contains `taxonomy == value`.
    pub fn has_category(&self, taxonomy: &str, value: &str) -> bool {
        self.categories
            .iter()
            .any(|c| c.taxonomy == taxonomy && c.value == value)
    }
}

/// A technical model: named interface fingerprint with an overview
/// document (here, the WSDL text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TModel {
    /// Registry key.
    pub key: Key,
    /// Interface name.
    pub name: String,
    /// The overview document (WSDL).
    pub overview_doc: String,
}

/// Inquiry statistics, reported by experiment E8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// `save_*` calls served.
    pub publishes: u64,
    /// `find_*` calls served.
    pub inquiries: u64,
    /// Records scanned across all inquiries.
    pub records_scanned: u64,
}

/// The in-memory registry.
///
/// Inquiries are index-backed: a name index (keyed on the
/// ASCII-lowercased service name, so both exact lookups and
/// `prefix%` wildcard patterns resolve via `BTreeMap` range scans)
/// and a per-taxonomy category index narrow `find_service` to the
/// candidate set instead of scanning every record. The indexes are
/// always maintained; [`UddiRegistry::set_indexing`] only switches
/// the *lookup* path back to a full scan, so benches can ablate
/// indexed vs. scan behaviour on identical registry state.
#[derive(Debug)]
pub struct UddiRegistry {
    businesses: BTreeMap<Key, BusinessEntity>,
    services: BTreeMap<Key, BusinessService>,
    tmodels: BTreeMap<Key, TModel>,
    /// ASCII-lowercased service name → keys of services with that name.
    name_index: BTreeMap<String, Vec<Key>>,
    /// taxonomy → value → keys of services carrying that category.
    category_index: HashMap<String, HashMap<String, BTreeSet<Key>>>,
    indexing: bool,
    next_id: u64,
    stats: RegistryStats,
}

impl Default for UddiRegistry {
    fn default() -> Self {
        UddiRegistry {
            businesses: BTreeMap::new(),
            services: BTreeMap::new(),
            tmodels: BTreeMap::new(),
            name_index: BTreeMap::new(),
            category_index: HashMap::new(),
            indexing: true,
            next_id: 0,
            stats: RegistryStats::default(),
        }
    }
}

/// Which records an inquiry must examine.
enum Candidates {
    /// No index applies — scan every record.
    All,
    /// Only these keys can possibly match.
    Keys(Vec<Key>),
}

impl UddiRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables index-backed inquiry (for ablation
    /// benchmarks). Indexes stay maintained either way; disabling only
    /// forces `find_service` back to a full scan.
    pub fn set_indexing(&mut self, enabled: bool) {
        self.indexing = enabled;
    }

    fn fresh_key(&mut self, kind: &str) -> Key {
        self.next_id += 1;
        Key(format!("uuid:{kind}:{:06}", self.next_id))
    }

    // ---- publication -----------------------------------------------------

    /// Registers a business entity, returning its key.
    pub fn save_business(&mut self, name: &str, description: &str) -> Key {
        self.stats.publishes += 1;
        let key = self.fresh_key("biz");
        self.businesses.insert(
            key.clone(),
            BusinessEntity {
                key: key.clone(),
                name: name.into(),
                description: description.into(),
            },
        );
        key
    }

    /// Registers a tModel, returning its key.
    pub fn save_tmodel(&mut self, name: &str, overview_doc: &str) -> Key {
        self.stats.publishes += 1;
        let key = self.fresh_key("tm");
        self.tmodels.insert(
            key.clone(),
            TModel {
                key: key.clone(),
                name: name.into(),
                overview_doc: overview_doc.into(),
            },
        );
        key
    }

    /// Publishes a service under `business_key`, returning its key.
    ///
    /// Returns `None` if the business does not exist.
    pub fn save_service(
        &mut self,
        business_key: &Key,
        name: &str,
        categories: Vec<KeyedReference>,
        access_point: &str,
        tmodel_key: Option<Key>,
    ) -> Option<Key> {
        self.stats.publishes += 1;
        if !self.businesses.contains_key(business_key) {
            return None;
        }
        let key = self.fresh_key("svc");
        let binding_key = self.fresh_key("bind");
        let service = BusinessService {
            key: key.clone(),
            business_key: business_key.clone(),
            name: name.into(),
            categories,
            bindings: vec![BindingTemplate {
                key: binding_key,
                access_point: access_point.into(),
                tmodel_key,
            }],
        };
        self.index_service(&service);
        self.services.insert(key.clone(), service);
        Some(key)
    }

    /// Removes a service.
    pub fn delete_service(&mut self, key: &Key) -> bool {
        match self.services.remove(key) {
            Some(service) => {
                self.unindex_service(&service);
                true
            }
            None => false,
        }
    }

    /// Removes every service whose name equals `name` (UDDI names are
    /// case-insensitive), returning the removed records so callers can
    /// clean up orphaned tModels. Index-backed: no scan of unrelated
    /// records.
    pub fn delete_services_by_name(&mut self, name: &str) -> Vec<BusinessService> {
        let keys = self
            .name_index
            .get(&name.to_ascii_lowercase())
            .cloned()
            .unwrap_or_default();
        let mut removed = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(service) = self.services.remove(&key) {
                self.unindex_service(&service);
                removed.push(service);
            }
        }
        removed
    }

    /// Removes a tModel (e.g. once no service binding references it).
    pub fn delete_tmodel(&mut self, key: &Key) -> bool {
        self.tmodels.remove(key).is_some()
    }

    fn index_service(&mut self, service: &BusinessService) {
        self.name_index
            .entry(service.name.to_ascii_lowercase())
            .or_default()
            .push(service.key.clone());
        for cat in &service.categories {
            self.category_index
                .entry(cat.taxonomy.clone())
                .or_default()
                .entry(cat.value.clone())
                .or_default()
                .insert(service.key.clone());
        }
    }

    fn unindex_service(&mut self, service: &BusinessService) {
        let lname = service.name.to_ascii_lowercase();
        if let Some(keys) = self.name_index.get_mut(&lname) {
            keys.retain(|k| k != &service.key);
            if keys.is_empty() {
                self.name_index.remove(&lname);
            }
        }
        for cat in &service.categories {
            if let Some(values) = self.category_index.get_mut(&cat.taxonomy) {
                if let Some(keys) = values.get_mut(&cat.value) {
                    keys.remove(&service.key);
                    if keys.is_empty() {
                        values.remove(&cat.value);
                    }
                }
                if values.is_empty() {
                    self.category_index.remove(&cat.taxonomy);
                }
            }
        }
    }

    // ---- inquiry ----------------------------------------------------------

    /// Finds businesses whose name matches `pattern` (`%` wildcards,
    /// case-insensitive — UDDI v2 semantics).
    pub fn find_business(&mut self, pattern: &str) -> Vec<BusinessEntity> {
        self.stats.inquiries += 1;
        self.stats.records_scanned += self.businesses.len() as u64;
        self.businesses
            .values()
            .filter(|b| matches_pattern(pattern, &b.name))
            .cloned()
            .collect()
    }

    /// Finds services by name pattern and (optional) required categories.
    ///
    /// All `categories` must be present in a service's bag for it to
    /// match. With indexing enabled, only candidate records selected by
    /// the name/category indexes are examined, and
    /// `RegistryStats::records_scanned` counts exactly those — so E8
    /// reports the true lookup cost either way.
    pub fn find_service(
        &mut self,
        pattern: &str,
        categories: &[KeyedReference],
    ) -> Vec<BusinessService> {
        self.stats.inquiries += 1;
        let matches = |s: &BusinessService| {
            matches_pattern(pattern, &s.name)
                && categories
                    .iter()
                    .all(|c| s.has_category(&c.taxonomy, &c.value))
        };
        match self.candidates(pattern, categories) {
            Candidates::All => {
                self.stats.records_scanned += self.services.len() as u64;
                self.services
                    .values()
                    .filter(|s| matches(s))
                    .cloned()
                    .collect()
            }
            Candidates::Keys(keys) => {
                self.stats.records_scanned += keys.len() as u64;
                keys.iter()
                    .filter_map(|k| self.services.get(k))
                    .filter(|s| matches(s))
                    .cloned()
                    .collect()
            }
        }
    }

    /// Picks the cheapest candidate set for an inquiry: exact-name hit,
    /// name-prefix range, or the smallest matching category bucket.
    fn candidates(&self, pattern: &str, categories: &[KeyedReference]) -> Candidates {
        if !self.indexing {
            return Candidates::All;
        }
        // The run of literal characters before the first wildcard is an
        // index-resolvable prefix (UDDI names compare case-insensitively).
        let prefix: String = pattern
            .chars()
            .take_while(|c| *c != '%')
            .collect::<String>()
            .to_ascii_lowercase();
        if !pattern.contains('%') {
            let keys = self.name_index.get(&prefix).cloned().unwrap_or_default();
            return Candidates::Keys(keys);
        }
        if !prefix.is_empty() {
            let keys: Vec<Key> = self
                .name_index
                .range(prefix.clone()..)
                .take_while(|(name, _)| name.starts_with(&prefix))
                .flat_map(|(_, ks)| ks.iter().cloned())
                .collect();
            return Candidates::Keys(keys);
        }
        // Leading wildcard: the name index cannot help, but if the
        // inquiry constrains categories, the smallest category bucket
        // bounds the candidates (a category absent from the index means
        // no record can match at all).
        let smallest = categories
            .iter()
            .map(|c| {
                self.category_index
                    .get(&c.taxonomy)
                    .and_then(|values| values.get(&c.value))
            })
            .min_by_key(|bucket| bucket.map_or(0, |keys| keys.len()));
        match smallest {
            Some(bucket) => Candidates::Keys(
                bucket
                    .map(|keys| keys.iter().cloned().collect())
                    .unwrap_or_default(),
            ),
            None => Candidates::All,
        }
    }

    /// Full detail for one service.
    pub fn get_service(&mut self, key: &Key) -> Option<BusinessService> {
        self.stats.inquiries += 1;
        self.stats.records_scanned += 1;
        self.services.get(key).cloned()
    }

    /// Full detail for one tModel.
    pub fn get_tmodel(&mut self, key: &Key) -> Option<TModel> {
        self.stats.inquiries += 1;
        self.stats.records_scanned += 1;
        self.tmodels.get(key).cloned()
    }

    /// Finds tModels by name pattern.
    pub fn find_tmodel(&mut self, pattern: &str) -> Vec<TModel> {
        self.stats.inquiries += 1;
        self.stats.records_scanned += self.tmodels.len() as u64;
        self.tmodels
            .values()
            .filter(|t| matches_pattern(pattern, &t.name))
            .cloned()
            .collect()
    }

    // ---- introspection -----------------------------------------------------

    /// Number of published services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Number of registered businesses.
    pub fn business_count(&self) -> usize {
        self.businesses.len()
    }

    /// Inquiry/publication statistics.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }
}

/// UDDI v2 name matching: `%` matches any run of characters,
/// comparison is case-insensitive.
pub fn matches_pattern(pattern: &str, name: &str) -> bool {
    fn rec(p: &[u8], n: &[u8]) -> bool {
        match p.split_first() {
            None => n.is_empty(),
            Some((b'%', rest)) => (0..=n.len()).any(|i| rec(rest, &n[i..])),
            Some((c, rest)) => match n.split_first() {
                Some((nc, nrest)) => c.eq_ignore_ascii_case(nc) && rec(rest, nrest),
                None => false,
            },
        }
    }
    rec(pattern.as_bytes(), name.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> (UddiRegistry, Key) {
        let mut reg = UddiRegistry::new();
        let biz = reg.save_business("havi-gateway", "HAVi island");
        let tm = reg.save_tmodel("VcrPortType", "<definitions name=\"vcr\"/>");
        reg.save_service(
            &biz,
            "living-room-vcr",
            vec![
                KeyedReference::new("uddi:middleware", "havi"),
                KeyedReference::new("uddi:device-class", "vcr"),
            ],
            "vsg://havi-gw/living-room-vcr",
            Some(tm),
        )
        .unwrap();
        reg.save_service(
            &biz,
            "bedroom-camera",
            vec![KeyedReference::new("uddi:middleware", "havi")],
            "vsg://havi-gw/bedroom-camera",
            None,
        )
        .unwrap();
        (reg, biz)
    }

    #[test]
    fn publish_and_find_by_name() {
        let (mut reg, _) = seeded();
        assert_eq!(reg.service_count(), 2);
        let found = reg.find_service("living%", &[]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "living-room-vcr");
        assert_eq!(
            found[0].bindings[0].access_point,
            "vsg://havi-gw/living-room-vcr"
        );
    }

    #[test]
    fn find_by_category() {
        let (mut reg, _) = seeded();
        let havi = reg.find_service("%", &[KeyedReference::new("uddi:middleware", "havi")]);
        assert_eq!(havi.len(), 2);
        let vcrs = reg.find_service(
            "%",
            &[
                KeyedReference::new("uddi:middleware", "havi"),
                KeyedReference::new("uddi:device-class", "vcr"),
            ],
        );
        assert_eq!(vcrs.len(), 1);
        let jini = reg.find_service("%", &[KeyedReference::new("uddi:middleware", "jini")]);
        assert!(jini.is_empty());
    }

    #[test]
    fn tmodel_carries_wsdl() {
        let (mut reg, _) = seeded();
        let svc = &reg.find_service("living%", &[])[0];
        let tm_key = svc.bindings[0].tmodel_key.clone().unwrap();
        let tm = reg.get_tmodel(&tm_key).unwrap();
        assert!(tm.overview_doc.contains("definitions"));
        assert_eq!(reg.find_tmodel("Vcr%").len(), 1);
    }

    #[test]
    fn service_under_unknown_business_rejected() {
        let mut reg = UddiRegistry::new();
        let got = reg.save_service(&Key("uuid:biz:999999".into()), "x", vec![], "vsg://x", None);
        assert!(got.is_none());
    }

    #[test]
    fn delete_service_works() {
        let (mut reg, _) = seeded();
        let key = reg.find_service("living%", &[])[0].key.clone();
        assert!(reg.delete_service(&key));
        assert!(!reg.delete_service(&key));
        assert_eq!(reg.service_count(), 1);
        assert!(reg.get_service(&key).is_none());
    }

    #[test]
    fn stats_track_activity() {
        let (mut reg, _) = seeded();
        let before = reg.stats();
        assert_eq!(before.publishes, 4); // 1 biz + 1 tmodel + 2 services
        reg.find_service("%", &[]);
        reg.find_business("%");
        let after = reg.stats();
        assert_eq!(after.inquiries, before.inquiries + 2);
        assert!(after.records_scanned > before.records_scanned);
    }

    #[test]
    fn pattern_semantics() {
        assert!(matches_pattern("%", ""));
        assert!(matches_pattern("%", "anything"));
        assert!(matches_pattern("vcr", "VCR"));
        assert!(matches_pattern("living%vcr", "living-room-vcr"));
        assert!(matches_pattern("%vcr%", "the-vcr-service"));
        assert!(!matches_pattern("vcr", "vcr2"));
        assert!(!matches_pattern("a%b", "ac"));
        assert!(matches_pattern("a%%b", "ab"));
    }

    #[test]
    fn keys_are_unique_and_ordered() {
        let mut reg = UddiRegistry::new();
        let a = reg.save_business("a", "");
        let b = reg.save_business("b", "");
        assert_ne!(a, b);
        assert_eq!(reg.business_count(), 2);
    }

    fn populated(n: usize) -> UddiRegistry {
        let mut reg = UddiRegistry::new();
        let biz = reg.save_business("home", "whole home");
        for i in 0..n {
            let middleware = ["jini", "havi", "x10", "upnp"][i % 4];
            reg.save_service(
                &biz,
                &format!("device-{i:04}"),
                vec![KeyedReference::new("uddi:middleware", middleware)],
                &format!("vsg://gw/device-{i:04}"),
                None,
            )
            .unwrap();
        }
        reg
    }

    #[test]
    fn exact_name_inquiry_is_index_backed() {
        let mut reg = populated(1000);
        let before = reg.stats().records_scanned;
        let found = reg.find_service("device-0777", &[]);
        assert_eq!(found.len(), 1);
        let scanned = reg.stats().records_scanned - before;
        // Acceptance criterion: >=10x fewer records examined than the
        // full 1000-record scan. The index gets it down to exactly 1.
        assert_eq!(scanned, 1, "exact-name inquiry examined {scanned} records");

        reg.set_indexing(false);
        let before = reg.stats().records_scanned;
        let found = reg.find_service("device-0777", &[]);
        assert_eq!(found.len(), 1);
        assert_eq!(reg.stats().records_scanned - before, 1000);
    }

    #[test]
    fn prefix_pattern_scans_only_the_name_range() {
        let mut reg = populated(1000);
        let before = reg.stats().records_scanned;
        let found = reg.find_service("device-099%", &[]);
        assert_eq!(found.len(), 10); // device-0990 .. device-0999
        assert_eq!(reg.stats().records_scanned - before, 10);
    }

    #[test]
    fn leading_wildcard_uses_the_category_index() {
        let mut reg = populated(1000);
        let before = reg.stats().records_scanned;
        let found = reg.find_service("%", &[KeyedReference::new("uddi:middleware", "x10")]);
        assert_eq!(found.len(), 250);
        assert_eq!(reg.stats().records_scanned - before, 250);

        // A category no record carries is answered from the index alone.
        let before = reg.stats().records_scanned;
        let found = reg.find_service("%", &[KeyedReference::new("uddi:middleware", "corba")]);
        assert!(found.is_empty());
        assert_eq!(reg.stats().records_scanned - before, 0);
    }

    #[test]
    fn indexed_and_scan_lookups_agree() {
        let mut reg = populated(97);
        let patterns = [
            "%",
            "device-0042",
            "device-00%",
            "%42",
            "DEVICE-0007",
            "nothing-like-this",
        ];
        let cats = [
            vec![],
            vec![KeyedReference::new("uddi:middleware", "jini")],
            vec![KeyedReference::new("uddi:middleware", "nope")],
        ];
        for pattern in patterns {
            for cat in &cats {
                let indexed = reg.find_service(pattern, cat);
                reg.set_indexing(false);
                let scanned = reg.find_service(pattern, cat);
                reg.set_indexing(true);
                assert_eq!(indexed, scanned, "pattern {pattern:?} cats {cat:?}");
            }
        }
    }

    #[test]
    fn delete_by_name_updates_indexes() {
        let (mut reg, biz) = seeded();
        // A second service under the same (case-insensitively equal) name.
        reg.save_service(
            &biz,
            "Living-Room-VCR",
            vec![KeyedReference::new("uddi:middleware", "havi")],
            "vsg://havi-gw/living-room-vcr-2",
            None,
        )
        .unwrap();
        let removed = reg.delete_services_by_name("living-room-vcr");
        assert_eq!(removed.len(), 2);
        assert_eq!(reg.service_count(), 1);
        assert!(reg.find_service("living-room-vcr", &[]).is_empty());
        assert!(reg.delete_services_by_name("living-room-vcr").is_empty());
        // The survivor is still fully indexed.
        let found = reg.find_service("%", &[KeyedReference::new("uddi:middleware", "havi")]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "bedroom-camera");
    }

    #[test]
    fn churn_keeps_indexes_consistent() {
        let mut reg = UddiRegistry::new();
        let biz = reg.save_business("home", "");
        for round in 0..5 {
            for i in 0..20 {
                reg.save_service(
                    &biz,
                    &format!("svc-{i}"),
                    vec![KeyedReference::new("uddi:gen", format!("g{}", i % 3))],
                    "vsg://gw/x",
                    None,
                )
                .unwrap();
            }
            for i in (0..20).step_by(2) {
                let removed = reg.delete_services_by_name(&format!("svc-{i}"));
                assert_eq!(removed.len(), 1, "round {round} svc-{i}");
            }
        }
        // 5 rounds x (20 added - 10 removed).
        assert_eq!(reg.service_count(), 50);
        assert_eq!(reg.find_service("svc-3", &[]).len(), 5);
        assert_eq!(
            reg.find_service("%", &[KeyedReference::new("uddi:gen", "g1")])
                .len(),
            20
        );
    }
}
