//! A UDDI-style registry.
//!
//! Universal Description, Discovery and Integration, as the paper's
//! prototype used "to describe the repository" (§4.1). The model keeps
//! UDDI's three-tier structure — business entities own business services,
//! services carry binding templates pointing at access points, and
//! tModels hold the technical fingerprints (here: WSDL documents) —
//! with the v2 `find_*` inquiry semantics ('%' wildcards, category bags).

use std::collections::BTreeMap;
use std::fmt;

/// A registry key (`uuid:NNNN` style).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub String);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A publisher (in the home: a middleware island's gateway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessEntity {
    /// Registry key.
    pub key: Key,
    /// Display name.
    pub name: String,
    /// Free-text description.
    pub description: String,
}

/// A categorisation entry in a service's category bag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedReference {
    /// The taxonomy this reference belongs to (e.g. `uddi:middleware`).
    pub taxonomy: String,
    /// The value within the taxonomy (e.g. `jini`, `havi`, `x10`).
    pub value: String,
}

impl KeyedReference {
    /// Creates a reference.
    pub fn new(taxonomy: impl Into<String>, value: impl Into<String>) -> Self {
        KeyedReference { taxonomy: taxonomy.into(), value: value.into() }
    }
}

/// A concrete way to reach a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingTemplate {
    /// Registry key.
    pub key: Key,
    /// The access point (here: a `vsg://gateway/service` endpoint).
    pub access_point: String,
    /// The tModel describing the interface, if registered.
    pub tmodel_key: Option<Key>,
}

/// A published service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessService {
    /// Registry key.
    pub key: Key,
    /// Owning business.
    pub business_key: Key,
    /// Display name.
    pub name: String,
    /// Categorisation.
    pub categories: Vec<KeyedReference>,
    /// Ways to reach the service.
    pub bindings: Vec<BindingTemplate>,
}

impl BusinessService {
    /// True if the category bag contains `taxonomy == value`.
    pub fn has_category(&self, taxonomy: &str, value: &str) -> bool {
        self.categories
            .iter()
            .any(|c| c.taxonomy == taxonomy && c.value == value)
    }
}

/// A technical model: named interface fingerprint with an overview
/// document (here, the WSDL text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TModel {
    /// Registry key.
    pub key: Key,
    /// Interface name.
    pub name: String,
    /// The overview document (WSDL).
    pub overview_doc: String,
}

/// Inquiry statistics, reported by experiment E8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// `save_*` calls served.
    pub publishes: u64,
    /// `find_*` calls served.
    pub inquiries: u64,
    /// Records scanned across all inquiries.
    pub records_scanned: u64,
}

/// The in-memory registry.
#[derive(Debug, Default)]
pub struct UddiRegistry {
    businesses: BTreeMap<Key, BusinessEntity>,
    services: BTreeMap<Key, BusinessService>,
    tmodels: BTreeMap<Key, TModel>,
    next_id: u64,
    stats: RegistryStats,
}

impl UddiRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_key(&mut self, kind: &str) -> Key {
        self.next_id += 1;
        Key(format!("uuid:{kind}:{:06}", self.next_id))
    }

    // ---- publication -----------------------------------------------------

    /// Registers a business entity, returning its key.
    pub fn save_business(&mut self, name: &str, description: &str) -> Key {
        self.stats.publishes += 1;
        let key = self.fresh_key("biz");
        self.businesses.insert(
            key.clone(),
            BusinessEntity { key: key.clone(), name: name.into(), description: description.into() },
        );
        key
    }

    /// Registers a tModel, returning its key.
    pub fn save_tmodel(&mut self, name: &str, overview_doc: &str) -> Key {
        self.stats.publishes += 1;
        let key = self.fresh_key("tm");
        self.tmodels.insert(
            key.clone(),
            TModel { key: key.clone(), name: name.into(), overview_doc: overview_doc.into() },
        );
        key
    }

    /// Publishes a service under `business_key`, returning its key.
    ///
    /// Returns `None` if the business does not exist.
    pub fn save_service(
        &mut self,
        business_key: &Key,
        name: &str,
        categories: Vec<KeyedReference>,
        access_point: &str,
        tmodel_key: Option<Key>,
    ) -> Option<Key> {
        self.stats.publishes += 1;
        if !self.businesses.contains_key(business_key) {
            return None;
        }
        let key = self.fresh_key("svc");
        let binding_key = self.fresh_key("bind");
        self.services.insert(
            key.clone(),
            BusinessService {
                key: key.clone(),
                business_key: business_key.clone(),
                name: name.into(),
                categories,
                bindings: vec![BindingTemplate {
                    key: binding_key,
                    access_point: access_point.into(),
                    tmodel_key,
                }],
            },
        );
        Some(key)
    }

    /// Removes a service.
    pub fn delete_service(&mut self, key: &Key) -> bool {
        self.services.remove(key).is_some()
    }

    // ---- inquiry ----------------------------------------------------------

    /// Finds businesses whose name matches `pattern` (`%` wildcards,
    /// case-insensitive — UDDI v2 semantics).
    pub fn find_business(&mut self, pattern: &str) -> Vec<BusinessEntity> {
        self.stats.inquiries += 1;
        self.stats.records_scanned += self.businesses.len() as u64;
        self.businesses
            .values()
            .filter(|b| matches_pattern(pattern, &b.name))
            .cloned()
            .collect()
    }

    /// Finds services by name pattern and (optional) required categories.
    ///
    /// All `categories` must be present in a service's bag for it to match.
    pub fn find_service(
        &mut self,
        pattern: &str,
        categories: &[KeyedReference],
    ) -> Vec<BusinessService> {
        self.stats.inquiries += 1;
        self.stats.records_scanned += self.services.len() as u64;
        self.services
            .values()
            .filter(|s| matches_pattern(pattern, &s.name))
            .filter(|s| {
                categories
                    .iter()
                    .all(|c| s.has_category(&c.taxonomy, &c.value))
            })
            .cloned()
            .collect()
    }

    /// Full detail for one service.
    pub fn get_service(&mut self, key: &Key) -> Option<BusinessService> {
        self.stats.inquiries += 1;
        self.stats.records_scanned += 1;
        self.services.get(key).cloned()
    }

    /// Full detail for one tModel.
    pub fn get_tmodel(&mut self, key: &Key) -> Option<TModel> {
        self.stats.inquiries += 1;
        self.stats.records_scanned += 1;
        self.tmodels.get(key).cloned()
    }

    /// Finds tModels by name pattern.
    pub fn find_tmodel(&mut self, pattern: &str) -> Vec<TModel> {
        self.stats.inquiries += 1;
        self.stats.records_scanned += self.tmodels.len() as u64;
        self.tmodels
            .values()
            .filter(|t| matches_pattern(pattern, &t.name))
            .cloned()
            .collect()
    }

    // ---- introspection -----------------------------------------------------

    /// Number of published services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Number of registered businesses.
    pub fn business_count(&self) -> usize {
        self.businesses.len()
    }

    /// Inquiry/publication statistics.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }
}

/// UDDI v2 name matching: `%` matches any run of characters,
/// comparison is case-insensitive.
pub fn matches_pattern(pattern: &str, name: &str) -> bool {
    fn rec(p: &[u8], n: &[u8]) -> bool {
        match p.split_first() {
            None => n.is_empty(),
            Some((b'%', rest)) => {
                (0..=n.len()).any(|i| rec(rest, &n[i..]))
            }
            Some((c, rest)) => match n.split_first() {
                Some((nc, nrest)) => c.eq_ignore_ascii_case(nc) && rec(rest, nrest),
                None => false,
            },
        }
    }
    rec(pattern.as_bytes(), name.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> (UddiRegistry, Key) {
        let mut reg = UddiRegistry::new();
        let biz = reg.save_business("havi-gateway", "HAVi island");
        let tm = reg.save_tmodel("VcrPortType", "<definitions name=\"vcr\"/>");
        reg.save_service(
            &biz,
            "living-room-vcr",
            vec![
                KeyedReference::new("uddi:middleware", "havi"),
                KeyedReference::new("uddi:device-class", "vcr"),
            ],
            "vsg://havi-gw/living-room-vcr",
            Some(tm),
        )
        .unwrap();
        reg.save_service(
            &biz,
            "bedroom-camera",
            vec![KeyedReference::new("uddi:middleware", "havi")],
            "vsg://havi-gw/bedroom-camera",
            None,
        )
        .unwrap();
        (reg, biz)
    }

    #[test]
    fn publish_and_find_by_name() {
        let (mut reg, _) = seeded();
        assert_eq!(reg.service_count(), 2);
        let found = reg.find_service("living%", &[]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "living-room-vcr");
        assert_eq!(found[0].bindings[0].access_point, "vsg://havi-gw/living-room-vcr");
    }

    #[test]
    fn find_by_category() {
        let (mut reg, _) = seeded();
        let havi = reg.find_service("%", &[KeyedReference::new("uddi:middleware", "havi")]);
        assert_eq!(havi.len(), 2);
        let vcrs = reg.find_service(
            "%",
            &[
                KeyedReference::new("uddi:middleware", "havi"),
                KeyedReference::new("uddi:device-class", "vcr"),
            ],
        );
        assert_eq!(vcrs.len(), 1);
        let jini = reg.find_service("%", &[KeyedReference::new("uddi:middleware", "jini")]);
        assert!(jini.is_empty());
    }

    #[test]
    fn tmodel_carries_wsdl() {
        let (mut reg, _) = seeded();
        let svc = &reg.find_service("living%", &[])[0];
        let tm_key = svc.bindings[0].tmodel_key.clone().unwrap();
        let tm = reg.get_tmodel(&tm_key).unwrap();
        assert!(tm.overview_doc.contains("definitions"));
        assert_eq!(reg.find_tmodel("Vcr%").len(), 1);
    }

    #[test]
    fn service_under_unknown_business_rejected() {
        let mut reg = UddiRegistry::new();
        let got = reg.save_service(&Key("uuid:biz:999999".into()), "x", vec![], "vsg://x", None);
        assert!(got.is_none());
    }

    #[test]
    fn delete_service_works() {
        let (mut reg, _) = seeded();
        let key = reg.find_service("living%", &[])[0].key.clone();
        assert!(reg.delete_service(&key));
        assert!(!reg.delete_service(&key));
        assert_eq!(reg.service_count(), 1);
        assert!(reg.get_service(&key).is_none());
    }

    #[test]
    fn stats_track_activity() {
        let (mut reg, _) = seeded();
        let before = reg.stats();
        assert_eq!(before.publishes, 4); // 1 biz + 1 tmodel + 2 services
        reg.find_service("%", &[]);
        reg.find_business("%");
        let after = reg.stats();
        assert_eq!(after.inquiries, before.inquiries + 2);
        assert!(after.records_scanned > before.records_scanned);
    }

    #[test]
    fn pattern_semantics() {
        assert!(matches_pattern("%", ""));
        assert!(matches_pattern("%", "anything"));
        assert!(matches_pattern("vcr", "VCR"));
        assert!(matches_pattern("living%vcr", "living-room-vcr"));
        assert!(matches_pattern("%vcr%", "the-vcr-service"));
        assert!(!matches_pattern("vcr", "vcr2"));
        assert!(!matches_pattern("a%b", "ac"));
        assert!(matches_pattern("a%%b", "ab"));
    }

    #[test]
    fn keys_are_unique_and_ordered() {
        let mut reg = UddiRegistry::new();
        let a = reg.save_business("a", "");
        let b = reg.save_business("b", "");
        assert_ne!(a, b);
        assert_eq!(reg.business_count(), 2);
    }
}
