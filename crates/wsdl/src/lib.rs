//! # wsdl — service descriptions and a UDDI-style registry
//!
//! §3.3 of the paper: the Virtual Service Repository "will be implemented
//! with WSDL and UDDI" when the VSG protocol is SOAP. This crate provides
//! both halves: [`ServiceDescription`] (a WSDL-like interface + endpoint
//! document) and [`UddiRegistry`] (publish/inquiry with `%` wildcard
//! matching and category bags).
//!
//! ```
//! use wsdl::{ServiceDescription, Operation, XsdType, UddiRegistry, KeyedReference};
//!
//! let desc = ServiceDescription::new("lamp", "urn:vsg:lamp")
//!     .at("vsg://x10-gw/lamp")
//!     .operation(Operation::new("switch").input("on", XsdType::Boolean));
//!
//! let mut reg = UddiRegistry::new();
//! let biz = reg.save_business("x10-gateway", "powerline island");
//! let tm = reg.save_tmodel("lampPortType", &desc.to_xml().to_document());
//! reg.save_service(&biz, "lamp",
//!     vec![KeyedReference::new("uddi:middleware", "x10")],
//!     &desc.endpoint, Some(tm)).unwrap();
//! assert_eq!(reg.find_service("l%", &[]).len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod description;
pub mod types;
pub mod uddi;

pub use description::{DescriptionError, Operation, Part, ServiceDescription};
pub use types::XsdType;
pub use uddi::{
    matches_pattern, BindingTemplate, BusinessEntity, BusinessService, Key, KeyedReference,
    RegistryStats, TModel, UddiRegistry,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_type() -> impl Strategy<Value = XsdType> {
        prop_oneof![
            Just(XsdType::String),
            Just(XsdType::Int),
            Just(XsdType::Boolean),
            Just(XsdType::Double),
            Just(XsdType::Base64),
            Just(XsdType::Any),
        ]
    }

    proptest! {
        #[test]
        fn description_round_trips(
            name in "[a-z][a-z0-9-]{0,12}",
            ops in prop::collection::vec(
                ("[a-z][a-zA-Z0-9]{0,10}",
                 prop::collection::vec(("[a-z][a-z0-9]{0,6}", arb_type()), 0..4),
                 prop::option::of(arb_type())),
                0..5,
            ),
        ) {
            let mut d = ServiceDescription::new(&name, format!("urn:vsg:{name}"))
                .at(format!("vsg://gw/{name}"));
            for (op_name, inputs, ret) in ops {
                let mut op = Operation::new(op_name);
                for (pn, pt) in inputs {
                    op = op.input(pn, pt);
                }
                if let Some(r) = ret {
                    op = op.returns(r);
                }
                d = d.operation(op);
            }
            let text = d.to_xml().to_document();
            let back = ServiceDescription::from_xml(&minixml::parse(&text).unwrap()).unwrap();
            prop_assert_eq!(back, d);
        }

        #[test]
        fn pattern_literal_matches_itself(s in "[a-zA-Z0-9 -]{0,24}") {
            prop_assert!(matches_pattern(&s, &s));
        }

        #[test]
        fn percent_prefix_suffix_always_match(s in "[a-zA-Z0-9-]{0,16}") {
            let prefix = matches_pattern(&format!("%{}", s), &s);
            let suffix = matches_pattern(&format!("{}%", s), &s);
            let both = matches_pattern(&format!("%{}%", s), &s);
            prop_assert!(prefix && suffix && both);
        }

        #[test]
        fn registry_find_returns_exactly_published_matches(
            names in prop::collection::btree_set("[a-z]{1,8}", 1..12),
        ) {
            let mut reg = UddiRegistry::new();
            let biz = reg.save_business("home", "");
            for n in &names {
                reg.save_service(&biz, n, vec![], &format!("vsg://gw/{n}"), None).unwrap();
            }
            prop_assert_eq!(reg.find_service("%", &[]).len(), names.len());
            for n in &names {
                let hits = reg.find_service(n, &[]);
                prop_assert_eq!(hits.len(), 1, "exact find of {}", n);
            }
        }
    }
}
