//! The XSD-subset type vocabulary used in service descriptions.

use std::fmt;

/// Wire types a service operation can declare for its parts.
///
/// This is the subset Apache SOAP's type mappings covered and is rich
/// enough for every appliance interface in the paper's prototype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XsdType {
    /// `xsd:string`.
    String,
    /// `xsd:long`.
    Int,
    /// `xsd:boolean`.
    Boolean,
    /// `xsd:double`.
    Double,
    /// `xsd:base64Binary`.
    Base64,
    /// An untyped value (`xsd:anyType`) — lists, structs, or anything.
    Any,
}

impl XsdType {
    /// The qualified name on the wire.
    pub fn as_qname(self) -> &'static str {
        match self {
            XsdType::String => "xsd:string",
            XsdType::Int => "xsd:long",
            XsdType::Boolean => "xsd:boolean",
            XsdType::Double => "xsd:double",
            XsdType::Base64 => "xsd:base64Binary",
            XsdType::Any => "xsd:anyType",
        }
    }

    /// Parses a qualified (or bare) name; unknown names map to `Any`,
    /// matching the lenient behaviour of 2002 tooling.
    pub fn from_qname(s: &str) -> XsdType {
        let local = s.rsplit(':').next().unwrap_or(s);
        match local {
            "string" => XsdType::String,
            "int" | "long" | "short" | "byte" | "integer" => XsdType::Int,
            "boolean" => XsdType::Boolean,
            "double" | "float" | "decimal" => XsdType::Double,
            "base64Binary" | "base64" => XsdType::Base64,
            _ => XsdType::Any,
        }
    }
}

impl fmt::Display for XsdType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_qname())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qnames_round_trip() {
        for t in [
            XsdType::String,
            XsdType::Int,
            XsdType::Boolean,
            XsdType::Double,
            XsdType::Base64,
            XsdType::Any,
        ] {
            assert_eq!(XsdType::from_qname(t.as_qname()), t);
        }
    }

    #[test]
    fn aliases_and_unknowns() {
        assert_eq!(XsdType::from_qname("xsd:int"), XsdType::Int);
        assert_eq!(XsdType::from_qname("float"), XsdType::Double);
        assert_eq!(XsdType::from_qname("vendor:weird"), XsdType::Any);
    }
}
