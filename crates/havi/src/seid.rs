//! Software element identifiers and status codes.

use simnet::NodeId;
use std::fmt;

/// A HAVi Software Element ID: the 1394 node it lives on plus a
/// node-local handle assigned by that node's messaging system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Seid {
    /// The hosting 1394 node.
    pub node: NodeId,
    /// Node-local software element handle.
    pub handle: u32,
}

impl Seid {
    /// Creates a SEID.
    pub fn new(node: NodeId, handle: u32) -> Seid {
        Seid { node, handle }
    }
}

impl fmt::Display for Seid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seid:{}.{}", self.node.0, self.handle)
    }
}

/// HAVi API status codes (the subset the simulation uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaviStatus {
    /// Success.
    Success,
    /// The target software element does not exist.
    EUnknownSeid,
    /// The operation code is not supported by the target.
    EUnsupported,
    /// Parameters were malformed.
    EParameter,
    /// The FCM cannot honour the request in its current state.
    EState,
    /// Resource exhaustion (e.g. no isochronous bandwidth left).
    EResource,
    /// The bus failed mid-operation.
    ENetwork,
}

impl HaviStatus {
    /// The wire byte.
    pub fn code(self) -> u8 {
        match self {
            HaviStatus::Success => 0,
            HaviStatus::EUnknownSeid => 1,
            HaviStatus::EUnsupported => 2,
            HaviStatus::EParameter => 3,
            HaviStatus::EState => 4,
            HaviStatus::EResource => 5,
            HaviStatus::ENetwork => 6,
        }
    }

    /// Inverse of [`HaviStatus::code`]; unknown bytes map to `ENetwork`.
    pub fn from_code(c: u8) -> HaviStatus {
        match c {
            0 => HaviStatus::Success,
            1 => HaviStatus::EUnknownSeid,
            2 => HaviStatus::EUnsupported,
            3 => HaviStatus::EParameter,
            4 => HaviStatus::EState,
            5 => HaviStatus::EResource,
            _ => HaviStatus::ENetwork,
        }
    }

    /// True for `Success`.
    pub fn is_ok(self) -> bool {
        self == HaviStatus::Success
    }
}

impl fmt::Display for HaviStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HaviStatus::Success => "SUCCESS",
            HaviStatus::EUnknownSeid => "E_UNKNOWN_SEID",
            HaviStatus::EUnsupported => "E_UNSUPPORTED",
            HaviStatus::EParameter => "E_PARAMETER",
            HaviStatus::EState => "E_STATE",
            HaviStatus::EResource => "E_RESOURCE",
            HaviStatus::ENetwork => "E_NETWORK",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_round_trip() {
        for s in [
            HaviStatus::Success,
            HaviStatus::EUnknownSeid,
            HaviStatus::EUnsupported,
            HaviStatus::EParameter,
            HaviStatus::EState,
            HaviStatus::EResource,
            HaviStatus::ENetwork,
        ] {
            assert_eq!(HaviStatus::from_code(s.code()), s);
        }
        assert_eq!(HaviStatus::from_code(200), HaviStatus::ENetwork);
    }

    #[test]
    fn seid_display_and_ordering() {
        let a = Seid::new(NodeId(1), 2);
        let b = Seid::new(NodeId(1), 3);
        assert!(a < b);
        assert_eq!(a.to_string(), "seid:1.2");
    }

    #[test]
    fn only_success_is_ok() {
        assert!(HaviStatus::Success.is_ok());
        assert!(!HaviStatus::EState.is_ok());
    }
}
