//! Functional Control Modules.
//!
//! A HAVi device exposes its functions as FCMs — a VCR FCM, a DV-camera
//! FCM, a tuner FCM — each with a typed operation set and an internal
//! transport state machine. The prototype's Universal Remote Controller
//! (Fig. 5) ends up driving exactly these operations.

use crate::events::{event_type, post};
use crate::hvalue::HValue;
use crate::messaging::MessagingSystem;
use crate::seid::{HaviStatus, Seid};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// The device classes the prototype's home contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcmKind {
    /// Video cassette recorder.
    Vcr,
    /// DV camera (the one in Fig. 5).
    DvCamera,
    /// Broadcast tuner.
    Tuner,
    /// Display (digital TV panel).
    Display,
    /// Audio amplifier.
    Amplifier,
}

impl FcmKind {
    /// The HAVi API class code for this FCM type.
    pub fn api_code(self) -> u16 {
        match self {
            FcmKind::Vcr => 0x0103,
            FcmKind::DvCamera => 0x0104,
            FcmKind::Tuner => 0x0105,
            FcmKind::Display => 0x0106,
            FcmKind::Amplifier => 0x0107,
        }
    }

    /// The registry `ATT_DEVICE_CLASS` value.
    pub fn device_class(self) -> &'static str {
        match self {
            FcmKind::Vcr => "vcr",
            FcmKind::DvCamera => "dv-camera",
            FcmKind::Tuner => "tuner",
            FcmKind::Display => "display",
            FcmKind::Amplifier => "amplifier",
        }
    }

    /// True if this FCM type has a tape-transport mechanism.
    pub fn has_transport(self) -> bool {
        matches!(self, FcmKind::Vcr | FcmKind::DvCamera)
    }
}

impl fmt::Display for FcmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.device_class())
    }
}

/// FCM operation ids (shared across FCM API classes).
pub mod oper {
    /// Start playback.
    pub const PLAY: u16 = 1;
    /// Stop the transport.
    pub const STOP: u16 = 2;
    /// Start recording (`Vcr`/`DvCamera`).
    pub const RECORD: u16 = 3;
    /// Fast-forward.
    pub const WIND: u16 = 4;
    /// Rewind.
    pub const REWIND: u16 = 5;
    /// Report status; returns `[Str state, U32 position]`.
    pub const STATUS: u16 = 6;
    /// Tuner: set channel (`[U16 channel]`).
    pub const SET_CHANNEL: u16 = 10;
    /// Tuner: get channel; returns `[U16 channel]`.
    pub const GET_CHANNEL: u16 = 11;
    /// Display: show on-screen text (`[Str text]`).
    pub const SHOW_OSD: u16 = 20;
    /// Amplifier: set volume (`[U8 volume]`).
    pub const SET_VOLUME: u16 = 30;
    /// Amplifier: get volume; returns `[U8 volume]`.
    pub const GET_VOLUME: u16 = 31;
    /// DvCamera: capture a still; returns `[U32 frame-number]`.
    pub const CAPTURE: u16 = 40;
}

/// A tape transport's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportState {
    /// Idle.
    Stopped,
    /// Playing.
    Playing,
    /// Recording.
    Recording,
    /// Fast-forwarding.
    Winding,
    /// Rewinding.
    Rewinding,
}

impl TransportState {
    /// Stable label used on the wire and in OSDs.
    pub fn label(self) -> &'static str {
        match self {
            TransportState::Stopped => "stopped",
            TransportState::Playing => "playing",
            TransportState::Recording => "recording",
            TransportState::Winding => "winding",
            TransportState::Rewinding => "rewinding",
        }
    }
}

/// The mutable state behind one FCM.
#[derive(Debug, Clone, PartialEq)]
pub struct FcmStateSnapshot {
    /// Transport state.
    pub transport: TransportState,
    /// Tape position (arbitrary counter units).
    pub position: u32,
    /// Whether a cassette is loaded (transports only).
    pub media_present: bool,
    /// Current channel (tuners).
    pub channel: u16,
    /// Current volume 0..=100 (amplifiers).
    pub volume: u8,
    /// Last OSD text shown (displays).
    pub osd: String,
    /// Stills captured (cameras).
    pub captures: u32,
}

impl Default for FcmStateSnapshot {
    fn default() -> Self {
        FcmStateSnapshot {
            transport: TransportState::Stopped,
            position: 0,
            media_present: true,
            channel: 1,
            volume: 50,
            osd: String::new(),
            captures: 0,
        }
    }
}

/// An event-manager hookup for state-change notifications.
#[derive(Clone)]
struct EventHookup {
    ms: MessagingSystem,
    em: Seid,
}

/// An installed FCM: its SEID, kind, and observable state.
#[derive(Clone)]
pub struct Fcm {
    seid: Seid,
    kind: FcmKind,
    name: String,
    state: Arc<Mutex<FcmStateSnapshot>>,
}

impl Fcm {
    /// Installs an FCM of `kind` as a software element on `ms`.
    ///
    /// If `event_manager` is given, the FCM posts `TRANSPORT_CHANGED`
    /// events on every transport transition.
    pub fn install(
        ms: &MessagingSystem,
        kind: FcmKind,
        name: &str,
        event_manager: Option<Seid>,
    ) -> Fcm {
        let state = Arc::new(Mutex::new(FcmStateSnapshot::default()));
        let state2 = state.clone();
        let hookup = event_manager.map(|em| EventHookup { ms: ms.clone(), em });
        // The element's own handle, needed to post events; filled in after
        // registration.
        let self_seid: Arc<Mutex<Option<Seid>>> = Arc::new(Mutex::new(None));
        let self_seid2 = self_seid.clone();

        let seid = ms.register_element(move |sim, msg| {
            if msg.opcode.api != kind.api_code() {
                return (HaviStatus::EUnsupported, vec![]);
            }
            let mut st = state2.lock();
            let prev_transport = st.transport;
            let result = apply_operation(kind, &mut st, msg.opcode.oper, &msg.params);
            let new_transport = st.transport;
            drop(st);
            if new_transport != prev_transport {
                if let (Some(hook), Some(me)) = (&hookup, *self_seid2.lock()) {
                    let _ = post(
                        &hook.ms,
                        me.handle,
                        hook.em,
                        event_type::TRANSPORT_CHANGED,
                        vec![HValue::Str(new_transport.label().to_owned())],
                    );
                    sim.trace("havi-fcm", format!("{kind} -> {}", new_transport.label()));
                }
            }
            result
        });
        *self_seid.lock() = Some(seid);
        Fcm {
            seid,
            kind,
            name: name.to_owned(),
            state,
        }
    }

    /// The FCM's SEID.
    pub fn seid(&self) -> Seid {
        self.seid
    }

    /// The FCM's kind.
    pub fn kind(&self) -> FcmKind {
        self.kind
    }

    /// The FCM's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A snapshot of the current state (for tests and OSDs).
    pub fn state(&self) -> FcmStateSnapshot {
        self.state.lock().clone()
    }

    /// Ejects/loads media (failure injection for transports).
    pub fn set_media_present(&self, present: bool) {
        self.state.lock().media_present = present;
    }
}

impl fmt::Debug for Fcm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fcm")
            .field("seid", &self.seid)
            .field("kind", &self.kind)
            .field("name", &self.name)
            .finish()
    }
}

fn apply_operation(
    kind: FcmKind,
    st: &mut FcmStateSnapshot,
    operation: u16,
    params: &[HValue],
) -> (HaviStatus, Vec<HValue>) {
    use oper::*;
    match operation {
        PLAY if kind.has_transport() => {
            if !st.media_present {
                return (HaviStatus::EState, vec![]);
            }
            st.transport = TransportState::Playing;
            (HaviStatus::Success, vec![])
        }
        STOP if kind.has_transport() => {
            st.transport = TransportState::Stopped;
            (HaviStatus::Success, vec![])
        }
        RECORD if kind.has_transport() => {
            if !st.media_present {
                return (HaviStatus::EState, vec![]);
            }
            st.transport = TransportState::Recording;
            (HaviStatus::Success, vec![])
        }
        WIND if kind.has_transport() => {
            if !st.media_present {
                return (HaviStatus::EState, vec![]);
            }
            st.transport = TransportState::Winding;
            st.position = st.position.saturating_add(100);
            (HaviStatus::Success, vec![])
        }
        REWIND if kind.has_transport() => {
            if !st.media_present {
                return (HaviStatus::EState, vec![]);
            }
            st.transport = TransportState::Rewinding;
            st.position = st.position.saturating_sub(100);
            (HaviStatus::Success, vec![])
        }
        STATUS => (
            HaviStatus::Success,
            vec![
                HValue::Str(st.transport.label().to_owned()),
                HValue::U32(st.position),
            ],
        ),
        SET_CHANNEL if kind == FcmKind::Tuner => match params.first().and_then(HValue::as_u32) {
            Some(ch) if (1..=999).contains(&ch) => {
                st.channel = ch as u16;
                (HaviStatus::Success, vec![])
            }
            _ => (HaviStatus::EParameter, vec![]),
        },
        GET_CHANNEL if kind == FcmKind::Tuner => {
            (HaviStatus::Success, vec![HValue::U16(st.channel)])
        }
        SHOW_OSD if kind == FcmKind::Display => match params.first().and_then(HValue::as_str) {
            Some(text) => {
                st.osd = text.to_owned();
                (HaviStatus::Success, vec![])
            }
            None => (HaviStatus::EParameter, vec![]),
        },
        SET_VOLUME if kind == FcmKind::Amplifier => match params.first().and_then(HValue::as_u32) {
            Some(v) if v <= 100 => {
                st.volume = v as u8;
                (HaviStatus::Success, vec![])
            }
            _ => (HaviStatus::EParameter, vec![]),
        },
        GET_VOLUME if kind == FcmKind::Amplifier => {
            (HaviStatus::Success, vec![HValue::U8(st.volume)])
        }
        CAPTURE if kind == FcmKind::DvCamera => {
            st.captures += 1;
            (HaviStatus::Success, vec![HValue::U32(st.captures)])
        }
        _ => (HaviStatus::EUnsupported, vec![]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messaging::OpCode;
    use simnet::{Network, Sim};

    fn world() -> (Sim, Network, MessagingSystem) {
        let sim = Sim::new(1);
        let net = Network::ieee1394(&sim);
        let node = MessagingSystem::attach(&net, "device");
        (sim, net, node)
    }

    fn controller(net: &Network) -> (MessagingSystem, Seid) {
        let ms = MessagingSystem::attach(net, "controller");
        let seid = ms.register_element(|_, _| (HaviStatus::Success, vec![]));
        (ms, seid)
    }

    #[test]
    fn vcr_transport_cycle() {
        let (_sim, net, node) = world();
        let vcr = Fcm::install(&node, FcmKind::Vcr, "vcr", None);
        let (ctl, me) = controller(&net);
        let api = FcmKind::Vcr.api_code();

        ctl.send_ok(
            me.handle,
            vcr.seid(),
            OpCode::new(api, oper::RECORD),
            vec![],
        )
        .unwrap();
        assert_eq!(vcr.state().transport, TransportState::Recording);

        let status = ctl
            .send_ok(
                me.handle,
                vcr.seid(),
                OpCode::new(api, oper::STATUS),
                vec![],
            )
            .unwrap();
        assert_eq!(status[0].as_str(), Some("recording"));

        ctl.send_ok(me.handle, vcr.seid(), OpCode::new(api, oper::STOP), vec![])
            .unwrap();
        assert_eq!(vcr.state().transport, TransportState::Stopped);

        ctl.send_ok(me.handle, vcr.seid(), OpCode::new(api, oper::WIND), vec![])
            .unwrap();
        assert_eq!(vcr.state().position, 100);
        ctl.send_ok(
            me.handle,
            vcr.seid(),
            OpCode::new(api, oper::REWIND),
            vec![],
        )
        .unwrap();
        assert_eq!(vcr.state().position, 0);
    }

    #[test]
    fn no_media_blocks_transport() {
        let (_sim, net, node) = world();
        let vcr = Fcm::install(&node, FcmKind::Vcr, "vcr", None);
        vcr.set_media_present(false);
        let (ctl, me) = controller(&net);
        let api = FcmKind::Vcr.api_code();
        let (status, _) = ctl
            .send(
                me.handle,
                vcr.seid(),
                OpCode::new(api, oper::RECORD),
                vec![],
            )
            .unwrap();
        assert_eq!(status, HaviStatus::EState);
        // STOP still works without media.
        let (status, _) = ctl
            .send(me.handle, vcr.seid(), OpCode::new(api, oper::STOP), vec![])
            .unwrap();
        assert!(status.is_ok());
    }

    #[test]
    fn tuner_channel_bounds() {
        let (_sim, net, node) = world();
        let tuner = Fcm::install(&node, FcmKind::Tuner, "tuner", None);
        let (ctl, me) = controller(&net);
        let api = FcmKind::Tuner.api_code();
        ctl.send_ok(
            me.handle,
            tuner.seid(),
            OpCode::new(api, oper::SET_CHANNEL),
            vec![HValue::U16(42)],
        )
        .unwrap();
        let got = ctl
            .send_ok(
                me.handle,
                tuner.seid(),
                OpCode::new(api, oper::GET_CHANNEL),
                vec![],
            )
            .unwrap();
        assert_eq!(got[0].as_u32(), Some(42));
        let (status, _) = ctl
            .send(
                me.handle,
                tuner.seid(),
                OpCode::new(api, oper::SET_CHANNEL),
                vec![HValue::U16(0)],
            )
            .unwrap();
        assert_eq!(status, HaviStatus::EParameter);
        let (status, _) = ctl
            .send(
                me.handle,
                tuner.seid(),
                OpCode::new(api, oper::SET_CHANNEL),
                vec![],
            )
            .unwrap();
        assert_eq!(status, HaviStatus::EParameter);
    }

    #[test]
    fn camera_capture_counts() {
        let (_sim, net, node) = world();
        let cam = Fcm::install(&node, FcmKind::DvCamera, "dv-cam", None);
        let (ctl, me) = controller(&net);
        let api = FcmKind::DvCamera.api_code();
        let a = ctl
            .send_ok(
                me.handle,
                cam.seid(),
                OpCode::new(api, oper::CAPTURE),
                vec![],
            )
            .unwrap();
        let b = ctl
            .send_ok(
                me.handle,
                cam.seid(),
                OpCode::new(api, oper::CAPTURE),
                vec![],
            )
            .unwrap();
        assert_eq!(a[0].as_u32(), Some(1));
        assert_eq!(b[0].as_u32(), Some(2));
    }

    #[test]
    fn display_and_amplifier() {
        let (_sim, net, node) = world();
        let display = Fcm::install(&node, FcmKind::Display, "panel", None);
        let amp = Fcm::install(&node, FcmKind::Amplifier, "amp", None);
        let (ctl, me) = controller(&net);
        ctl.send_ok(
            me.handle,
            display.seid(),
            OpCode::new(FcmKind::Display.api_code(), oper::SHOW_OSD),
            vec![HValue::Str("Now recording".into())],
        )
        .unwrap();
        assert_eq!(display.state().osd, "Now recording");

        ctl.send_ok(
            me.handle,
            amp.seid(),
            OpCode::new(FcmKind::Amplifier.api_code(), oper::SET_VOLUME),
            vec![HValue::U8(80)],
        )
        .unwrap();
        assert_eq!(amp.state().volume, 80);
        let (status, _) = ctl
            .send(
                me.handle,
                amp.seid(),
                OpCode::new(FcmKind::Amplifier.api_code(), oper::SET_VOLUME),
                vec![HValue::U8(101)],
            )
            .unwrap();
        assert_eq!(status, HaviStatus::EParameter);
    }

    #[test]
    fn wrong_api_class_is_unsupported() {
        let (_sim, net, node) = world();
        let vcr = Fcm::install(&node, FcmKind::Vcr, "vcr", None);
        let (ctl, me) = controller(&net);
        // Sending tuner ops to a VCR fails.
        let (status, _) = ctl
            .send(
                me.handle,
                vcr.seid(),
                OpCode::new(FcmKind::Tuner.api_code(), oper::SET_CHANNEL),
                vec![HValue::U16(3)],
            )
            .unwrap();
        assert_eq!(status, HaviStatus::EUnsupported);
        // Transport ops on a display fail too.
        let display = Fcm::install(&node, FcmKind::Display, "panel", None);
        let (status, _) = ctl
            .send(
                me.handle,
                display.seid(),
                OpCode::new(FcmKind::Display.api_code(), oper::PLAY),
                vec![],
            )
            .unwrap();
        assert_eq!(status, HaviStatus::EUnsupported);
    }

    #[test]
    fn transport_changes_post_events() {
        use crate::events::{decode_forwarded, subscribe, EventManager};
        let (_sim, net, node) = world();
        let fav = MessagingSystem::attach(&net, "fav");
        let em = EventManager::start(&fav);
        let vcr = Fcm::install(&node, FcmKind::Vcr, "vcr", Some(em.seid()));

        let watcher = MessagingSystem::attach(&net, "watcher");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let listener = watcher.register_element(move |_, msg| {
            if let Some(ev) = decode_forwarded(msg) {
                seen2
                    .lock()
                    .push(ev.payload[0].as_str().unwrap().to_owned());
            }
            (HaviStatus::Success, vec![])
        });
        subscribe(
            &watcher,
            listener.handle,
            em.seid(),
            event_type::TRANSPORT_CHANGED,
        )
        .unwrap();

        let (ctl, me) = controller(&net);
        let api = FcmKind::Vcr.api_code();
        ctl.send_ok(me.handle, vcr.seid(), OpCode::new(api, oper::PLAY), vec![])
            .unwrap();
        ctl.send_ok(me.handle, vcr.seid(), OpCode::new(api, oper::STOP), vec![])
            .unwrap();
        // STATUS does not change state: no third event.
        ctl.send_ok(
            me.handle,
            vcr.seid(),
            OpCode::new(api, oper::STATUS),
            vec![],
        )
        .unwrap();
        assert_eq!(
            *seen.lock(),
            vec!["playing".to_owned(), "stopped".to_owned()]
        );
    }
}
