//! The HAVi Registry.
//!
//! A well-known software element where DCMs/FCMs advertise themselves
//! with attribute lists, and controllers query by attribute match — the
//! HAVi-side analogue of Jini's lookup service, and the place the HAVi
//! PCM harvests services from.

use crate::hvalue::HValue;
use crate::messaging::{HaviError, MessagingSystem, OpCode};
use crate::seid::{HaviStatus, Seid};
use parking_lot::Mutex;
use simnet::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Registry API class.
pub const API_REGISTRY: u16 = 0x0001;
/// `Registry::RegisterElement`.
pub const OPER_REGISTER: u16 = 1;
/// `Registry::UnregisterElement`.
pub const OPER_UNREGISTER: u16 = 2;
/// `Registry::GetElement` (attribute query).
pub const OPER_QUERY: u16 = 3;

/// Standard attribute names.
pub mod attr {
    /// Software element type (`"fcm"`, `"dcm"`, `"application"`).
    pub const SE_TYPE: &str = "ATT_SE_TYPE";
    /// Device class (`"vcr"`, `"dv-camera"`, `"tuner"`, …).
    pub const DEVICE_CLASS: &str = "ATT_DEVICE_CLASS";
    /// Human-readable name.
    pub const NAME: &str = "ATT_NAME";
    /// Owning device GUID.
    pub const GUID: &str = "ATT_GUID";
}

/// A registry record: the element and its attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// The advertised element.
    pub seid: Seid,
    /// Attribute list (sorted by name).
    pub attributes: BTreeMap<String, String>,
}

impl RegistryEntry {
    /// True if every `(name, value)` in `filter` is present.
    pub fn matches(&self, filter: &[(String, String)]) -> bool {
        filter
            .iter()
            .all(|(k, v)| self.attributes.get(k) == Some(v))
    }
}

/// The registry service (runs as a software element on one node).
#[derive(Clone)]
pub struct Registry {
    seid: Seid,
    entries: Arc<Mutex<Vec<RegistryEntry>>>,
}

impl Registry {
    /// Starts the registry on `ms`'s node.
    pub fn start(ms: &MessagingSystem) -> Registry {
        let entries: Arc<Mutex<Vec<RegistryEntry>>> = Arc::new(Mutex::new(Vec::new()));
        let entries2 = entries.clone();
        let seid = ms.register_element(move |_sim, msg| {
            if msg.opcode.api != API_REGISTRY {
                return (HaviStatus::EUnsupported, vec![]);
            }
            match msg.opcode.oper {
                OPER_REGISTER => match decode_entry(&msg.params) {
                    Some(entry) => {
                        let mut entries = entries2.lock();
                        entries.retain(|e| e.seid != entry.seid);
                        entries.push(entry);
                        (HaviStatus::Success, vec![])
                    }
                    None => (HaviStatus::EParameter, vec![]),
                },
                OPER_UNREGISTER => match decode_seid(&msg.params) {
                    Some(seid) => {
                        let mut entries = entries2.lock();
                        let before = entries.len();
                        entries.retain(|e| e.seid != seid);
                        if entries.len() < before {
                            (HaviStatus::Success, vec![])
                        } else {
                            (HaviStatus::EUnknownSeid, vec![])
                        }
                    }
                    None => (HaviStatus::EParameter, vec![]),
                },
                OPER_QUERY => match decode_filter(&msg.params) {
                    Some(filter) => {
                        let entries = entries2.lock();
                        let matches: Vec<&RegistryEntry> =
                            entries.iter().filter(|e| e.matches(&filter)).collect();
                        (HaviStatus::Success, encode_entries(&matches))
                    }
                    None => (HaviStatus::EParameter, vec![]),
                },
                _ => (HaviStatus::EUnsupported, vec![]),
            }
        });
        Registry { seid, entries }
    }

    /// The registry's SEID (the well-known address clients message).
    pub fn seid(&self) -> Seid {
        self.seid
    }

    /// Number of advertised elements.
    pub fn entry_count(&self) -> usize {
        self.entries.lock().len()
    }
}

/// Client-side access to a (possibly remote) registry.
#[derive(Debug, Clone)]
pub struct RegistryClient {
    ms: MessagingSystem,
    src_handle: u32,
    registry: Seid,
}

impl RegistryClient {
    /// Creates a client sending from local element `src_handle`.
    pub fn new(ms: &MessagingSystem, src_handle: u32, registry: Seid) -> RegistryClient {
        RegistryClient {
            ms: ms.clone(),
            src_handle,
            registry,
        }
    }

    /// Advertises `seid` with `attributes`.
    pub fn register(&self, seid: Seid, attributes: &[(&str, &str)]) -> Result<(), HaviError> {
        let mut params = vec![
            HValue::U32(seid.node.0),
            HValue::U32(seid.handle),
            HValue::U8(attributes.len() as u8),
        ];
        for (k, v) in attributes {
            params.push(HValue::Str((*k).to_owned()));
            params.push(HValue::Str((*v).to_owned()));
        }
        self.ms
            .send_ok(
                self.src_handle,
                self.registry,
                OpCode::new(API_REGISTRY, OPER_REGISTER),
                params,
            )
            .map(|_| ())
    }

    /// Withdraws `seid`.
    pub fn unregister(&self, seid: Seid) -> Result<(), HaviError> {
        let params = vec![HValue::U32(seid.node.0), HValue::U32(seid.handle)];
        self.ms
            .send_ok(
                self.src_handle,
                self.registry,
                OpCode::new(API_REGISTRY, OPER_UNREGISTER),
                params,
            )
            .map(|_| ())
    }

    /// Queries for elements whose attributes contain every `(name, value)`
    /// pair in `filter`.
    pub fn query(&self, filter: &[(&str, &str)]) -> Result<Vec<RegistryEntry>, HaviError> {
        let mut params = vec![HValue::U8(filter.len() as u8)];
        for (k, v) in filter {
            params.push(HValue::Str((*k).to_owned()));
            params.push(HValue::Str((*v).to_owned()));
        }
        let reply = self.ms.send_ok(
            self.src_handle,
            self.registry,
            OpCode::new(API_REGISTRY, OPER_QUERY),
            params,
        )?;
        decode_entry_list(&reply).ok_or(HaviError::Status(HaviStatus::EParameter))
    }
}

// ---- wire helpers ---------------------------------------------------------

fn decode_seid(params: &[HValue]) -> Option<Seid> {
    Some(Seid::new(
        NodeId(params.first()?.as_u32()?),
        params.get(1)?.as_u32()?,
    ))
}

fn decode_entry(params: &[HValue]) -> Option<RegistryEntry> {
    let seid = decode_seid(params)?;
    let nattrs = params.get(2)?.as_u32()? as usize;
    let mut attributes = BTreeMap::new();
    for i in 0..nattrs {
        let k = params.get(3 + i * 2)?.as_str()?.to_owned();
        let v = params.get(4 + i * 2)?.as_str()?.to_owned();
        attributes.insert(k, v);
    }
    Some(RegistryEntry { seid, attributes })
}

fn decode_filter(params: &[HValue]) -> Option<Vec<(String, String)>> {
    let n = params.first()?.as_u32()? as usize;
    let mut filter = Vec::with_capacity(n);
    for i in 0..n {
        filter.push((
            params.get(1 + i * 2)?.as_str()?.to_owned(),
            params.get(2 + i * 2)?.as_str()?.to_owned(),
        ));
    }
    Some(filter)
}

fn encode_entries(entries: &[&RegistryEntry]) -> Vec<HValue> {
    let mut out = vec![HValue::U16(entries.len() as u16)];
    for e in entries {
        out.push(HValue::U32(e.seid.node.0));
        out.push(HValue::U32(e.seid.handle));
        out.push(HValue::U8(e.attributes.len() as u8));
        for (k, v) in &e.attributes {
            out.push(HValue::Str(k.clone()));
            out.push(HValue::Str(v.clone()));
        }
    }
    out
}

fn decode_entry_list(params: &[HValue]) -> Option<Vec<RegistryEntry>> {
    let n = params.first()?.as_u32()? as usize;
    let mut pos = 1;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let node = params.get(pos)?.as_u32()?;
        let handle = params.get(pos + 1)?.as_u32()?;
        let nattrs = params.get(pos + 2)?.as_u32()? as usize;
        pos += 3;
        let mut attributes = BTreeMap::new();
        for _ in 0..nattrs {
            let k = params.get(pos)?.as_str()?.to_owned();
            let v = params.get(pos + 1)?.as_str()?.to_owned();
            attributes.insert(k, v);
            pos += 2;
        }
        out.push(RegistryEntry {
            seid: Seid::new(NodeId(node), handle),
            attributes,
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Network, Sim};

    fn world() -> (Sim, Network, MessagingSystem, Registry) {
        let sim = Sim::new(1);
        let net = Network::ieee1394(&sim);
        let fav = MessagingSystem::attach(&net, "fav-controller");
        let registry = Registry::start(&fav);
        (sim, net, fav, registry)
    }

    #[test]
    fn register_query_unregister() {
        let (_sim, net, _fav, registry) = world();
        let vcr_node = MessagingSystem::attach(&net, "vcr");
        let vcr_fcm = vcr_node.register_element(|_, _| (HaviStatus::Success, vec![]));
        let client = RegistryClient::new(&vcr_node, vcr_fcm.handle, registry.seid());

        client
            .register(
                vcr_fcm,
                &[
                    (attr::SE_TYPE, "fcm"),
                    (attr::DEVICE_CLASS, "vcr"),
                    (attr::NAME, "living-room-vcr"),
                ],
            )
            .unwrap();
        assert_eq!(registry.entry_count(), 1);

        let vcrs = client.query(&[(attr::DEVICE_CLASS, "vcr")]).unwrap();
        assert_eq!(vcrs.len(), 1);
        assert_eq!(vcrs[0].seid, vcr_fcm);
        assert_eq!(
            vcrs[0].attributes.get(attr::NAME).unwrap(),
            "living-room-vcr"
        );

        assert!(client
            .query(&[(attr::DEVICE_CLASS, "tuner")])
            .unwrap()
            .is_empty());

        client.unregister(vcr_fcm).unwrap();
        assert_eq!(registry.entry_count(), 0);
        assert!(client.unregister(vcr_fcm).is_err());
    }

    #[test]
    fn reregistration_replaces() {
        let (_sim, net, _fav, registry) = world();
        let node = MessagingSystem::attach(&net, "cam");
        let fcm = node.register_element(|_, _| (HaviStatus::Success, vec![]));
        let client = RegistryClient::new(&node, fcm.handle, registry.seid());
        client.register(fcm, &[(attr::NAME, "old")]).unwrap();
        client.register(fcm, &[(attr::NAME, "new")]).unwrap();
        assert_eq!(registry.entry_count(), 1);
        let found = client.query(&[]).unwrap();
        assert_eq!(found[0].attributes.get(attr::NAME).unwrap(), "new");
    }

    #[test]
    fn multi_attribute_filter_requires_all() {
        let (_sim, net, _fav, registry) = world();
        let node = MessagingSystem::attach(&net, "devs");
        let a = node.register_element(|_, _| (HaviStatus::Success, vec![]));
        let b = node.register_element(|_, _| (HaviStatus::Success, vec![]));
        let client = RegistryClient::new(&node, a.handle, registry.seid());
        client
            .register(a, &[(attr::DEVICE_CLASS, "vcr"), (attr::GUID, "g1")])
            .unwrap();
        client
            .register(b, &[(attr::DEVICE_CLASS, "vcr"), (attr::GUID, "g2")])
            .unwrap();
        assert_eq!(
            client.query(&[(attr::DEVICE_CLASS, "vcr")]).unwrap().len(),
            2
        );
        let one = client
            .query(&[(attr::DEVICE_CLASS, "vcr"), (attr::GUID, "g2")])
            .unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].seid, b);
    }

    #[test]
    fn empty_filter_returns_everything() {
        let (_sim, net, _fav, registry) = world();
        let node = MessagingSystem::attach(&net, "devs");
        let client_seid = node.register_element(|_, _| (HaviStatus::Success, vec![]));
        let client = RegistryClient::new(&node, client_seid.handle, registry.seid());
        for i in 0..4 {
            let e = node.register_element(|_, _| (HaviStatus::Success, vec![]));
            client
                .register(e, &[(attr::NAME, &format!("dev{i}"))])
                .unwrap();
        }
        assert_eq!(client.query(&[]).unwrap().len(), 4);
    }
}
