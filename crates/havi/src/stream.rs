//! The Stream Manager: isochronous AV connections.
//!
//! "The focus of HAVi is on the control and content of digital AV
//! streams" (§2.1). IEEE1394 reserves 64 isochronous channels with
//! guaranteed bandwidth in 125 µs cycles; the Stream Manager allocates
//! channels and connects FCM plugs. Experiment E10 uses this to show why
//! the SOAP-based VSG cannot carry streams (§4.2, §6).

use crate::seid::Seid;
use parking_lot::Mutex;
use simnet::{Network, Protocol, Sim, SimDuration};
use std::fmt;
use std::sync::Arc;

/// IEEE1394 isochronous cycle period.
pub const CYCLE: SimDuration = SimDuration::from_micros(125);

/// Number of isochronous channels on a bus.
pub const CHANNELS: u8 = 64;

/// Total allocatable isochronous payload per cycle, in bytes
/// (~80% of an S400 cycle, as the 1394 bandwidth manager enforces).
pub const CYCLE_BUDGET_BYTES: u32 = 4_915;

/// DV standard-definition stream rate: ~25 Mbit/s ≈ 480 bytes/cycle.
pub const DV_BYTES_PER_CYCLE: u32 = 480;

/// One end-to-end isochronous connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConnection {
    /// Allocated channel number.
    pub channel: u8,
    /// Source FCM plug.
    pub source: Seid,
    /// Sink FCM plug.
    pub sink: Seid,
    /// Reserved payload per 125 µs cycle.
    pub bytes_per_cycle: u32,
}

/// A measured stretch of stream flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamReport {
    /// Isochronous packets delivered.
    pub packets: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Packets that missed their 125 µs cycle deadline.
    pub late_packets: u64,
    /// Worst observed per-packet jitter, in microseconds.
    pub max_jitter_us: u64,
}

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// All 64 channels are taken.
    NoChannel,
    /// The per-cycle bandwidth budget is exhausted.
    NoBandwidth {
        /// Bytes requested per cycle.
        requested: u32,
        /// Bytes still available per cycle.
        available: u32,
    },
    /// The connection id is unknown.
    UnknownChannel(u8),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::NoChannel => write!(f, "no isochronous channel free"),
            StreamError::NoBandwidth {
                requested,
                available,
            } => write!(
                f,
                "isochronous bandwidth exhausted: requested {requested} B/cycle, {available} left"
            ),
            StreamError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
        }
    }
}

impl std::error::Error for StreamError {}

struct StreamState {
    connections: Vec<StreamConnection>,
    used_channels: [bool; CHANNELS as usize],
    used_bytes_per_cycle: u32,
}

/// The per-bus stream manager.
#[derive(Clone)]
pub struct StreamManager {
    net: Network,
    state: Arc<Mutex<StreamState>>,
}

impl StreamManager {
    /// Creates the stream manager for `net` (one per 1394 bus).
    pub fn new(net: &Network) -> StreamManager {
        StreamManager {
            net: net.clone(),
            state: Arc::new(Mutex::new(StreamState {
                connections: Vec::new(),
                used_channels: [false; CHANNELS as usize],
                used_bytes_per_cycle: 0,
            })),
        }
    }

    /// Connects `source` to `sink`, reserving `bytes_per_cycle` of
    /// isochronous bandwidth.
    pub fn connect(
        &self,
        source: Seid,
        sink: Seid,
        bytes_per_cycle: u32,
    ) -> Result<StreamConnection, StreamError> {
        let mut st = self.state.lock();
        let available = CYCLE_BUDGET_BYTES - st.used_bytes_per_cycle;
        if bytes_per_cycle > available {
            return Err(StreamError::NoBandwidth {
                requested: bytes_per_cycle,
                available,
            });
        }
        let channel = st
            .used_channels
            .iter()
            .position(|used| !used)
            .ok_or(StreamError::NoChannel)? as u8;
        st.used_channels[channel as usize] = true;
        st.used_bytes_per_cycle += bytes_per_cycle;
        let conn = StreamConnection {
            channel,
            source,
            sink,
            bytes_per_cycle,
        };
        st.connections.push(conn.clone());
        Ok(conn)
    }

    /// Tears down a connection, releasing its channel and bandwidth.
    pub fn disconnect(&self, channel: u8) -> Result<(), StreamError> {
        let mut st = self.state.lock();
        let idx = st
            .connections
            .iter()
            .position(|c| c.channel == channel)
            .ok_or(StreamError::UnknownChannel(channel))?;
        let conn = st.connections.remove(idx);
        st.used_channels[channel as usize] = false;
        st.used_bytes_per_cycle -= conn.bytes_per_cycle;
        Ok(())
    }

    /// Currently open connections.
    pub fn connections(&self) -> Vec<StreamConnection> {
        self.state.lock().connections.clone()
    }

    /// Unreserved bytes per cycle.
    pub fn available_bytes_per_cycle(&self) -> u32 {
        CYCLE_BUDGET_BYTES - self.state.lock().used_bytes_per_cycle
    }

    /// Flows `duration` of stream over `connection`, advancing virtual
    /// time and accounting the traffic. Isochronous delivery is
    /// cycle-accurate: jitter stays within one cycle, and no packets are
    /// late (this is the property the SOAP bridge in E10 cannot match).
    pub fn pump(
        &self,
        sim: &Sim,
        connection: &StreamConnection,
        duration: SimDuration,
    ) -> StreamReport {
        let cycles = duration.as_micros() / CYCLE.as_micros();
        let bytes = cycles * u64::from(connection.bytes_per_cycle);
        // Account the aggregate traffic without materialising one frame
        // per cycle (a minute of DV is ~half a million packets).
        self.net
            .with_stats(|s| s.record_bulk(Protocol::Isochronous, cycles, bytes));
        sim.advance(duration);
        // Hardware-timed delivery: jitter bounded by cycle start phase.
        let max_jitter_us = if cycles > 0 { CYCLE.as_micros() / 2 } else { 0 };
        StreamReport {
            packets: cycles,
            bytes,
            late_packets: 0,
            max_jitter_us,
        }
    }
}

impl fmt::Debug for StreamManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("StreamManager")
            .field("connections", &st.connections.len())
            .field("used_bytes_per_cycle", &st.used_bytes_per_cycle)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, Sim};

    fn seid(n: u32, h: u32) -> Seid {
        Seid::new(NodeId(n), h)
    }

    fn manager() -> (Sim, Network, StreamManager) {
        let sim = Sim::new(1);
        let net = Network::ieee1394(&sim);
        let smgr = StreamManager::new(&net);
        (sim, net, smgr)
    }

    #[test]
    fn connect_allocates_distinct_channels() {
        let (_sim, _net, smgr) = manager();
        let a = smgr
            .connect(seid(1, 1), seid(2, 1), DV_BYTES_PER_CYCLE)
            .unwrap();
        let b = smgr
            .connect(seid(3, 1), seid(2, 1), DV_BYTES_PER_CYCLE)
            .unwrap();
        assert_ne!(a.channel, b.channel);
        assert_eq!(smgr.connections().len(), 2);
    }

    #[test]
    fn bandwidth_budget_enforced() {
        let (_sim, _net, smgr) = manager();
        // 10 DV streams fit in the S400 budget; the 11th does not.
        for _ in 0..10 {
            smgr.connect(seid(1, 1), seid(2, 1), DV_BYTES_PER_CYCLE)
                .unwrap();
        }
        match smgr.connect(seid(1, 1), seid(2, 1), DV_BYTES_PER_CYCLE) {
            Err(StreamError::NoBandwidth { available, .. }) => {
                assert!(available < DV_BYTES_PER_CYCLE);
            }
            other => panic!("expected NoBandwidth, got {other:?}"),
        }
    }

    #[test]
    fn disconnect_releases_resources() {
        let (_sim, _net, smgr) = manager();
        let c = smgr.connect(seid(1, 1), seid(2, 1), 1000).unwrap();
        let before = smgr.available_bytes_per_cycle();
        smgr.disconnect(c.channel).unwrap();
        assert_eq!(smgr.available_bytes_per_cycle(), before + 1000);
        assert!(smgr.disconnect(c.channel).is_err());
        assert!(smgr.connections().is_empty());
    }

    #[test]
    fn pump_delivers_cycle_accurate_dv() {
        let (sim, net, smgr) = manager();
        let c = smgr
            .connect(seid(1, 1), seid(2, 1), DV_BYTES_PER_CYCLE)
            .unwrap();
        let report = smgr.pump(&sim, &c, SimDuration::from_secs(1));
        assert_eq!(report.packets, 8_000); // 1s / 125us
        assert_eq!(report.bytes, 8_000 * u64::from(DV_BYTES_PER_CYCLE));
        assert_eq!(report.late_packets, 0);
        assert!(report.max_jitter_us <= CYCLE.as_micros());
        assert_eq!(sim.now().as_micros(), 1_000_000);
        // ~3.84 MB/s ≈ 30.7 Mbit/s gross for DV.
        let delivered = net.with_stats(|s| s.protocol(Protocol::Isochronous));
        assert_eq!(delivered.bytes, report.bytes);
    }

    #[test]
    fn channel_exhaustion() {
        let (_sim, _net, smgr) = manager();
        for _ in 0..CHANNELS {
            smgr.connect(seid(1, 1), seid(2, 1), 1).unwrap();
        }
        assert_eq!(
            smgr.connect(seid(1, 1), seid(2, 1), 1),
            Err(StreamError::NoChannel)
        );
    }
}
