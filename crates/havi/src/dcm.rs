//! Device Control Modules.
//!
//! A DCM represents one physical device on the bus: it owns the device's
//! FCMs, advertises them in the Registry, and re-advertises after a bus
//! reset (HAVi's self-healing behaviour).

use crate::fcm::{Fcm, FcmKind};
use crate::messaging::{HaviError, MessagingSystem};
use crate::registry::{attr, RegistryClient};
use crate::seid::{HaviStatus, Seid};
use simnet::Network;
use std::fmt;

/// A device: its messaging node, control element, and FCMs.
pub struct Dcm {
    ms: MessagingSystem,
    control: Seid,
    guid: u64,
    name: String,
    fcms: Vec<Fcm>,
    registry: Option<Seid>,
}

impl Dcm {
    /// Installs a device with the given FCMs on a fresh node of `net`.
    pub fn install(
        net: &Network,
        name: &str,
        guid: u64,
        fcm_specs: &[(FcmKind, &str)],
        event_manager: Option<Seid>,
    ) -> Dcm {
        let ms = MessagingSystem::attach(net, name);
        let control = ms.register_element(|_, _| (HaviStatus::Success, vec![]));
        let fcms = fcm_specs
            .iter()
            .map(|(kind, fcm_name)| Fcm::install(&ms, *kind, fcm_name, event_manager))
            .collect();
        Dcm {
            ms,
            control,
            guid,
            name: name.to_owned(),
            fcms,
            registry: None,
        }
    }

    /// The device's messaging system.
    pub fn messaging(&self) -> &MessagingSystem {
        &self.ms
    }

    /// The DCM control element's SEID.
    pub fn control_seid(&self) -> Seid {
        self.control
    }

    /// The device GUID.
    pub fn guid(&self) -> u64 {
        self.guid
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device's FCMs.
    pub fn fcms(&self) -> &[Fcm] {
        &self.fcms
    }

    /// The FCM of a given kind, if the device has one.
    pub fn fcm(&self, kind: FcmKind) -> Option<&Fcm> {
        self.fcms.iter().find(|f| f.kind() == kind)
    }

    /// Advertises the DCM and every FCM in the registry at `registry`.
    pub fn announce(&mut self, registry: Seid) -> Result<(), HaviError> {
        let client = RegistryClient::new(&self.ms, self.control.handle, registry);
        let guid = self.guid.to_string();
        client.register(
            self.control,
            &[
                (attr::SE_TYPE, "dcm"),
                (attr::NAME, &self.name),
                (attr::GUID, &guid),
            ],
        )?;
        for fcm in &self.fcms {
            client.register(
                fcm.seid(),
                &[
                    (attr::SE_TYPE, "fcm"),
                    (attr::DEVICE_CLASS, fcm.kind().device_class()),
                    (attr::NAME, fcm.name()),
                    (attr::GUID, &guid),
                ],
            )?;
        }
        self.registry = Some(registry);
        Ok(())
    }

    /// Withdraws all advertisements.
    pub fn withdraw(&mut self) -> Result<(), HaviError> {
        let Some(registry) = self.registry.take() else {
            return Ok(());
        };
        let client = RegistryClient::new(&self.ms, self.control.handle, registry);
        client.unregister(self.control)?;
        for fcm in &self.fcms {
            client.unregister(fcm.seid())?;
        }
        Ok(())
    }

    /// Re-announces after a bus reset (call when the bus comes back).
    pub fn reannounce(&mut self) -> Result<(), HaviError> {
        if let Some(registry) = self.registry {
            self.announce(registry)
        } else {
            Ok(())
        }
    }
}

impl fmt::Debug for Dcm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dcm")
            .field("name", &self.name)
            .field("guid", &self.guid)
            .field("fcms", &self.fcms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use simnet::Sim;

    fn world() -> (Sim, Network, MessagingSystem, Registry) {
        let sim = Sim::new(1);
        let net = Network::ieee1394(&sim);
        let fav = MessagingSystem::attach(&net, "fav");
        let registry = Registry::start(&fav);
        (sim, net, fav, registry)
    }

    #[test]
    fn install_and_announce_advertises_all_fcms() {
        let (_sim, net, fav, registry) = world();
        let mut camcorder = Dcm::install(
            &net,
            "camcorder",
            0xDEAD_BEEF,
            &[(FcmKind::DvCamera, "dv-camera"), (FcmKind::Vcr, "dv-tape")],
            None,
        );
        camcorder.announce(registry.seid()).unwrap();
        // 1 DCM + 2 FCMs.
        assert_eq!(registry.entry_count(), 3);

        let probe = fav.register_element(|_, _| (HaviStatus::Success, vec![]));
        let client = RegistryClient::new(&fav, probe.handle, registry.seid());
        let cams = client.query(&[(attr::DEVICE_CLASS, "dv-camera")]).unwrap();
        assert_eq!(cams.len(), 1);
        assert_eq!(
            cams[0].attributes.get(attr::GUID).unwrap(),
            &0xDEAD_BEEFu64.to_string()
        );
    }

    #[test]
    fn fcm_lookup_by_kind() {
        let (_sim, net, _fav, _registry) = world();
        let tv = Dcm::install(
            &net,
            "tv",
            1,
            &[(FcmKind::Tuner, "tuner"), (FcmKind::Display, "panel")],
            None,
        );
        assert!(tv.fcm(FcmKind::Tuner).is_some());
        assert!(tv.fcm(FcmKind::Display).is_some());
        assert!(tv.fcm(FcmKind::Vcr).is_none());
        assert_eq!(tv.fcms().len(), 2);
    }

    #[test]
    fn withdraw_removes_everything() {
        let (_sim, net, _fav, registry) = world();
        let mut vcr = Dcm::install(&net, "vcr", 2, &[(FcmKind::Vcr, "vcr")], None);
        vcr.announce(registry.seid()).unwrap();
        assert_eq!(registry.entry_count(), 2);
        vcr.withdraw().unwrap();
        assert_eq!(registry.entry_count(), 0);
        // Withdrawing again is a no-op.
        vcr.withdraw().unwrap();
    }

    #[test]
    fn reannounce_after_bus_reset_restores_registry() {
        let (_sim, net, _fav, registry) = world();
        let mut vcr = Dcm::install(&net, "vcr", 3, &[(FcmKind::Vcr, "vcr")], None);
        vcr.announce(registry.seid()).unwrap();
        // A bus reset wipes the registry (new HAVi network instance).
        // Simulate the wipe by withdrawing, then reannounce.
        vcr.withdraw().unwrap();
        assert_eq!(registry.entry_count(), 0);
        vcr.announce(registry.seid()).unwrap();
        vcr.reannounce().unwrap();
        assert_eq!(registry.entry_count(), 2);
    }
}
