//! The HAVi Event Manager.
//!
//! Software elements subscribe to typed events; posters send one message
//! to the event manager, which fans out a `ForwardEvent` message to every
//! subscriber. Like Jini's remote events this is a **push** path — the
//! thing the paper's HTTP-based VSG cannot express (§4.2).

use crate::hvalue::HValue;
use crate::messaging::{HaviError, HaviMessage, MessagingSystem, OpCode};
use crate::seid::{HaviStatus, Seid};
use parking_lot::Mutex;
use simnet::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// Event Manager API class.
pub const API_EVENT_MANAGER: u16 = 0x0002;
/// `EventManager::Subscribe`.
pub const OPER_SUBSCRIBE: u16 = 1;
/// `EventManager::Unsubscribe`.
pub const OPER_UNSUBSCRIBE: u16 = 2;
/// `EventManager::PostEvent`.
pub const OPER_POST: u16 = 3;
/// Delivered to subscribers: `ForwardEvent`.
pub const OPER_FORWARD: u16 = 4;

/// Well-known event types.
pub mod event_type {
    /// The 1394 bus reset and re-enumerated.
    pub const BUS_RESET: u16 = 1;
    /// An FCM's transport state changed.
    pub const TRANSPORT_CHANGED: u16 = 2;
    /// A new device joined the network.
    pub const DEVICE_ADDED: u16 = 3;
    /// A device left the network.
    pub const DEVICE_GONE: u16 = 4;
}

/// The event manager service.
#[derive(Clone)]
pub struct EventManager {
    seid: Seid,
    subscriptions: Arc<Mutex<HashMap<u16, Vec<Seid>>>>,
}

impl EventManager {
    /// Starts the event manager on `ms`'s node.
    pub fn start(ms: &MessagingSystem) -> EventManager {
        let subscriptions: Arc<Mutex<HashMap<u16, Vec<Seid>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let subs2 = subscriptions.clone();
        let ms2 = ms.clone();
        let seid_cell: Arc<Mutex<Option<Seid>>> = Arc::new(Mutex::new(None));
        let seid_cell2 = seid_cell.clone();
        let seid = ms.register_element(move |_sim, msg| {
            if msg.opcode.api != API_EVENT_MANAGER {
                return (HaviStatus::EUnsupported, vec![]);
            }
            match msg.opcode.oper {
                OPER_SUBSCRIBE => match msg.params.first().and_then(HValue::as_u32) {
                    Some(ty) => {
                        let mut subs = subs2.lock();
                        let list = subs.entry(ty as u16).or_default();
                        if !list.contains(&msg.src) {
                            list.push(msg.src);
                        }
                        (HaviStatus::Success, vec![])
                    }
                    None => (HaviStatus::EParameter, vec![]),
                },
                OPER_UNSUBSCRIBE => match msg.params.first().and_then(HValue::as_u32) {
                    Some(ty) => {
                        let mut subs = subs2.lock();
                        if let Some(list) = subs.get_mut(&(ty as u16)) {
                            list.retain(|s| *s != msg.src);
                        }
                        (HaviStatus::Success, vec![])
                    }
                    None => (HaviStatus::EParameter, vec![]),
                },
                OPER_POST => match msg.params.first().and_then(HValue::as_u32) {
                    Some(ty) => {
                        let targets = subs2.lock().get(&(ty as u16)).cloned().unwrap_or_default();
                        let my_seid = seid_cell2.lock().expect("set after registration");
                        let mut forwarded =
                            vec![HValue::U32(msg.src.node.0), HValue::U32(msg.src.handle)];
                        forwarded.extend_from_slice(&msg.params);
                        for target in targets {
                            // Losing one subscriber must not fail the post.
                            let _ = ms2.send(
                                my_seid.handle,
                                target,
                                OpCode::new(API_EVENT_MANAGER, OPER_FORWARD),
                                forwarded.clone(),
                            );
                        }
                        (HaviStatus::Success, vec![])
                    }
                    None => (HaviStatus::EParameter, vec![]),
                },
                _ => (HaviStatus::EUnsupported, vec![]),
            }
        });
        *seid_cell.lock() = Some(seid);
        EventManager {
            seid,
            subscriptions,
        }
    }

    /// The event manager's SEID.
    pub fn seid(&self) -> Seid {
        self.seid
    }

    /// Number of subscribers to `event_type`.
    pub fn subscriber_count(&self, event_type: u16) -> usize {
        self.subscriptions
            .lock()
            .get(&event_type)
            .map_or(0, Vec::len)
    }
}

/// A received event: who posted it, its type, and its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct HaviEvent {
    /// The posting element.
    pub poster: Seid,
    /// Event type (see [`event_type`]).
    pub event_type: u16,
    /// Payload parameters.
    pub payload: Vec<HValue>,
}

/// Decodes a `ForwardEvent` message received by a subscriber element.
pub fn decode_forwarded(msg: &HaviMessage) -> Option<HaviEvent> {
    if msg.opcode != OpCode::new(API_EVENT_MANAGER, OPER_FORWARD) {
        return None;
    }
    let poster = Seid::new(
        NodeId(msg.params.first()?.as_u32()?),
        msg.params.get(1)?.as_u32()?,
    );
    let event_type = msg.params.get(2)?.as_u32()? as u16;
    Some(HaviEvent {
        poster,
        event_type,
        payload: msg.params[3..].to_vec(),
    })
}

/// Subscribes local element `src_handle` on `ms` to `event_type` at the
/// event manager `em`.
pub fn subscribe(
    ms: &MessagingSystem,
    src_handle: u32,
    em: Seid,
    event_type: u16,
) -> Result<(), HaviError> {
    ms.send_ok(
        src_handle,
        em,
        OpCode::new(API_EVENT_MANAGER, OPER_SUBSCRIBE),
        vec![HValue::U16(event_type)],
    )
    .map(|_| ())
}

/// Unsubscribes.
pub fn unsubscribe(
    ms: &MessagingSystem,
    src_handle: u32,
    em: Seid,
    event_type: u16,
) -> Result<(), HaviError> {
    ms.send_ok(
        src_handle,
        em,
        OpCode::new(API_EVENT_MANAGER, OPER_UNSUBSCRIBE),
        vec![HValue::U16(event_type)],
    )
    .map(|_| ())
}

/// Posts an event of `event_type` with `payload` from local element
/// `src_handle`.
pub fn post(
    ms: &MessagingSystem,
    src_handle: u32,
    em: Seid,
    event_type: u16,
    payload: Vec<HValue>,
) -> Result<(), HaviError> {
    let mut params = vec![HValue::U16(event_type)];
    params.extend(payload);
    ms.send_ok(
        src_handle,
        em,
        OpCode::new(API_EVENT_MANAGER, OPER_POST),
        params,
    )
    .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Network, Sim};

    fn world() -> (Sim, Network, MessagingSystem, EventManager) {
        let sim = Sim::new(1);
        let net = Network::ieee1394(&sim);
        let fav = MessagingSystem::attach(&net, "fav");
        let em = EventManager::start(&fav);
        (sim, net, fav, em)
    }

    #[test]
    fn subscribe_post_receive() {
        let (_sim, net, _fav, em) = world();
        let tv = MessagingSystem::attach(&net, "tv");
        let seen: Arc<Mutex<Vec<HaviEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let listener = tv.register_element(move |_, msg| {
            if let Some(ev) = decode_forwarded(msg) {
                seen2.lock().push(ev);
            }
            (HaviStatus::Success, vec![])
        });
        subscribe(
            &tv,
            listener.handle,
            em.seid(),
            event_type::TRANSPORT_CHANGED,
        )
        .unwrap();
        assert_eq!(em.subscriber_count(event_type::TRANSPORT_CHANGED), 1);

        let vcr = MessagingSystem::attach(&net, "vcr");
        let poster = vcr.register_element(|_, _| (HaviStatus::Success, vec![]));
        post(
            &vcr,
            poster.handle,
            em.seid(),
            event_type::TRANSPORT_CHANGED,
            vec![HValue::Str("recording".into())],
        )
        .unwrap();

        let seen = seen.lock();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].poster, poster);
        assert_eq!(seen[0].event_type, event_type::TRANSPORT_CHANGED);
        assert_eq!(seen[0].payload[0].as_str(), Some("recording"));
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let (_sim, net, _fav, em) = world();
        let tv = MessagingSystem::attach(&net, "tv");
        let count = Arc::new(Mutex::new(0u32));
        let count2 = count.clone();
        let listener = tv.register_element(move |_, msg| {
            if decode_forwarded(msg).is_some() {
                *count2.lock() += 1;
            }
            (HaviStatus::Success, vec![])
        });
        subscribe(&tv, listener.handle, em.seid(), event_type::BUS_RESET).unwrap();
        post(
            &tv,
            listener.handle,
            em.seid(),
            event_type::BUS_RESET,
            vec![],
        )
        .unwrap();
        unsubscribe(&tv, listener.handle, em.seid(), event_type::BUS_RESET).unwrap();
        assert_eq!(em.subscriber_count(event_type::BUS_RESET), 0);
        post(
            &tv,
            listener.handle,
            em.seid(),
            event_type::BUS_RESET,
            vec![],
        )
        .unwrap();
        assert_eq!(*count.lock(), 1);
    }

    #[test]
    fn events_are_type_scoped() {
        let (_sim, net, _fav, em) = world();
        let tv = MessagingSystem::attach(&net, "tv");
        let count = Arc::new(Mutex::new(0u32));
        let count2 = count.clone();
        let listener = tv.register_element(move |_, msg| {
            if decode_forwarded(msg).is_some() {
                *count2.lock() += 1;
            }
            (HaviStatus::Success, vec![])
        });
        subscribe(&tv, listener.handle, em.seid(), event_type::DEVICE_ADDED).unwrap();
        post(
            &tv,
            listener.handle,
            em.seid(),
            event_type::DEVICE_GONE,
            vec![],
        )
        .unwrap();
        assert_eq!(*count.lock(), 0);
    }

    #[test]
    fn duplicate_subscription_is_idempotent() {
        let (_sim, net, _fav, em) = world();
        let tv = MessagingSystem::attach(&net, "tv");
        let count = Arc::new(Mutex::new(0u32));
        let count2 = count.clone();
        let listener = tv.register_element(move |_, msg| {
            if decode_forwarded(msg).is_some() {
                *count2.lock() += 1;
            }
            (HaviStatus::Success, vec![])
        });
        subscribe(&tv, listener.handle, em.seid(), event_type::BUS_RESET).unwrap();
        subscribe(&tv, listener.handle, em.seid(), event_type::BUS_RESET).unwrap();
        assert_eq!(em.subscriber_count(event_type::BUS_RESET), 1);
        post(
            &tv,
            listener.handle,
            em.seid(),
            event_type::BUS_RESET,
            vec![],
        )
        .unwrap();
        assert_eq!(*count.lock(), 1);
    }

    #[test]
    fn dead_subscriber_does_not_fail_post() {
        let (_sim, net, _fav, em) = world();
        let tv = MessagingSystem::attach(&net, "tv");
        let listener = tv.register_element(|_, _| (HaviStatus::Success, vec![]));
        subscribe(&tv, listener.handle, em.seid(), event_type::BUS_RESET).unwrap();
        tv.unregister_element(listener);
        // The poster still succeeds even though forwarding fails.
        let vcr = MessagingSystem::attach(&net, "vcr");
        let poster = vcr.register_element(|_, _| (HaviStatus::Success, vec![]));
        post(
            &vcr,
            poster.handle,
            em.seid(),
            event_type::BUS_RESET,
            vec![],
        )
        .unwrap();
    }
}
