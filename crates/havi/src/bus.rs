//! IEEE1394 bus lifecycle.
//!
//! Plugging or unplugging any FireWire device triggers a *bus reset*:
//! the bus goes silent for a short period, nodes re-enumerate, and HAVi
//! software re-advertises itself. Failure-injection tests use this to
//! check the framework's behaviour when a whole middleware island blinks.

use simnet::{Network, Sim, SimDuration};

/// How long a 1394 bus reset keeps the bus unusable (generous, covering
/// re-enumeration and self-ID).
pub const RESET_OUTAGE: SimDuration = SimDuration::from_millis(2);

/// Performs a bus reset on `net`: the bus drops, time passes, the bus
/// returns. Callers re-announce their DCMs afterwards (see
/// [`crate::dcm::Dcm::reannounce`]).
pub fn bus_reset(sim: &Sim, net: &Network) {
    net.set_down(true);
    sim.trace("1394", "bus reset started");
    sim.advance(RESET_OUTAGE);
    net.set_down(false);
    sim.trace("1394", "bus reset complete");
}

/// Schedules a bus reset `delay` from now (for failure injection during a
/// running scenario).
pub fn schedule_bus_reset(sim: &Sim, net: &Network, delay: SimDuration) {
    let net = net.clone();
    sim.schedule_in(delay, move |sim| bus_reset(sim, &net));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messaging::{HaviError, MessagingSystem, OpCode};
    use crate::seid::HaviStatus;

    #[test]
    fn reset_blocks_then_restores_messaging() {
        let sim = Sim::new(1);
        let net = Network::ieee1394(&sim);
        let a = MessagingSystem::attach(&net, "a");
        let b = MessagingSystem::attach(&net, "b");
        let target = b.register_element(|_, _| (HaviStatus::Success, vec![]));
        let src = a.register_element(|_, _| (HaviStatus::Success, vec![]));

        net.set_down(true);
        assert!(matches!(
            a.send(src.handle, target, OpCode::new(1, 1), vec![]),
            Err(HaviError::Network(_))
        ));
        net.set_down(false);
        assert!(a
            .send(src.handle, target, OpCode::new(1, 1), vec![])
            .is_ok());
    }

    #[test]
    fn bus_reset_costs_outage_time() {
        let sim = Sim::new(1);
        let net = Network::ieee1394(&sim);
        let before = sim.now();
        bus_reset(&sim, &net);
        assert_eq!(sim.now() - before, RESET_OUTAGE);
        assert!(!net.is_down());
    }

    #[test]
    fn scheduled_reset_fires_on_pump() {
        let sim = Sim::new(1);
        let net = Network::ieee1394(&sim);
        schedule_bus_reset(&sim, &net, SimDuration::from_millis(10));
        assert!(!net.is_down());
        sim.run_for(SimDuration::from_millis(20));
        // Reset has come and gone.
        assert!(!net.is_down());
        assert!(sim.now().as_millis() >= 12);
    }
}
