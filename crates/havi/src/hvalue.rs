//! HAVi's native parameter encoding.
//!
//! HAVi messages carry compact binary parameter lists (the spec's CDR-like
//! marshalling) — much terser than Jini's Java serialization, which is
//! exactly the kind of representation gap the Protocol Conversion Manager
//! exists to bridge.

use std::fmt;

/// A parameter in a HAVi message.
#[derive(Debug, Clone, PartialEq)]
pub enum HValue {
    /// `boolean`.
    Bool(bool),
    /// `octet`.
    U8(u8),
    /// `ushort`.
    U16(u16),
    /// `ulong`.
    U32(u32),
    /// A counted string.
    Str(String),
    /// A counted octet sequence.
    Bytes(Vec<u8>),
}

impl HValue {
    /// The integer content widened to u32, if numeric.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            HValue::U8(v) => Some(u32::from(*v)),
            HValue::U16(v) => Some(u32::from(*v)),
            HValue::U32(v) => Some(*v),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            HValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean inside, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            HValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut Vec<u8>) {
        match self {
            HValue::Bool(b) => {
                out.push(0);
                out.push(u8::from(*b));
            }
            HValue::U8(v) => {
                out.push(1);
                out.push(*v);
            }
            HValue::U16(v) => {
                out.push(2);
                out.extend_from_slice(&v.to_be_bytes());
            }
            HValue::U32(v) => {
                out.push(3);
                out.extend_from_slice(&v.to_be_bytes());
            }
            HValue::Str(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u16).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            HValue::Bytes(b) => {
                out.push(5);
                out.extend_from_slice(&(b.len() as u16).to_be_bytes());
                out.extend_from_slice(b);
            }
        }
    }

    fn read(data: &[u8], pos: &mut usize) -> Result<HValue, CodecError> {
        let tag = *data.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CodecError> {
            let end = *pos + n;
            if end > data.len() {
                return Err(CodecError::Truncated);
            }
            let s = &data[*pos..end];
            *pos = end;
            Ok(s)
        };
        match tag {
            0 => Ok(HValue::Bool(take(pos, 1)?[0] != 0)),
            1 => Ok(HValue::U8(take(pos, 1)?[0])),
            2 => Ok(HValue::U16(u16::from_be_bytes(
                take(pos, 2)?.try_into().unwrap(),
            ))),
            3 => Ok(HValue::U32(u32::from_be_bytes(
                take(pos, 4)?.try_into().unwrap(),
            ))),
            4 => {
                let len = u16::from_be_bytes(take(pos, 2)?.try_into().unwrap()) as usize;
                let bytes = take(pos, len)?;
                String::from_utf8(bytes.to_vec())
                    .map(HValue::Str)
                    .map_err(|_| CodecError::BadString)
            }
            5 => {
                let len = u16::from_be_bytes(take(pos, 2)?.try_into().unwrap()) as usize;
                Ok(HValue::Bytes(take(pos, len)?.to_vec()))
            }
            t => Err(CodecError::UnknownTag(t)),
        }
    }
}

/// Encodes a parameter list.
pub fn encode_params(params: &[HValue]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + params.len() * 4);
    out.push(params.len() as u8);
    for p in params {
        p.write(&mut out);
    }
    out
}

/// Decodes a parameter list; must consume all input.
pub fn decode_params(data: &[u8]) -> Result<Vec<HValue>, CodecError> {
    let count = *data.first().ok_or(CodecError::Truncated)? as usize;
    let mut pos = 1;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(HValue::read(data, &mut pos)?);
    }
    if pos != data.len() {
        return Err(CodecError::Trailing);
    }
    Ok(out)
}

/// Parameter codec failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-value.
    Truncated,
    /// Unknown type tag.
    UnknownTag(u8),
    /// A string was not valid UTF-8.
    BadString,
    /// Bytes left over after the declared parameter count.
    Trailing,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated parameter list"),
            CodecError::UnknownTag(t) => write!(f, "unknown parameter tag {t}"),
            CodecError::BadString => write!(f, "invalid UTF-8 in string parameter"),
            CodecError::Trailing => write!(f, "trailing bytes after parameters"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_round_trip() {
        let params = vec![
            HValue::Bool(true),
            HValue::U8(7),
            HValue::U16(300),
            HValue::U32(70_000),
            HValue::Str("camera".into()),
            HValue::Bytes(vec![1, 2, 3]),
        ];
        let enc = encode_params(&params);
        assert_eq!(decode_params(&enc).unwrap(), params);
    }

    #[test]
    fn empty_list() {
        let enc = encode_params(&[]);
        assert_eq!(enc, vec![0]);
        assert!(decode_params(&enc).unwrap().is_empty());
    }

    #[test]
    fn error_cases() {
        assert_eq!(decode_params(&[]), Err(CodecError::Truncated));
        assert_eq!(decode_params(&[1]), Err(CodecError::Truncated));
        assert_eq!(decode_params(&[1, 99, 0]), Err(CodecError::UnknownTag(99)));
        // Trailing bytes.
        let mut enc = encode_params(&[HValue::U8(1)]);
        enc.push(0);
        assert_eq!(decode_params(&enc), Err(CodecError::Trailing));
        // Bad UTF-8.
        let enc = vec![1, 4, 0, 2, 0xff, 0xfe];
        assert_eq!(decode_params(&enc), Err(CodecError::BadString));
    }

    #[test]
    fn havi_encoding_is_compact() {
        // The same logical payload is far smaller than Jini's marshalled
        // object form — the representation gap E3/E4 measure.
        let enc = encode_params(&[HValue::U16(42), HValue::Bool(true)]);
        assert!(enc.len() <= 8, "got {} bytes", enc.len());
    }

    #[test]
    fn accessors() {
        assert_eq!(HValue::U8(5).as_u32(), Some(5));
        assert_eq!(HValue::U16(5).as_u32(), Some(5));
        assert_eq!(HValue::U32(5).as_u32(), Some(5));
        assert_eq!(HValue::Str("x".into()).as_u32(), None);
        assert_eq!(HValue::Str("x".into()).as_str(), Some("x"));
        assert_eq!(HValue::Bool(true).as_bool(), Some(true));
    }
}
