//! The HAVi Messaging System.
//!
//! Every HAVi node runs a messaging system that assigns SEIDs to its
//! software elements and carries request/response messages between SEIDs
//! over IEEE1394 asynchronous transactions.

use crate::hvalue::{decode_params, encode_params, CodecError, HValue};
use crate::seid::{HaviStatus, Seid};
use parking_lot::Mutex;
use simnet::{Network, NodeId, Protocol, Sim, SimDuration};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A HAVi operation code: API class + operation within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpCode {
    /// API class (e.g. VCR FCM = `0x0103`).
    pub api: u16,
    /// Operation within the class.
    pub oper: u16,
}

impl OpCode {
    /// Creates an opcode.
    pub const fn new(api: u16, oper: u16) -> OpCode {
        OpCode { api, oper }
    }
}

impl fmt::Display for OpCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}:{:04x}", self.api, self.oper)
    }
}

/// A message addressed from one software element to another.
#[derive(Debug, Clone, PartialEq)]
pub struct HaviMessage {
    /// Sender.
    pub src: Seid,
    /// Receiver.
    pub dst: Seid,
    /// Operation.
    pub opcode: OpCode,
    /// Parameters.
    pub params: Vec<HValue>,
}

impl HaviMessage {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        out.extend_from_slice(&self.src.node.0.to_be_bytes());
        out.extend_from_slice(&self.src.handle.to_be_bytes());
        out.extend_from_slice(&self.dst.handle.to_be_bytes());
        out.extend_from_slice(&self.opcode.api.to_be_bytes());
        out.extend_from_slice(&self.opcode.oper.to_be_bytes());
        out.extend_from_slice(&encode_params(&self.params));
        out
    }

    fn decode(dst_node: NodeId, data: &[u8]) -> Result<HaviMessage, CodecError> {
        if data.len() < 16 {
            return Err(CodecError::Truncated);
        }
        let src_node = u32::from_be_bytes(data[0..4].try_into().unwrap());
        let src_handle = u32::from_be_bytes(data[4..8].try_into().unwrap());
        let dst_handle = u32::from_be_bytes(data[8..12].try_into().unwrap());
        let api = u16::from_be_bytes(data[12..14].try_into().unwrap());
        let oper = u16::from_be_bytes(data[14..16].try_into().unwrap());
        let params = decode_params(&data[16..])?;
        Ok(HaviMessage {
            src: Seid::new(NodeId(src_node), src_handle),
            dst: Seid::new(dst_node, dst_handle),
            opcode: OpCode::new(api, oper),
            params,
        })
    }
}

/// A software element's message handler: returns a status and reply
/// parameters.
pub type ElementHandler = Box<dyn FnMut(&Sim, &HaviMessage) -> (HaviStatus, Vec<HValue>) + Send>;

/// Errors surfaced by the HAVi layer.
#[derive(Debug, Clone, PartialEq)]
pub enum HaviError {
    /// The 1394 bus failed.
    Network(String),
    /// A message or reply failed to decode.
    Codec(CodecError),
    /// The peer returned a non-success status.
    Status(HaviStatus),
}

impl fmt::Display for HaviError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HaviError::Network(m) => write!(f, "havi bus error: {m}"),
            HaviError::Codec(e) => write!(f, "havi codec error: {e}"),
            HaviError::Status(s) => write!(f, "havi status {s}"),
        }
    }
}

impl std::error::Error for HaviError {}

impl From<CodecError> for HaviError {
    fn from(e: CodecError) -> HaviError {
        HaviError::Codec(e)
    }
}

type SharedHandler = Arc<Mutex<ElementHandler>>;

/// One node's messaging system.
#[derive(Clone)]
pub struct MessagingSystem {
    net: Network,
    node: NodeId,
    elements: Arc<Mutex<HashMap<u32, SharedHandler>>>,
    next_handle: Arc<Mutex<u32>>,
}

fn dispatch(
    elements: &Mutex<HashMap<u32, SharedHandler>>,
    sim: &Sim,
    msg: &HaviMessage,
) -> (HaviStatus, Vec<HValue>) {
    // Clone the handler Arc and release the map lock before calling, so a
    // handler may itself send messages (even to other elements on this
    // same node) without deadlocking.
    let handler = elements.lock().get(&msg.dst.handle).cloned();
    match handler {
        Some(h) => (h.lock())(sim, msg),
        None => (HaviStatus::EUnknownSeid, vec![]),
    }
}

impl MessagingSystem {
    /// Attaches a fresh 1394 node and starts its messaging system.
    pub fn attach(net: &Network, label: &str) -> MessagingSystem {
        let node = net.attach(label);
        MessagingSystem::on_node(net, node)
    }

    /// Starts a messaging system on an existing node (installs the node's
    /// request handler).
    pub fn on_node(net: &Network, node: NodeId) -> MessagingSystem {
        let elements: Arc<Mutex<HashMap<u32, SharedHandler>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let elements2 = elements.clone();
        net.set_request_handler(node, move |sim, frame| {
            sim.advance(SimDuration::from_micros(30)); // embedded CPU dispatch
            let reply = match HaviMessage::decode(node, &frame.payload) {
                Ok(msg) => {
                    let (status, params) = dispatch(&elements2, sim, &msg);
                    encode_reply(status, &params)
                }
                Err(_) => encode_reply(HaviStatus::EParameter, &[]),
            };
            Ok(reply.into())
        })
        .expect("node attached");
        MessagingSystem {
            net: net.clone(),
            node,
            elements,
            next_handle: Arc::new(Mutex::new(0)),
        }
    }

    /// The 1394 node this system runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers a software element, returning its SEID.
    pub fn register_element(
        &self,
        handler: impl FnMut(&Sim, &HaviMessage) -> (HaviStatus, Vec<HValue>) + Send + 'static,
    ) -> Seid {
        let mut next = self.next_handle.lock();
        *next += 1;
        let handle = *next;
        self.elements
            .lock()
            .insert(handle, Arc::new(Mutex::new(Box::new(handler))));
        Seid::new(self.node, handle)
    }

    /// Removes a software element.
    pub fn unregister_element(&self, seid: Seid) -> bool {
        seid.node == self.node && self.elements.lock().remove(&seid.handle).is_some()
    }

    /// Number of registered elements on this node.
    pub fn element_count(&self) -> usize {
        self.elements.lock().len()
    }

    /// Sends a request from local element `src_handle` to `dst` and waits
    /// for the reply.
    pub fn send(
        &self,
        src_handle: u32,
        dst: Seid,
        opcode: OpCode,
        params: Vec<HValue>,
    ) -> Result<(HaviStatus, Vec<HValue>), HaviError> {
        let msg = HaviMessage {
            src: Seid::new(self.node, src_handle),
            dst,
            opcode,
            params,
        };
        if dst.node == self.node {
            // Local messages never touch the 1394 bus (HAVi messaging
            // short-circuits intra-node delivery).
            let sim = self.net.sim().clone();
            sim.advance(SimDuration::from_micros(10));
            return Ok(dispatch(&self.elements, &sim, &msg));
        }
        let reply = self
            .net
            .request(self.node, dst.node, Protocol::Havi, msg.encode())
            .map_err(|e| HaviError::Network(e.to_string()))?;
        decode_reply(&reply)
    }

    /// Like [`MessagingSystem::send`], but non-success statuses become
    /// errors.
    pub fn send_ok(
        &self,
        src_handle: u32,
        dst: Seid,
        opcode: OpCode,
        params: Vec<HValue>,
    ) -> Result<Vec<HValue>, HaviError> {
        let (status, params) = self.send(src_handle, dst, opcode, params)?;
        if status.is_ok() {
            Ok(params)
        } else {
            Err(HaviError::Status(status))
        }
    }
}

impl fmt::Debug for MessagingSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MessagingSystem")
            .field("node", &self.node)
            .field("elements", &self.element_count())
            .finish()
    }
}

fn encode_reply(status: HaviStatus, params: &[HValue]) -> Vec<u8> {
    let mut out = vec![status.code()];
    out.extend_from_slice(&encode_params(params));
    out
}

fn decode_reply(data: &[u8]) -> Result<(HaviStatus, Vec<HValue>), HaviError> {
    let status = HaviStatus::from_code(*data.first().ok_or(CodecError::Truncated)?);
    let params = decode_params(&data[1..])?;
    Ok((status, params))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> (Sim, Network) {
        let sim = Sim::new(1);
        let net = Network::ieee1394(&sim);
        (sim, net)
    }

    #[test]
    fn element_to_element_messaging() {
        let (_sim, net) = bus();
        let vcr_node = MessagingSystem::attach(&net, "vcr");
        let vcr_seid = vcr_node.register_element(|_, msg| {
            if msg.opcode == OpCode::new(0x0103, 1) {
                (HaviStatus::Success, vec![HValue::Str("recording".into())])
            } else {
                (HaviStatus::EUnsupported, vec![])
            }
        });

        let controller = MessagingSystem::attach(&net, "tv");
        let ctl_seid = controller.register_element(|_, _| (HaviStatus::Success, vec![]));

        let (status, params) = controller
            .send(
                ctl_seid.handle,
                vcr_seid,
                OpCode::new(0x0103, 1),
                vec![HValue::U16(42)],
            )
            .unwrap();
        assert!(status.is_ok());
        assert_eq!(params[0].as_str(), Some("recording"));

        let (status, _) = controller
            .send(ctl_seid.handle, vcr_seid, OpCode::new(0x0103, 99), vec![])
            .unwrap();
        assert_eq!(status, HaviStatus::EUnsupported);
    }

    #[test]
    fn unknown_seid_and_send_ok() {
        let (_sim, net) = bus();
        let a = MessagingSystem::attach(&net, "a");
        let b = MessagingSystem::attach(&net, "b");
        let src = a.register_element(|_, _| (HaviStatus::Success, vec![]));
        let bogus = Seid::new(b.node(), 777);
        let (status, _) = a
            .send(src.handle, bogus, OpCode::new(1, 1), vec![])
            .unwrap();
        assert_eq!(status, HaviStatus::EUnknownSeid);
        assert_eq!(
            a.send_ok(src.handle, bogus, OpCode::new(1, 1), vec![]),
            Err(HaviError::Status(HaviStatus::EUnknownSeid))
        );
    }

    #[test]
    fn unregister_element() {
        let (_sim, net) = bus();
        let node = MessagingSystem::attach(&net, "x");
        let seid = node.register_element(|_, _| (HaviStatus::Success, vec![]));
        assert_eq!(node.element_count(), 1);
        assert!(node.unregister_element(seid));
        assert!(!node.unregister_element(seid));
        assert_eq!(node.element_count(), 0);
    }

    #[test]
    fn message_wire_round_trip() {
        let msg = HaviMessage {
            src: Seid::new(NodeId(3), 7),
            dst: Seid::new(NodeId(9), 2),
            opcode: OpCode::new(0x0103, 5),
            params: vec![HValue::U32(1), HValue::Str("t".into())],
        };
        let enc = msg.encode();
        let back = HaviMessage::decode(NodeId(9), &enc).unwrap();
        assert_eq!(back, msg);
        assert!(HaviMessage::decode(NodeId(9), &enc[..10]).is_err());
    }

    #[test]
    fn messaging_is_fast_on_1394() {
        // A HAVi message round trip should be far under a millisecond —
        // the "1394 is built for AV" property E1 relies on.
        let (sim, net) = bus();
        let a = MessagingSystem::attach(&net, "a");
        let b = MessagingSystem::attach(&net, "b");
        let target = b.register_element(|_, _| (HaviStatus::Success, vec![]));
        let src = a.register_element(|_, _| (HaviStatus::Success, vec![]));
        let before = sim.now();
        a.send(src.handle, target, OpCode::new(1, 1), vec![])
            .unwrap();
        let elapsed = sim.now() - before;
        assert!(elapsed.as_micros() < 1_000, "took {elapsed}");
    }

    #[test]
    fn bus_down_surfaces_as_network_error() {
        let (_sim, net) = bus();
        let a = MessagingSystem::attach(&net, "a");
        let b = MessagingSystem::attach(&net, "b");
        let target = b.register_element(|_, _| (HaviStatus::Success, vec![]));
        let src = a.register_element(|_, _| (HaviStatus::Success, vec![]));
        net.set_down(true);
        assert!(matches!(
            a.send(src.handle, target, OpCode::new(1, 1), vec![]),
            Err(HaviError::Network(_))
        ));
    }
}
