//! DDI — Data Driven Interaction.
//!
//! HAVi's mechanism for device-supplied user interfaces: an FCM serves a
//! *DDI panel* (a tree of UI elements) that any controller — typically
//! the digital TV — renders, sending user actions back as messages. This
//! is how "we want to control these appliances from the GUI of the
//! digital TV" (§1) works without the TV knowing any device specifics.

use crate::hvalue::HValue;
use crate::messaging::{HaviError, MessagingSystem, OpCode};
use crate::seid::{HaviStatus, Seid};
use parking_lot::Mutex;
use simnet::Sim;
use std::fmt;
use std::sync::Arc;

/// DDI API class.
pub const API_DDI: u16 = 0x0003;
/// `Ddi::GetPanel` — returns the serialised element tree.
pub const OPER_GET_PANEL: u16 = 1;
/// `Ddi::UserAction` — `[U16 element-id]`.
pub const OPER_USER_ACTION: u16 = 2;

/// A node in a DDI panel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdiElement {
    /// A titled group of elements.
    Panel {
        /// Panel title.
        title: String,
        /// Children, in display order.
        children: Vec<DdiElement>,
    },
    /// A push button.
    Button {
        /// Action id sent on push.
        id: u16,
        /// Button label.
        label: String,
    },
    /// A read-only text field.
    Text {
        /// Field label.
        label: String,
        /// Field value.
        value: String,
    },
}

impl DdiElement {
    fn write(&self, out: &mut Vec<HValue>) {
        match self {
            DdiElement::Panel { title, children } => {
                out.push(HValue::U8(0));
                out.push(HValue::Str(title.clone()));
                out.push(HValue::U16(children.len() as u16));
                for c in children {
                    c.write(out);
                }
            }
            DdiElement::Button { id, label } => {
                out.push(HValue::U8(1));
                out.push(HValue::U16(*id));
                out.push(HValue::Str(label.clone()));
            }
            DdiElement::Text { label, value } => {
                out.push(HValue::U8(2));
                out.push(HValue::Str(label.clone()));
                out.push(HValue::Str(value.clone()));
            }
        }
    }

    fn read(params: &[HValue], pos: &mut usize) -> Option<DdiElement> {
        let tag = params.get(*pos)?.as_u32()?;
        *pos += 1;
        match tag {
            0 => {
                let title = params.get(*pos)?.as_str()?.to_owned();
                let n = params.get(*pos + 1)?.as_u32()? as usize;
                *pos += 2;
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(DdiElement::read(params, pos)?);
                }
                Some(DdiElement::Panel { title, children })
            }
            1 => {
                let id = params.get(*pos)?.as_u32()? as u16;
                let label = params.get(*pos + 1)?.as_str()?.to_owned();
                *pos += 2;
                Some(DdiElement::Button { id, label })
            }
            2 => {
                let label = params.get(*pos)?.as_str()?.to_owned();
                let value = params.get(*pos + 1)?.as_str()?.to_owned();
                *pos += 2;
                Some(DdiElement::Text { label, value })
            }
            _ => None,
        }
    }

    /// Serialises a tree to HAVi parameters.
    pub fn to_params(&self) -> Vec<HValue> {
        let mut out = Vec::new();
        self.write(&mut out);
        out
    }

    /// Deserialises a tree.
    pub fn from_params(params: &[HValue]) -> Option<DdiElement> {
        let mut pos = 0;
        let e = DdiElement::read(params, &mut pos)?;
        (pos == params.len()).then_some(e)
    }

    /// All buttons in the tree, in display order.
    pub fn buttons(&self) -> Vec<(u16, &str)> {
        let mut out = Vec::new();
        self.collect_buttons(&mut out);
        out
    }

    fn collect_buttons<'a>(&'a self, out: &mut Vec<(u16, &'a str)>) {
        match self {
            DdiElement::Panel { children, .. } => {
                for c in children {
                    c.collect_buttons(out);
                }
            }
            DdiElement::Button { id, label } => out.push((*id, label)),
            DdiElement::Text { .. } => {}
        }
    }
}

impl fmt::Display for DdiElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdiElement::Panel { title, children } => {
                writeln!(f, "[{title}]")?;
                for c in children {
                    write!(f, "  {c}")?;
                }
                Ok(())
            }
            DdiElement::Button { id, label } => writeln!(f, "({id}) <{label}>"),
            DdiElement::Text { label, value } => writeln!(f, "{label}: {value}"),
        }
    }
}

/// An action callback: `(sim, action-id)`.
pub type ActionCallback = Box<dyn FnMut(&Sim, u16) + Send>;

/// A hosted DDI panel: a software element serving the tree and accepting
/// user actions.
#[derive(Clone)]
pub struct DdiPanel {
    seid: Seid,
    panel: Arc<Mutex<DdiElement>>,
}

impl DdiPanel {
    /// Installs a panel on `ms` with the given UI tree and action
    /// callback.
    pub fn install(
        ms: &MessagingSystem,
        panel: DdiElement,
        mut on_action: impl FnMut(&Sim, u16) + Send + 'static,
    ) -> DdiPanel {
        let panel = Arc::new(Mutex::new(panel));
        let panel2 = panel.clone();
        let seid = ms.register_element(move |sim, msg| {
            if msg.opcode.api != API_DDI {
                return (HaviStatus::EUnsupported, vec![]);
            }
            match msg.opcode.oper {
                OPER_GET_PANEL => (HaviStatus::Success, panel2.lock().to_params()),
                OPER_USER_ACTION => match msg.params.first().and_then(HValue::as_u32) {
                    Some(id) => {
                        let valid = panel2
                            .lock()
                            .buttons()
                            .iter()
                            .any(|(bid, _)| u32::from(*bid) == id);
                        if valid {
                            on_action(sim, id as u16);
                            (HaviStatus::Success, vec![])
                        } else {
                            (HaviStatus::EParameter, vec![])
                        }
                    }
                    None => (HaviStatus::EParameter, vec![]),
                },
                _ => (HaviStatus::EUnsupported, vec![]),
            }
        });
        DdiPanel { seid, panel }
    }

    /// The panel's SEID.
    pub fn seid(&self) -> Seid {
        self.seid
    }

    /// Replaces the UI tree (e.g. to refresh a status text).
    pub fn update(&self, panel: DdiElement) {
        *self.panel.lock() = panel;
    }
}

impl fmt::Debug for DdiPanel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DdiPanel")
            .field("seid", &self.seid)
            .finish()
    }
}

/// The controller (TV-GUI) side.
#[derive(Debug, Clone)]
pub struct DdiController {
    ms: MessagingSystem,
    src_handle: u32,
}

impl DdiController {
    /// Creates a controller sending from local element `src_handle`.
    pub fn new(ms: &MessagingSystem, src_handle: u32) -> DdiController {
        DdiController {
            ms: ms.clone(),
            src_handle,
        }
    }

    /// Fetches a device's panel.
    pub fn fetch(&self, panel: Seid) -> Result<DdiElement, HaviError> {
        let params = self.ms.send_ok(
            self.src_handle,
            panel,
            OpCode::new(API_DDI, OPER_GET_PANEL),
            vec![],
        )?;
        DdiElement::from_params(&params).ok_or(HaviError::Status(HaviStatus::EParameter))
    }

    /// Pushes a button.
    pub fn press(&self, panel: Seid, action: u16) -> Result<(), HaviError> {
        self.ms
            .send_ok(
                self.src_handle,
                panel,
                OpCode::new(API_DDI, OPER_USER_ACTION),
                vec![HValue::U16(action)],
            )
            .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Network;

    fn sample_panel() -> DdiElement {
        DdiElement::Panel {
            title: "VCR".into(),
            children: vec![
                DdiElement::Text {
                    label: "state".into(),
                    value: "stopped".into(),
                },
                DdiElement::Button {
                    id: 1,
                    label: "Play".into(),
                },
                DdiElement::Button {
                    id: 2,
                    label: "Stop".into(),
                },
                DdiElement::Panel {
                    title: "Advanced".into(),
                    children: vec![DdiElement::Button {
                        id: 3,
                        label: "Record".into(),
                    }],
                },
            ],
        }
    }

    #[test]
    fn tree_round_trips_through_params() {
        let p = sample_panel();
        assert_eq!(DdiElement::from_params(&p.to_params()), Some(p.clone()));
        assert_eq!(
            p.buttons().iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Trailing garbage rejected.
        let mut params = p.to_params();
        params.push(HValue::U8(9));
        assert_eq!(DdiElement::from_params(&params), None);
    }

    #[test]
    fn tv_gui_drives_a_device_through_its_panel() {
        let sim = simnet::Sim::new(1);
        let bus = Network::ieee1394(&sim);
        let vcr_node = MessagingSystem::attach(&bus, "vcr");
        let pressed = Arc::new(Mutex::new(Vec::new()));
        let pressed2 = pressed.clone();
        let panel = DdiPanel::install(&vcr_node, sample_panel(), move |_, id| {
            pressed2.lock().push(id);
        });

        let tv = MessagingSystem::attach(&bus, "tv");
        let gui = tv.register_element(|_, _| (HaviStatus::Success, vec![]));
        let controller = DdiController::new(&tv, gui.handle);

        // The TV renders whatever the device serves — no device-specific
        // code.
        let ui = controller.fetch(panel.seid()).unwrap();
        let buttons = ui.buttons();
        assert_eq!(buttons.len(), 3);
        assert_eq!(buttons[0].1, "Play");

        controller.press(panel.seid(), buttons[0].0).unwrap();
        controller.press(panel.seid(), buttons[2].0).unwrap();
        assert_eq!(*pressed.lock(), vec![1, 3]);

        // Unknown action ids are rejected.
        assert!(matches!(
            controller.press(panel.seid(), 99),
            Err(HaviError::Status(HaviStatus::EParameter))
        ));
    }

    #[test]
    fn panels_can_refresh() {
        let sim = simnet::Sim::new(1);
        let bus = Network::ieee1394(&sim);
        let node = MessagingSystem::attach(&bus, "dev");
        let panel = DdiPanel::install(&node, sample_panel(), |_, _| {});
        panel.update(DdiElement::Panel {
            title: "VCR".into(),
            children: vec![DdiElement::Text {
                label: "state".into(),
                value: "recording".into(),
            }],
        });
        let tv = MessagingSystem::attach(&bus, "tv");
        let gui = tv.register_element(|_, _| (HaviStatus::Success, vec![]));
        let ui = DdiController::new(&tv, gui.handle)
            .fetch(panel.seid())
            .unwrap();
        assert!(ui.to_string().contains("recording"));
        assert!(ui.buttons().is_empty());
    }
}
