//! # havi — a HAVi middleware simulation
//!
//! "HAVi is a digital AV networking middleware that provides a home
//! networking software specification for providing seamless
//! interoperability among home entertainment products … IEEE1394 has
//! been chosen to connect home appliances" (§2.1). This crate reproduces
//! the HAVi 1.1 architecture elements the paper's prototype bridges:
//!
//! * [`MessagingSystem`] — SEID-addressed request/response messages over
//!   1394 asynchronous transactions, with HAVi's compact parameter
//!   encoding ([`HValue`]).
//! * [`Registry`] — attribute-based advertisement and discovery of
//!   software elements.
//! * [`EventManager`] — typed publish/subscribe (a native *push* path).
//! * [`Fcm`] / [`Dcm`] — functional and device control modules with real
//!   transport state machines (VCR, DV camera, tuner, display, amp).
//! * [`StreamManager`] — isochronous channel/bandwidth allocation and
//!   cycle-accurate stream flow.
//! * [`bus_reset`] — 1394 bus resets for failure injection.
//!
//! Note on delivery: event forwarding is synchronous in the simulation;
//! a subscriber must not live on the same node as a poster that posts
//! from inside its own message handler (the simulation would re-enter
//! that node's transaction handler).
//!
//! ```
//! use simnet::{Sim, Network};
//! use havi::{MessagingSystem, Registry, RegistryClient, Dcm, FcmKind,
//!            OpCode, oper, attr, HaviStatus};
//!
//! let sim = Sim::new(7);
//! let bus = Network::ieee1394(&sim);
//! let fav = MessagingSystem::attach(&bus, "fav-controller");
//! let registry = Registry::start(&fav);
//!
//! let mut camcorder = Dcm::install(&bus, "camcorder", 0xCAFE,
//!     &[(FcmKind::DvCamera, "dv-camera")], None);
//! camcorder.announce(registry.seid()).unwrap();
//!
//! // A controller finds the camera and starts it playing.
//! let me = fav.register_element(|_, _| (HaviStatus::Success, vec![]));
//! let client = RegistryClient::new(&fav, me.handle, registry.seid());
//! let cams = client.query(&[(attr::DEVICE_CLASS, "dv-camera")]).unwrap();
//! let (status, _) = fav.send(me.handle, cams[0].seid,
//!     OpCode::new(FcmKind::DvCamera.api_code(), oper::PLAY), vec![]).unwrap();
//! assert!(status.is_ok());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bus;
pub mod dcm;
pub mod ddi;
pub mod events;
pub mod fcm;
pub mod hvalue;
pub mod messaging;
pub mod registry;
pub mod seid;
pub mod stream;

pub use bus::{bus_reset, schedule_bus_reset, RESET_OUTAGE};
pub use dcm::Dcm;
pub use ddi::{DdiController, DdiElement, DdiPanel, API_DDI};
pub use events::{
    decode_forwarded, event_type, post, subscribe, unsubscribe, EventManager, HaviEvent,
};
pub use fcm::{oper, Fcm, FcmKind, FcmStateSnapshot, TransportState};
pub use hvalue::{decode_params, encode_params, CodecError, HValue};
pub use messaging::{ElementHandler, HaviError, HaviMessage, MessagingSystem, OpCode};
pub use registry::{attr, Registry, RegistryClient, RegistryEntry};
pub use seid::{HaviStatus, Seid};
pub use stream::{
    StreamConnection, StreamError, StreamManager, StreamReport, CHANNELS, CYCLE,
    CYCLE_BUDGET_BYTES, DV_BYTES_PER_CYCLE,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_hvalue() -> impl Strategy<Value = HValue> {
        prop_oneof![
            any::<bool>().prop_map(HValue::Bool),
            any::<u8>().prop_map(HValue::U8),
            any::<u16>().prop_map(HValue::U16),
            any::<u32>().prop_map(HValue::U32),
            "[ -~]{0,32}".prop_map(HValue::Str),
            prop::collection::vec(any::<u8>(), 0..48).prop_map(HValue::Bytes),
        ]
    }

    proptest! {
        #[test]
        fn params_round_trip(params in prop::collection::vec(arb_hvalue(), 0..12)) {
            let enc = encode_params(&params);
            prop_assert_eq!(decode_params(&enc).unwrap(), params);
        }

        #[test]
        fn decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..120)) {
            let _ = decode_params(&data);
        }

        #[test]
        fn truncated_params_always_error(params in prop::collection::vec(arb_hvalue(), 1..8)) {
            let enc = encode_params(&params);
            prop_assert!(decode_params(&enc[..enc.len() - 1]).is_err());
        }

        #[test]
        fn stream_budget_is_conserved(
            sizes in prop::collection::vec(1u32..1_000, 1..20),
        ) {
            let sim = simnet::Sim::new(1);
            let net = simnet::Network::ieee1394(&sim);
            let smgr = StreamManager::new(&net);
            let mut reserved = 0u32;
            let mut channels = Vec::new();
            for s in &sizes {
                match smgr.connect(Seid::new(simnet::NodeId(1), 1), Seid::new(simnet::NodeId(2), 1), *s) {
                    Ok(c) => {
                        reserved += s;
                        channels.push(c.channel);
                    }
                    Err(_) => break,
                }
            }
            prop_assert!(reserved <= CYCLE_BUDGET_BYTES);
            prop_assert_eq!(smgr.available_bytes_per_cycle(), CYCLE_BUDGET_BYTES - reserved);
            // Releasing everything restores the full budget.
            for c in channels {
                smgr.disconnect(c).unwrap();
            }
            prop_assert_eq!(smgr.available_bytes_per_cycle(), CYCLE_BUDGET_BYTES);
        }
    }
}
