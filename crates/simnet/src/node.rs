//! Node identities and addressing.

use std::fmt;

/// Identifies a device attached to a simulated network.
///
/// Node ids are only meaningful within one [`crate::net::Network`]; the same
/// physical appliance may hold different `NodeId`s on different networks
/// (e.g. a set-top box on both Ethernet and IEEE1394).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// The destination of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Addr {
    /// A single node.
    Unicast(NodeId),
    /// Every node on the network except the sender.
    ///
    /// Used by Jini multicast discovery, UPnP SSDP, and X10 (whose
    /// powerline is inherently a broadcast medium).
    Broadcast,
}

impl Addr {
    /// True if `node` should receive a frame addressed to `self`
    /// when sent by `src`.
    pub fn matches(&self, node: NodeId, src: NodeId) -> bool {
        match self {
            Addr::Unicast(dst) => *dst == node,
            Addr::Broadcast => node != src,
        }
    }
}

impl From<NodeId> for Addr {
    fn from(n: NodeId) -> Addr {
        Addr::Unicast(n)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Unicast(n) => write!(f, "{n}"),
            Addr::Broadcast => write!(f, "broadcast"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_matches_only_destination() {
        let a = Addr::Unicast(NodeId(2));
        assert!(a.matches(NodeId(2), NodeId(1)));
        assert!(!a.matches(NodeId(3), NodeId(1)));
        // Loopback unicast is allowed: a node may address itself.
        assert!(a.matches(NodeId(2), NodeId(2)));
    }

    #[test]
    fn broadcast_excludes_sender() {
        let a = Addr::Broadcast;
        assert!(a.matches(NodeId(5), NodeId(1)));
        assert!(!a.matches(NodeId(1), NodeId(1)));
    }

    #[test]
    fn addr_from_node_id() {
        assert_eq!(Addr::from(NodeId(9)), Addr::Unicast(NodeId(9)));
        assert_eq!(Addr::Broadcast.to_string(), "broadcast");
        assert_eq!(Addr::from(NodeId(9)).to_string(), "node#9");
    }
}
