//! Virtual time primitives.
//!
//! All simulation time is expressed in integer **microseconds** so that
//! results are exact and platform-independent. [`SimTime`] is an absolute
//! instant on the virtual clock; [`SimDuration`] is a span between instants.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the virtual clock, in microseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `us` microseconds after the simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from a float second count (rounded to micros).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1_000_000.0).round().max(0.0) as u64)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The time to transmit `bytes` at `bits_per_sec` on an ideal link.
    pub fn transmission(bytes: usize, bits_per_sec: u64) -> SimDuration {
        if bits_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let bits = bytes as u128 * 8;
        let us = bits * 1_000_000 / bits_per_sec as u128;
        SimDuration(us as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 1_000_000 {
            write!(f, "{:.3}s", us as f64 / 1_000_000.0)
        } else if us >= 1_000 {
            write!(f, "{:.3}ms", us as f64 / 1_000.0)
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_micros(1_500);
        let d = SimDuration::from_millis(2);
        assert_eq!((t + d).as_micros(), 3_500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn since_saturates_for_future_instants() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(20);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(early - late, SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn transmission_time_matches_line_rate() {
        // 1000 bytes at 8 Mbit/s = 1 ms.
        let d = SimDuration::transmission(1_000, 8_000_000);
        assert_eq!(d, SimDuration::from_millis(1));
        // Zero bandwidth is treated as "infinitely fast" (cost modelled elsewhere).
        assert_eq!(SimDuration::transmission(1_000, 0), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(300);
        assert_eq!(d * 4, SimDuration::from_micros(1_200));
        assert_eq!(d / 3, SimDuration::from_micros(100));
        assert_eq!(
            d.saturating_sub(SimDuration::from_micros(500)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_formats_are_humane() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_micros(1_500).to_string(), "t+1.500ms");
    }
}
