//! Error types for the network simulation.

use crate::node::NodeId;
use crate::time::SimTime;
use std::fmt;

/// Errors produced by the simulated network layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The destination node is not attached to the network.
    UnknownNode(NodeId),
    /// The frame was lost in transit (random loss or collision).
    FrameLost {
        /// Where the frame was headed.
        dst: NodeId,
        /// Virtual time at which the loss happened.
        at: SimTime,
    },
    /// The payload exceeds the network's maximum transmission unit.
    FrameTooLarge {
        /// Payload size in bytes.
        size: usize,
        /// The network MTU in bytes.
        mtu: usize,
    },
    /// The destination is attached but has no request handler installed.
    NoHandler(NodeId),
    /// The destination handler refused or failed the request.
    Refused(String),
    /// A timeout elapsed while waiting for a response.
    Timeout {
        /// How long the caller waited.
        after_millis: u64,
    },
    /// The network itself is down (e.g. a 1394 bus in reset).
    NetworkDown(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownNode(id) => write!(f, "unknown node {id}"),
            SimError::FrameLost { dst, at } => {
                write!(f, "frame to {dst} lost at {at}")
            }
            SimError::FrameTooLarge { size, mtu } => {
                write!(f, "frame of {size} bytes exceeds MTU of {mtu} bytes")
            }
            SimError::NoHandler(id) => write!(f, "node {id} has no handler installed"),
            SimError::Refused(why) => write!(f, "request refused: {why}"),
            SimError::Timeout { after_millis } => {
                write!(f, "timed out after {after_millis}ms")
            }
            SimError::NetworkDown(name) => write!(f, "network {name} is down"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias for simulation operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let e = SimError::FrameTooLarge {
            size: 2000,
            mtu: 1500,
        };
        assert!(e.to_string().contains("2000"));
        assert!(e.to_string().contains("1500"));
        let e = SimError::Timeout { after_millis: 250 };
        assert!(e.to_string().contains("250ms"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::NoHandler(NodeId(3)));
    }
}
