//! Error types for the network simulation.

use crate::node::NodeId;
use crate::time::SimTime;
use std::fmt;

/// Errors produced by the simulated network layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The destination node is not attached to the network.
    UnknownNode(NodeId),
    /// The frame was lost in transit (random loss or collision).
    FrameLost {
        /// Where the frame was headed.
        dst: NodeId,
        /// Virtual time at which the loss happened.
        at: SimTime,
    },
    /// The payload exceeds the network's maximum transmission unit.
    FrameTooLarge {
        /// Payload size in bytes.
        size: usize,
        /// The network MTU in bytes.
        mtu: usize,
    },
    /// The destination is attached but has no request handler installed.
    NoHandler(NodeId),
    /// The destination handler refused or failed the request.
    Refused(String),
    /// A timeout elapsed while waiting for a response.
    Timeout {
        /// How long the caller waited.
        after_millis: u64,
    },
    /// The network itself is down (e.g. a 1394 bus in reset).
    NetworkDown(String),
    /// The node has crashed (an active [`crate::FaultPlan`] window);
    /// it can neither send nor be reached until it restarts.
    NodeDown(NodeId),
    /// An active partition separates the two nodes; the frame could
    /// not even be put on the medium.
    Partitioned {
        /// The node that tried to send.
        src: NodeId,
        /// The unreachable destination.
        dst: NodeId,
    },
}

impl SimError {
    /// Classifies an error returned by [`crate::Network::request`]
    /// issued from `caller`: `true` if the failure is guaranteed to
    /// have happened *before* the request reached the destination's
    /// handler (unknown node, network/node down, request-leg loss or
    /// partition), so the exchange certainly did not execute. `false`
    /// when the outcome is ambiguous: the response leg failed
    /// ([`SimError::FrameLost`]/[`SimError::Partitioned`] aimed back
    /// at `caller`), the call timed out in flight, or the handler
    /// itself ran and refused.
    pub fn before_delivery(&self, caller: NodeId) -> bool {
        match self {
            SimError::FrameLost { dst, .. } => *dst != caller,
            SimError::Partitioned { dst, .. } => *dst != caller,
            SimError::Refused(_) | SimError::Timeout { .. } => false,
            _ => true,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownNode(id) => write!(f, "unknown node {id}"),
            SimError::FrameLost { dst, at } => {
                write!(f, "frame to {dst} lost at {at}")
            }
            SimError::FrameTooLarge { size, mtu } => {
                write!(f, "frame of {size} bytes exceeds MTU of {mtu} bytes")
            }
            SimError::NoHandler(id) => write!(f, "node {id} has no handler installed"),
            SimError::Refused(why) => write!(f, "request refused: {why}"),
            SimError::Timeout { after_millis } => {
                write!(f, "timed out after {after_millis}ms")
            }
            SimError::NetworkDown(name) => write!(f, "network {name} is down"),
            SimError::NodeDown(id) => write!(f, "node {id} is down"),
            SimError::Partitioned { src, dst } => {
                write!(f, "partition separates {src} from {dst}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias for simulation operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let e = SimError::FrameTooLarge {
            size: 2000,
            mtu: 1500,
        };
        assert!(e.to_string().contains("2000"));
        assert!(e.to_string().contains("1500"));
        let e = SimError::Timeout { after_millis: 250 };
        assert!(e.to_string().contains("250ms"));
    }

    #[test]
    fn before_delivery_separates_request_leg_from_response_leg() {
        let caller = NodeId(1);
        let server = NodeId(2);
        let at = SimTime::from_micros(0);
        // Request never made it out — certainly not executed.
        assert!(SimError::NetworkDown("eth".into()).before_delivery(caller));
        assert!(SimError::NodeDown(server).before_delivery(caller));
        assert!(SimError::UnknownNode(server).before_delivery(caller));
        assert!(SimError::NoHandler(server).before_delivery(caller));
        assert!(SimError::FrameLost { dst: server, at }.before_delivery(caller));
        assert!(SimError::Partitioned {
            src: caller,
            dst: server
        }
        .before_delivery(caller));
        // Response-leg failures (aimed back at the caller) and handler
        // refusals: the remote side may have executed.
        assert!(!SimError::FrameLost { dst: caller, at }.before_delivery(caller));
        assert!(!SimError::Partitioned {
            src: server,
            dst: caller
        }
        .before_delivery(caller));
        assert!(!SimError::Refused("busy".into()).before_delivery(caller));
        assert!(!SimError::Timeout { after_millis: 5 }.before_delivery(caller));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::NoHandler(NodeId(3)));
    }
}
