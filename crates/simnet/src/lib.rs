//! # simnet — deterministic home-network simulation
//!
//! The substrate for the ICDCSW 2002 meta-middleware reproduction. Every
//! network technology the paper's smart home contains — Ethernet,
//! IEEE1394, the X10 powerline, serial lines, Bluetooth, and the Internet
//! uplink — is modelled as a [`Network`] with a per-technology
//! [`LinkModel`], sharing one [`Sim`] world that provides a virtual clock,
//! a discrete-event timer queue, a seeded RNG and a trace buffer.
//!
//! Results are **exactly reproducible**: all latency comes from integer
//! microsecond arithmetic over link models, and all randomness (powerline
//! loss, workload generation) flows from the world seed.
//!
//! ## Quick example
//!
//! ```
//! use simnet::{Sim, Network, Frame, Protocol};
//!
//! let sim = Sim::new(7);
//! let eth = Network::ethernet(&sim);
//! let pc = eth.attach("pc");
//! let fridge = eth.attach("fridge");
//! eth.set_request_handler(fridge, |_, req| {
//!     Ok(bytes::Bytes::from(format!("echo:{}", req.len())))
//! }).unwrap();
//! let resp = eth.request(pc, fridge, Protocol::Raw, &b"temp?"[..]).unwrap();
//! assert_eq!(&resp[..], b"echo:5");
//! assert!(sim.now().as_micros() > 0, "virtual time advanced");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod error;
pub mod frame;
pub mod link;
pub mod net;
pub mod netkind;
pub mod node;
pub mod par;
pub mod rng;
pub mod sched;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use chaos::{FaultKind, FaultPlan, FaultWindow};
pub use error::{SimError, SimResult};
pub use frame::{Frame, Protocol};
pub use link::LinkModel;
pub use net::Network;
pub use node::{Addr, NodeId};
pub use par::{Courier, IslandProfile, ParRunStats, ParSim};
pub use rng::SimRng;
pub use sched::TimerId;
pub use sim::{RepeatHandle, Sim};
pub use stats::{Counter, NetStats};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, Tracer};
