//! Simulated networks.
//!
//! A [`Network`] is one shared medium (an Ethernet segment, an IEEE1394
//! bus, the house powerline, a serial cable) with a [`LinkModel`] cost
//! model and a set of attached nodes. It supports one-way frames
//! (datagrams, broadcasts) and synchronous request/response exchanges —
//! the two interaction patterns every home middleware in the paper uses.

use crate::chaos::FaultPlan;
use crate::error::{SimError, SimResult};
use crate::frame::{Frame, Protocol};
use crate::link::LinkModel;
use crate::node::{Addr, NodeId};
use crate::sim::Sim;
use crate::stats::NetStats;
use crate::time::SimDuration;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Handles one-way frames delivered to a node.
pub type FrameHandler = Box<dyn FnMut(&Sim, &Frame) + Send>;

/// Handles request/response exchanges addressed to a node.
///
/// Returning `Err` surfaces to the caller as [`SimError::Refused`].
pub type RequestHandler = Box<dyn FnMut(&Sim, &Frame) -> Result<Bytes, String> + Send>;

struct NodePort {
    label: String,
    frame_handler: Option<Arc<Mutex<FrameHandler>>>,
    request_handler: Option<Arc<Mutex<RequestHandler>>>,
    inbox: Arc<Mutex<VecDeque<Frame>>>,
}

struct NetInner {
    name: String,
    sim: Sim,
    link: LinkModel,
    nodes: Mutex<HashMap<NodeId, NodePort>>,
    next_node: Mutex<u32>,
    stats: Mutex<NetStats>,
    down: AtomicBool,
    chaos: Mutex<Option<FaultPlan>>,
}

/// The chaos effects in force at one instant, captured under one lock
/// acquisition so transfer code never holds the plan lock while the
/// clock advances.
struct ChaosGate {
    extra_latency: SimDuration,
    extra_loss: f64,
    duplicate: f64,
    reorder: SimDuration,
}

impl ChaosGate {
    const CLEAR: ChaosGate = ChaosGate {
        extra_latency: SimDuration::ZERO,
        extra_loss: 0.0,
        duplicate: 0.0,
        reorder: SimDuration::ZERO,
    };
}

/// A cheaply clonable handle to one simulated network.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetInner>,
}

impl Network {
    /// Creates a network on `sim` with the given technology model.
    pub fn new(sim: &Sim, name: impl Into<String>, link: LinkModel) -> Self {
        Network {
            inner: Arc::new(NetInner {
                name: name.into(),
                sim: sim.clone(),
                link,
                nodes: Mutex::new(HashMap::new()),
                next_node: Mutex::new(0),
                stats: Mutex::new(NetStats::new()),
                down: AtomicBool::new(false),
                chaos: Mutex::new(None),
            }),
        }
    }

    /// The network's display name (e.g. `"ethernet"`, `"1394-bus"`).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The technology cost model.
    pub fn link(&self) -> &LinkModel {
        &self.inner.link
    }

    /// The simulation world this network lives in.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Whether `other` is a handle to this same network instance.
    /// Node ids are only meaningful within one network, so anything
    /// caching per-node state keyed by [`NodeId`] must check this.
    pub fn same_as(&self, other: &Network) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    // ---- attachment -----------------------------------------------------

    /// Attaches a new node and returns its id.
    pub fn attach(&self, label: impl Into<String>) -> NodeId {
        let mut next = self.inner.next_node.lock();
        let id = NodeId(*next);
        *next += 1;
        self.inner.nodes.lock().insert(
            id,
            NodePort {
                label: label.into(),
                frame_handler: None,
                request_handler: None,
                inbox: Arc::new(Mutex::new(VecDeque::new())),
            },
        );
        id
    }

    /// Detaches a node (its frames are dropped from now on).
    pub fn detach(&self, node: NodeId) {
        self.inner.nodes.lock().remove(&node);
    }

    /// The label a node was attached with.
    pub fn label(&self, node: NodeId) -> Option<String> {
        self.inner.nodes.lock().get(&node).map(|p| p.label.clone())
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.lock().len()
    }

    /// Ids of all attached nodes, in ascending order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.inner.nodes.lock().keys().copied().collect();
        v.sort();
        v
    }

    /// Installs a handler invoked synchronously for every one-way frame
    /// delivered to `node`. Replaces any previous handler; frames stop
    /// accumulating in the node's inbox.
    pub fn set_frame_handler(
        &self,
        node: NodeId,
        f: impl FnMut(&Sim, &Frame) + Send + 'static,
    ) -> SimResult<()> {
        let mut nodes = self.inner.nodes.lock();
        let port = nodes.get_mut(&node).ok_or(SimError::UnknownNode(node))?;
        port.frame_handler = Some(Arc::new(Mutex::new(Box::new(f))));
        Ok(())
    }

    /// Installs the request/response handler for `node`.
    pub fn set_request_handler(
        &self,
        node: NodeId,
        f: impl FnMut(&Sim, &Frame) -> Result<Bytes, String> + Send + 'static,
    ) -> SimResult<()> {
        let mut nodes = self.inner.nodes.lock();
        let port = nodes.get_mut(&node).ok_or(SimError::UnknownNode(node))?;
        port.request_handler = Some(Arc::new(Mutex::new(Box::new(f))));
        Ok(())
    }

    /// Pops the oldest undelivered frame from `node`'s inbox.
    ///
    /// Only frames received while no frame handler was installed land in
    /// the inbox.
    pub fn recv(&self, node: NodeId) -> Option<Frame> {
        let inbox = self.inner.nodes.lock().get(&node)?.inbox.clone();
        let f = inbox.lock().pop_front();
        f
    }

    // ---- availability ---------------------------------------------------

    /// Marks the network up or down (a 1394 bus in reset, a tripped
    /// breaker on the powerline). While down, all sends fail.
    pub fn set_down(&self, down: bool) {
        self.inner.down.store(down, Ordering::SeqCst);
    }

    /// True if the network is currently down.
    pub fn is_down(&self) -> bool {
        self.inner.down.load(Ordering::SeqCst)
    }

    // ---- fault injection ------------------------------------------------

    /// Installs a [`FaultPlan`]: from now on every transfer consults the
    /// plan against the virtual clock, so crashes, partitions, loss and
    /// latency spikes strike exactly when scripted. Replaces any
    /// previous plan.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.inner.chaos.lock() = Some(plan);
    }

    /// Removes the fault plan, healing every injected fault at once.
    pub fn clear_fault_plan(&self) {
        *self.inner.chaos.lock() = None;
    }

    /// A copy of the installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.inner.chaos.lock().clone()
    }

    /// Checks crash/partition faults for a transfer `src → dst` and
    /// captures the loss/latency effects in force right now.
    fn chaos_gate(&self, src: NodeId, dst: Option<NodeId>) -> SimResult<ChaosGate> {
        let chaos = self.inner.chaos.lock();
        let Some(plan) = chaos.as_ref() else {
            return Ok(ChaosGate::CLEAR);
        };
        let now = self.inner.sim.now();
        if plan.node_down_at(now, src) {
            return Err(SimError::NodeDown(src));
        }
        if let Some(dst) = dst {
            if plan.node_down_at(now, dst) {
                return Err(SimError::NodeDown(dst));
            }
            if plan.partitioned_at(now, src, dst) {
                return Err(SimError::Partitioned { src, dst });
            }
        }
        Ok(ChaosGate {
            extra_latency: plan.extra_latency_at(now),
            extra_loss: plan.extra_loss_at(now),
            duplicate: plan.duplicate_prob_at(now),
            reorder: plan.reorder_window_at(now),
        })
    }

    /// Draws against the gate's extra loss probability, recording a
    /// chaos-injected drop in the stats.
    fn chaos_drop(&self, gate: &ChaosGate, frame: &Frame) -> bool {
        if gate.extra_loss > 0.0 && self.inner.sim.chance(gate.extra_loss) {
            self.inner.stats.lock().record_lost(frame.protocol);
            true
        } else {
            false
        }
    }

    /// Draws against the gate's duplicate probability. Only consulted
    /// on *delivered* legs — a lost frame cannot also arrive twice.
    fn chaos_duplicate(&self, gate: &ChaosGate) -> bool {
        gate.duplicate > 0.0 && self.inner.sim.chance(gate.duplicate)
    }

    /// The extra out-of-order slip for one delivery: uniform in
    /// `[0, window)`, drawn from the sim RNG only while a reorder
    /// window is active (so quiet plans leave the RNG stream — and
    /// every existing baseline — untouched).
    fn chaos_slip(&self, gate: &ChaosGate) -> SimDuration {
        if gate.reorder.is_zero() {
            SimDuration::ZERO
        } else {
            let span = gate.reorder.as_micros().max(1);
            SimDuration::from_micros(self.inner.sim.with_rng(|r| r.range(0, span)))
        }
    }

    // ---- transfer -------------------------------------------------------

    /// Sends a one-way frame, advancing the virtual clock by the transfer
    /// time. Broadcast frames are delivered to every other node in
    /// ascending node order.
    pub fn send(&self, frame: Frame) -> SimResult<()> {
        self.check_up()?;
        if !self.inner.link.fits(frame.len()) {
            return Err(SimError::FrameTooLarge {
                size: frame.len(),
                mtu: self.inner.link.mtu,
            });
        }
        // Chaos gate: a crashed endpoint or an active partition stops
        // the frame before it reaches the medium. (Broadcasts check
        // only the sender; delivery to each receiver is best-effort.)
        let gate = self.chaos_gate(
            frame.src,
            match frame.dst {
                Addr::Unicast(n) => Some(n),
                Addr::Broadcast => None,
            },
        )?;
        let sim = &self.inner.sim;
        sim.advance(self.inner.link.transfer_time(frame.len()) + gate.extra_latency);
        if self.lossy_drop(&frame) || self.chaos_drop(&gate, &frame) {
            return Err(SimError::FrameLost {
                dst: match frame.dst {
                    Addr::Unicast(n) => n,
                    Addr::Broadcast => frame.src,
                },
                at: sim.now(),
            });
        }
        // At-least-once: a duplicated frame arrives a second time,
        // after its own independent reorder slip.
        if self.chaos_duplicate(&gate) {
            self.deliver_slipped(&frame, self.chaos_slip(&gate));
        }
        // Out-of-order: a slipped frame leaves the sender now but lands
        // in the destination's future; frames sent after it may arrive
        // first. Delivery errors on the deferred path are dropped —
        // exactly how a late datagram to a vanished node behaves.
        let slip = self.chaos_slip(&gate);
        if !slip.is_zero() {
            self.deliver_slipped(&frame, slip);
            return Ok(());
        }
        self.deliver(&frame)
    }

    /// Delivers `frame` after `slip` of extra delay (immediately when
    /// `slip` is zero), swallowing delivery errors on the deferred path.
    fn deliver_slipped(&self, frame: &Frame, slip: SimDuration) {
        if slip.is_zero() {
            let _ = self.deliver(frame);
        } else {
            let net = self.clone();
            let frame = frame.clone();
            self.inner.sim.schedule_in(slip, move |_| {
                let _ = net.deliver(&frame);
            });
        }
    }

    /// Synchronous request/response: transfers the request to `dst`,
    /// invokes its request handler inline, transfers the response back,
    /// and returns the response payload.
    ///
    /// The clock advances by both transfer times plus whatever the handler
    /// itself charges.
    pub fn request(
        &self,
        src: NodeId,
        dst: NodeId,
        protocol: Protocol,
        payload: impl Into<Bytes>,
    ) -> SimResult<Bytes> {
        self.check_up()?;
        let payload = payload.into();
        if !self.inner.link.fits(payload.len()) && self.inner.link.mtu < usize::MAX {
            // Request/response runs over a stream abstraction (TCP-like):
            // fragment rather than reject.
        }
        let sim = self.inner.sim.clone();
        let frame = Frame::new(src, dst, protocol, payload);

        // Request leg. The chaos gate runs before any clock advance:
        // these failures guarantee the request never reached `dst`.
        let gate = self.chaos_gate(src, Some(dst))?;
        sim.advance(
            self.inner.link.fragmented_transfer_time(frame.len())
                + gate.extra_latency
                + self.chaos_slip(&gate),
        );
        if self.lossy_drop(&frame) || self.chaos_drop(&gate, &frame) {
            return Err(SimError::FrameLost { dst, at: sim.now() });
        }
        self.record_delivered(&frame);

        let handler = {
            let nodes = self.inner.nodes.lock();
            let port = nodes.get(&dst).ok_or(SimError::UnknownNode(dst))?;
            port.request_handler
                .as_ref()
                .ok_or(SimError::NoHandler(dst))?
                .clone()
        };
        let response = {
            let mut h = handler.lock();
            (h)(&sim, &frame).map_err(SimError::Refused)?
        };
        // At-least-once on the request leg: a duplicated request
        // re-invokes the handler — the side effect happens *twice*
        // unless the receiver deduplicates. The duplicate's response is
        // discarded (the caller only matches the first).
        if self.chaos_duplicate(&gate) {
            self.record_delivered(&frame);
            let mut h = handler.lock();
            let _ = (h)(&sim, &frame);
        }

        // Response leg. The handler has already run, so every failure
        // from here on must read as a *response* loss — ambiguous to
        // the caller ([`SimError::before_delivery`] returns false) —
        // including a partition or crash whose window opened while the
        // handler was executing.
        let resp_frame = Frame::new(dst, src, protocol, response.clone());
        let resp_gate = match self.chaos_gate(dst, Some(src)) {
            Ok(gate) => gate,
            Err(_) => {
                return Err(SimError::FrameLost {
                    dst: src,
                    at: sim.now(),
                })
            }
        };
        sim.advance(
            self.inner.link.fragmented_transfer_time(resp_frame.len())
                + resp_gate.extra_latency
                + self.chaos_slip(&resp_gate),
        );
        if self.lossy_drop(&resp_frame) || self.chaos_drop(&resp_gate, &resp_frame) {
            return Err(SimError::FrameLost {
                dst: src,
                at: sim.now(),
            });
        }
        self.record_delivered(&resp_frame);
        Ok(response)
    }

    /// Delivers a frame that already paid its transfer cost elsewhere —
    /// the commit half of a cross-island send. The parallel executor
    /// charges latency on the *sending* island's clock, buffers the
    /// frame, and injects it here on the destination island at the
    /// scheduled delivery time; no further clock advance or loss draw
    /// happens (the send side already drew against its own RNG stream,
    /// keeping outcomes independent of the island partitioning).
    pub fn inject(&self, frame: &Frame) -> SimResult<()> {
        self.check_up()?;
        self.deliver(frame)
    }

    fn check_up(&self) -> SimResult<()> {
        if self.is_down() {
            Err(SimError::NetworkDown(self.inner.name.clone()))
        } else {
            Ok(())
        }
    }

    fn lossy_drop(&self, frame: &Frame) -> bool {
        let p = self.inner.link.loss_prob;
        if p > 0.0 && self.inner.sim.chance(p) {
            self.inner.stats.lock().record_lost(frame.protocol);
            true
        } else {
            false
        }
    }

    fn record_delivered(&self, frame: &Frame) {
        self.inner
            .stats
            .lock()
            .record_delivered(frame.protocol, frame.len());
    }

    fn deliver(&self, frame: &Frame) -> SimResult<()> {
        // Collect destinations first so handler invocation happens without
        // holding the node-table lock (handlers may send on this network).
        type Target = (
            NodeId,
            Option<Arc<Mutex<FrameHandler>>>,
            Arc<Mutex<VecDeque<Frame>>>,
        );
        let targets: Vec<Target> = {
            let nodes = self.inner.nodes.lock();
            match frame.dst {
                Addr::Unicast(dst) => {
                    let port = nodes.get(&dst).ok_or(SimError::UnknownNode(dst))?;
                    vec![(dst, port.frame_handler.clone(), port.inbox.clone())]
                }
                Addr::Broadcast => {
                    let mut v: Vec<_> = nodes
                        .iter()
                        .filter(|(id, _)| frame.dst.matches(**id, frame.src))
                        .map(|(id, p)| (*id, p.frame_handler.clone(), p.inbox.clone()))
                        .collect();
                    v.sort_by_key(|(id, _, _)| *id);
                    v
                }
            }
        };
        for (_, handler, inbox) in targets {
            self.record_delivered(frame);
            match handler {
                Some(h) => (h.lock())(&self.inner.sim, frame),
                None => inbox.lock().push_back(frame.clone()),
            }
        }
        Ok(())
    }

    // ---- statistics -----------------------------------------------------

    /// Runs `f` with the network's traffic statistics.
    pub fn with_stats<T>(&self, f: impl FnOnce(&mut NetStats) -> T) -> T {
        f(&mut self.inner.stats.lock())
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("name", &self.inner.name)
            .field("nodes", &self.node_count())
            .field("down", &self.is_down())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn fast_net(sim: &Sim) -> Network {
        Network::new(
            sim,
            "test",
            LinkModel {
                latency: SimDuration::from_micros(100),
                bandwidth_bps: 8_000_000,
                per_frame_overhead: 0,
                mtu: 1500,
                loss_prob: 0.0,
            },
        )
    }

    #[test]
    fn send_to_inbox_advances_clock() {
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        net.send(Frame::new(a, b, Protocol::Raw, vec![0u8; 800]))
            .unwrap();
        // 800 bytes at 1 B/us + 100us latency = 900us.
        assert_eq!(sim.now().as_micros(), 900);
        let got = net.recv(b).unwrap();
        assert_eq!(got.len(), 800);
        assert!(net.recv(b).is_none());
    }

    #[test]
    fn frame_handler_sees_frames_inline() {
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        net.set_frame_handler(b, move |_, f| seen2.lock().push(f.len()))
            .unwrap();
        net.send(Frame::new(a, b, Protocol::Raw, vec![1, 2, 3]))
            .unwrap();
        assert_eq!(*seen.lock(), vec![3]);
        assert!(net.recv(b).is_none(), "handled frames bypass the inbox");
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let _b = net.attach("b");
        let _c = net.attach("c");
        net.send(Frame::new(a, Addr::Broadcast, Protocol::X10, vec![9]))
            .unwrap();
        let ids: Vec<u32> = net
            .nodes()
            .iter()
            .filter(|n| net.recv(**n).is_some())
            .map(|n| n.0)
            .collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn request_round_trip_charges_both_legs() {
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let client = net.attach("client");
        let server = net.attach("server");
        net.set_request_handler(server, |sim, f| {
            sim.advance(SimDuration::from_micros(50)); // processing
            Ok(Bytes::from(vec![0u8; f.len() * 2]))
        })
        .unwrap();
        let resp = net
            .request(client, server, Protocol::Http, vec![0u8; 100])
            .unwrap();
        assert_eq!(resp.len(), 200);
        // req: 100us lat + 100us tx; proc: 50; resp: 100us lat + 200us tx.
        assert_eq!(sim.now().as_micros(), 550);
    }

    #[test]
    fn request_to_handlerless_node_fails() {
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        assert_eq!(
            net.request(a, b, Protocol::Raw, vec![1]),
            Err(SimError::NoHandler(b))
        );
        assert!(matches!(
            net.request(a, NodeId(99), Protocol::Raw, vec![1]),
            Err(SimError::UnknownNode(NodeId(99)))
        ));
    }

    #[test]
    fn handler_refusal_propagates() {
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_request_handler(b, |_, _| Err("busy".into()))
            .unwrap();
        assert_eq!(
            net.request(a, b, Protocol::Raw, vec![1]),
            Err(SimError::Refused("busy".into()))
        );
    }

    #[test]
    fn oversized_one_way_frame_rejected() {
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        let err = net
            .send(Frame::new(a, b, Protocol::Raw, vec![0u8; 2000]))
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::FrameTooLarge {
                size: 2000,
                mtu: 1500
            }
        ));
    }

    #[test]
    fn oversized_request_fragments_instead() {
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_request_handler(b, |_, _| Ok(Bytes::new())).unwrap();
        // 3000 bytes over MTU 1500 fragments fine (TCP-like stream).
        net.request(a, b, Protocol::Http, vec![0u8; 3000]).unwrap();
    }

    #[test]
    fn down_network_refuses_traffic() {
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_down(true);
        assert!(matches!(
            net.send(Frame::new(a, b, Protocol::Raw, vec![1])),
            Err(SimError::NetworkDown(_))
        ));
        net.set_down(false);
        net.send(Frame::new(a, b, Protocol::Raw, vec![1])).unwrap();
    }

    #[test]
    fn lossy_link_drops_statistically() {
        let sim = Sim::new(42);
        let net = Network::new(
            &sim,
            "lossy",
            LinkModel {
                loss_prob: 0.5,
                ..LinkModel::ideal()
            },
        );
        let a = net.attach("a");
        let b = net.attach("b");
        let mut lost = 0;
        for _ in 0..200 {
            if net.send(Frame::new(a, b, Protocol::X10, vec![1])).is_err() {
                lost += 1;
            }
        }
        assert!((60..140).contains(&lost), "lost {lost} of 200");
        assert_eq!(net.with_stats(|s| s.protocol(Protocol::X10).lost), lost);
    }

    #[test]
    fn handler_may_send_on_same_network() {
        // Regression guard for lock ordering: a request handler that
        // itself performs a nested request must not deadlock.
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let client = net.attach("client");
        let front = net.attach("front");
        let back = net.attach("back");
        net.set_request_handler(back, |_, _| Ok(Bytes::from_static(b"deep")))
            .unwrap();
        let net2 = net.clone();
        net.set_request_handler(front, move |_, f| {
            net2.request(
                f.dst_node().unwrap(),
                back,
                Protocol::Raw,
                f.payload.clone(),
            )
            .map_err(|e| e.to_string())
        })
        .unwrap();
        let resp = net.request(client, front, Protocol::Raw, vec![1]).unwrap();
        assert_eq!(&resp[..], b"deep");
    }

    #[test]
    fn fault_plan_crashes_partitions_and_heals_on_schedule() {
        use crate::chaos::FaultPlan;
        use crate::time::SimTime;
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        let c = net.attach("c");
        net.set_request_handler(b, |_, _| Ok(Bytes::from_static(b"ok")))
            .unwrap();
        net.set_request_handler(c, |_, _| Ok(Bytes::from_static(b"ok")))
            .unwrap();
        net.set_fault_plan(
            FaultPlan::new()
                .node_down(c, SimTime::ZERO, SimTime::from_micros(10_000))
                .partition(
                    vec![a],
                    vec![b],
                    SimTime::from_micros(5_000),
                    SimTime::from_micros(20_000),
                ),
        );
        // c is crashed, b still reachable (partition not yet open).
        assert_eq!(
            net.request(a, c, Protocol::Raw, vec![1]),
            Err(SimError::NodeDown(c))
        );
        net.request(a, b, Protocol::Raw, vec![1]).unwrap();
        // Enter the partition window: a↔b blocked before any time is
        // charged, both directions.
        sim.advance(SimDuration::from_micros(5_000) - (sim.now() - SimTime::ZERO));
        let before = sim.now();
        assert_eq!(
            net.request(a, b, Protocol::Raw, vec![1]),
            Err(SimError::Partitioned { src: a, dst: b })
        );
        assert_eq!(sim.now(), before, "partition rejects without delay");
        // A crashed node cannot send either.
        assert_eq!(
            net.request(c, b, Protocol::Raw, vec![1]),
            Err(SimError::NodeDown(c))
        );
        // Run past every window: all healed.
        sim.advance(SimDuration::from_micros(20_000));
        net.request(a, b, Protocol::Raw, vec![1]).unwrap();
        net.request(a, c, Protocol::Raw, vec![1]).unwrap();
        net.clear_fault_plan();
        assert!(net.fault_plan().is_none());
    }

    #[test]
    fn loss_and_latency_spikes_shape_traffic_during_their_window() {
        use crate::chaos::FaultPlan;
        use crate::time::SimTime;
        let sim = Sim::new(42);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_fault_plan(
            FaultPlan::new()
                .latency_spike(
                    SimTime::ZERO,
                    SimTime::from_micros(u64::MAX / 2),
                    SimDuration::from_micros(700),
                )
                .loss_spike(SimTime::ZERO, SimTime::from_micros(u64::MAX / 2), 0.5),
        );
        let mut lost = 0;
        for _ in 0..100 {
            let before = sim.now();
            let r = net.send(Frame::new(a, b, Protocol::Raw, vec![0u8; 100]));
            // 100B at 1B/us + 100us latency + 700us spike = 900us.
            assert_eq!((sim.now() - before).as_micros(), 900);
            if r.is_err() {
                lost += 1;
            }
        }
        assert!((25..75).contains(&lost), "lost {lost} of 100");
    }

    #[test]
    fn mid_call_partition_reads_as_a_lost_response() {
        use crate::chaos::FaultPlan;
        use crate::time::SimTime;
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        // The handler burns enough virtual time that the partition
        // window opens while it runs: the request was delivered and
        // executed, so the caller must see an *ambiguous* failure.
        net.set_request_handler(b, |sim, _| {
            sim.advance(SimDuration::from_micros(50_000));
            Ok(Bytes::from_static(b"done"))
        })
        .unwrap();
        net.set_fault_plan(FaultPlan::new().partition(
            vec![a],
            vec![b],
            SimTime::from_micros(10_000),
            SimTime::from_micros(100_000),
        ));
        let err = net.request(a, b, Protocol::Raw, vec![1]).unwrap_err();
        assert_eq!(
            err,
            SimError::FrameLost {
                dst: a,
                at: sim.now()
            }
        );
        assert!(!err.before_delivery(a), "must read as ambiguous");
    }

    #[test]
    fn duplicate_window_reinvokes_request_handler() {
        use crate::chaos::FaultPlan;
        use crate::time::SimTime;
        let sim = Sim::new(42);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        let hits = Arc::new(Mutex::new(0u32));
        let hits2 = hits.clone();
        net.set_request_handler(b, move |_, _| {
            *hits2.lock() += 1;
            Ok(Bytes::from_static(b"ok"))
        })
        .unwrap();
        net.set_fault_plan(FaultPlan::new().duplicate_spike(
            SimTime::ZERO,
            SimTime::from_micros(u64::MAX / 2),
            1.0,
        ));
        for _ in 0..5 {
            net.request(a, b, Protocol::Raw, vec![1]).unwrap();
        }
        assert_eq!(
            *hits.lock(),
            10,
            "prob-1.0 duplicates run the handler twice per request"
        );
    }

    #[test]
    fn duplicate_window_doubles_one_way_frames() {
        use crate::chaos::FaultPlan;
        use crate::time::SimTime;
        let sim = Sim::new(42);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_fault_plan(FaultPlan::new().duplicate_spike(
            SimTime::ZERO,
            SimTime::from_micros(u64::MAX / 2),
            1.0,
        ));
        net.send(Frame::new(a, b, Protocol::Raw, vec![7])).unwrap();
        assert!(net.recv(b).is_some());
        assert!(net.recv(b).is_some(), "the duplicate also lands");
        assert!(net.recv(b).is_none());
    }

    #[test]
    fn reorder_window_transposes_one_way_frames() {
        use crate::chaos::FaultPlan;
        use crate::time::SimTime;
        // With a reorder window much wider than the inter-send gap,
        // some seed reorders two back-to-back frames; the slip is a
        // deterministic function of the seed.
        let sim = Sim::new(7);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_fault_plan(FaultPlan::new().reorder_spike(
            SimTime::ZERO,
            SimTime::from_micros(u64::MAX / 2),
            SimDuration::from_micros(50_000),
        ));
        let mut arrivals = Vec::new();
        for i in 0..8u8 {
            net.send(Frame::new(a, b, Protocol::Raw, vec![i])).unwrap();
        }
        sim.run_for(SimDuration::from_micros(100_000));
        while let Some(f) = net.recv(b) {
            arrivals.push(f.payload[0]);
        }
        assert_eq!(arrivals.len(), 8, "reorder never loses frames");
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<u8>>());
        assert_ne!(
            arrivals, sorted,
            "a 50ms window over back-to-back sends transposes some pair"
        );
    }

    #[test]
    fn quiet_duplicate_reorder_plan_leaves_traffic_untouched() {
        use crate::chaos::FaultPlan;
        use crate::time::SimTime;
        // Windows scheduled in the far future must not perturb either
        // the clock or the RNG stream (baseline determinism).
        let run = |plan: Option<FaultPlan>| {
            let sim = Sim::new(9);
            let net = fast_net(&sim);
            let a = net.attach("a");
            let b = net.attach("b");
            net.set_request_handler(b, |_, f| Ok(f.payload.clone()))
                .unwrap();
            if let Some(p) = plan {
                net.set_fault_plan(p);
            }
            for _ in 0..4 {
                net.request(a, b, Protocol::Raw, vec![3]).unwrap();
            }
            sim.now()
        };
        let base = run(None);
        let quiet = run(Some(
            FaultPlan::new()
                .duplicate_spike(
                    SimTime::from_micros(u64::MAX / 4),
                    SimTime::from_micros(u64::MAX / 2),
                    1.0,
                )
                .reorder_spike(
                    SimTime::from_micros(u64::MAX / 4),
                    SimTime::from_micros(u64::MAX / 2),
                    SimDuration::from_micros(10_000),
                ),
        ));
        assert_eq!(base, quiet);
    }

    #[test]
    fn detach_makes_node_unknown() {
        let sim = Sim::new(1);
        let net = fast_net(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        net.detach(b);
        assert!(matches!(
            net.send(Frame::new(a, b, Protocol::Raw, vec![1])),
            Err(SimError::UnknownNode(_))
        ));
        assert_eq!(net.node_count(), 1);
        assert_eq!(net.label(a).as_deref(), Some("a"));
        assert_eq!(net.label(b), None);
    }
}
