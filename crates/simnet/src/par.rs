//! Conservative parallel discrete-event execution over island worlds.
//!
//! A [`ParSim`] holds a set of *islands* — independent [`Sim`] worlds,
//! each with its own clock, event queue and RNG stream — plus the
//! declared *couplings* between them (the cross-island links, each with
//! a minimum latency). It executes them under the classic conservative
//! (Chandy–Misra style) discipline:
//!
//! 1. **Lookahead.** The minimum latency over all couplings is the
//!    lookahead `L`: a cross-island message sent at time `t` cannot be
//!    delivered before `t + L`.
//! 2. **Windows.** Each round picks `t_min`, the earliest pending event
//!    across all islands, and fires every event in the half-open window
//!    `[t_min, t_min + L)` — islands are mutually invisible inside a
//!    window, so every island whose next event falls inside it can run
//!    on a worker thread concurrently.
//! 3. **Deterministic merge.** Cross-island sends made during a window
//!    go to a shared outbox via a [`Courier`]; at the window barrier the
//!    outbox is sorted by `(deliver_time, source_island, sequence)` and
//!    committed to the destination queues in that order. The sort key is
//!    a pure function of simulation state, so `SIM_THREADS=1` and
//!    `SIM_THREADS=N` produce bit-for-bit identical traces, metrics and
//!    chaos outcomes.
//!
//! Islands with no coupling at all (the "fleet of independent homes"
//! shape) form singleton components; with no couplings the lookahead is
//! infinite and each round is one window to the deadline — maximum
//! parallelism with zero synchronisation beyond the final barrier.
//!
//! Components over the coupling graph are tracked incrementally with a
//! union-find as couplings are declared, so diagnostics (and the bench
//! metadata) can report how much parallel slack a topology actually
//! has.

use crate::sim::Sim;
use crate::time::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One buffered cross-island action awaiting its window barrier.
struct CrossSend {
    deliver_at: SimTime,
    src_island: u32,
    seq: u64,
    dst: usize,
    f: Box<dyn FnOnce(&Sim) + Send>,
}

/// State shared between the executor and its [`Courier`]s.
struct ParShared {
    outbox: Mutex<Vec<CrossSend>>,
    /// Minimum latency over all couplings; `None` while uncoupled
    /// (infinite lookahead).
    lookahead: Mutex<Option<SimDuration>>,
    cross_sends: AtomicU64,
}

/// Statistics for one [`ParSim::run_until`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParRunStats {
    /// Lookahead windows executed (barriers passed).
    pub windows: u64,
    /// Events fired across all islands.
    pub events: u64,
    /// Cross-island sends committed.
    pub cross_sends: u64,
}

/// Per-island execution profile, accumulated over the executor's
/// lifetime.
///
/// `windows`, `events` and `commits` are pure functions of simulation
/// state — identical for any thread count — and safe to print in
/// determinism-diffed output. `busy_ns` and `barrier_wait_ns` are
/// wall-clock attribution (how long the island's windows ran, and how
/// long it sat finished while the window barrier waited on slower
/// islands); they vary run to run and must stay out of diffed output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IslandProfile {
    /// Windows this island was runnable in.
    pub windows: u64,
    /// Events the island fired.
    pub events: u64,
    /// Cross-island sends committed *to* this island.
    pub commits: u64,
    /// Wall time spent executing the island's windows.
    pub busy_ns: u64,
    /// Wall time between finishing a window and the window's barrier
    /// releasing (zero when dispatched sequentially).
    pub barrier_wait_ns: u64,
}

impl IslandProfile {
    /// The deterministic fields as a stable one-line summary, safe for
    /// thread-count-diffed output.
    pub fn deterministic_line(&self, island: usize) -> String {
        format!(
            "island {island}: windows={} events={} commits={}",
            self.windows, self.events, self.commits
        )
    }
}

/// A conservative parallel executor over a set of island [`Sim`]s.
pub struct ParSim {
    islands: Vec<Sim>,
    /// Per-island sequence wells for outbox ordering.
    send_seq: Vec<Arc<AtomicU64>>,
    /// Union-find parent per island over the coupling graph.
    parent: Vec<usize>,
    shared: Arc<ParShared>,
    /// Per-island execution profiles (see [`IslandProfile`]).
    profiles: Arc<Mutex<Vec<IslandProfile>>>,
    /// Wall time spent sorting and committing the outbox at barriers.
    commit_ns: AtomicU64,
    threads: usize,
    #[cfg(feature = "parallel")]
    pool: Option<rayon::ThreadPool>,
}

impl ParSim {
    /// Creates an executor that dispatches runnable islands onto
    /// `threads` workers (1 = fully sequential, which is also the
    /// fallback when the `parallel` feature is disabled).
    pub fn new(threads: usize) -> ParSim {
        let threads = threads.max(1);
        ParSim {
            islands: Vec::new(),
            send_seq: Vec::new(),
            parent: Vec::new(),
            shared: Arc::new(ParShared {
                outbox: Mutex::new(Vec::new()),
                lookahead: Mutex::new(None),
                cross_sends: AtomicU64::new(0),
            }),
            profiles: Arc::new(Mutex::new(Vec::new())),
            commit_ns: AtomicU64::new(0),
            threads,
            #[cfg(feature = "parallel")]
            pool: if threads > 1 {
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .ok()
            } else {
                None
            },
        }
    }

    /// Adds an island world, returning its index. Use
    /// [`Sim::with_island`] so each island draws a decorrelated RNG
    /// stream.
    pub fn add_island(&mut self, sim: Sim) -> usize {
        let index = self.islands.len();
        self.islands.push(sim);
        self.send_seq.push(Arc::new(AtomicU64::new(0)));
        self.parent.push(index);
        self.profiles.lock().push(IslandProfile::default());
        index
    }

    /// Declares a coupling (cross-island link) between islands `a` and
    /// `b` whose one-way latency is at least `latency`. Tightens the
    /// global lookahead and merges the two islands' components.
    pub fn couple(&mut self, a: usize, b: usize, latency: SimDuration) {
        assert!(a < self.islands.len() && b < self.islands.len());
        assert!(
            !latency.is_zero(),
            "cross-island links need positive latency (zero lookahead \
             would serialise every window)"
        );
        let mut lookahead = self.shared.lookahead.lock();
        *lookahead = Some(match *lookahead {
            Some(l) => l.min(latency),
            None => latency,
        });
        drop(lookahead);
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    /// The current global lookahead (`None` = no couplings, infinite).
    pub fn lookahead(&self) -> Option<SimDuration> {
        *self.shared.lookahead.lock()
    }

    /// The island worlds, in index order.
    pub fn islands(&self) -> &[Sim] {
        &self.islands
    }

    /// Number of islands.
    pub fn island_count(&self) -> usize {
        self.islands.len()
    }

    /// Worker threads this executor dispatches onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of connected components over the coupling graph — the
    /// upper bound on zero-synchronisation parallelism.
    pub fn component_count(&mut self) -> usize {
        (0..self.islands.len())
            .filter(|&i| self.find(i) == i)
            .count()
    }

    /// Creates the cross-island send handle for island `src`.
    pub fn courier(&self, src: usize) -> Courier {
        assert!(src < self.islands.len());
        Courier {
            src: self.islands[src].clone(),
            src_island: src as u32,
            seq: self.send_seq[src].clone(),
            shared: self.shared.clone(),
        }
    }

    /// Commits buffered cross-island sends in `(deliver_time,
    /// source_island, sequence)` order — a total order that is a pure
    /// function of simulation state, independent of worker scheduling.
    fn commit_outbox(&self) -> u64 {
        let mut pending = {
            let mut outbox = self.shared.outbox.lock();
            std::mem::take(&mut *outbox)
        };
        if pending.is_empty() {
            return 0;
        }
        let started = std::time::Instant::now();
        let committed = pending.len() as u64;
        pending.sort_by_key(|c| (c.deliver_at, c.src_island, c.seq));
        {
            let mut profiles = self.profiles.lock();
            for send in &pending {
                profiles[send.dst].commits += 1;
            }
        }
        for send in pending {
            let f = send.f;
            self.islands[send.dst].schedule_at(send.deliver_at, move |sim| f(sim));
        }
        self.commit_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        committed
    }

    /// The earliest pending event time across all islands.
    fn next_event_at(&self) -> Option<SimTime> {
        self.islands.iter().filter_map(|s| s.next_timer_at()).min()
    }

    /// Runs every island up to and including `deadline`, firing events
    /// in lookahead windows and leaving all island clocks on
    /// `deadline`. Equivalent to calling `run_until(deadline)` on each
    /// island in turn when there are no couplings and one thread.
    pub fn run_until(&self, deadline: SimTime) -> ParRunStats {
        let mut stats = ParRunStats::default();
        let deadline_bound = SimTime::from_micros(deadline.as_micros().saturating_add(1));
        loop {
            stats.cross_sends += self.commit_outbox();
            let Some(t_min) = self.next_event_at() else {
                break;
            };
            if t_min > deadline {
                break;
            }
            let bound = match self.lookahead() {
                Some(l) => t_min
                    .checked_add(l)
                    .unwrap_or(SimTime::MAX)
                    .min(deadline_bound),
                None => deadline_bound,
            };
            let runnable: Vec<(usize, Sim)> = self
                .islands
                .iter()
                .enumerate()
                .filter(|(_, s)| s.next_timer_at().is_some_and(|t| t < bound))
                .map(|(i, s)| (i, s.clone()))
                .collect();
            stats.events += self.dispatch(runnable, bound);
            stats.windows += 1;
        }
        stats.cross_sends += self.commit_outbox();
        for island in &self.islands {
            island.run_until(deadline);
        }
        stats
    }

    /// Runs for `d` past the latest island clock.
    pub fn run_for(&self, d: SimDuration) -> ParRunStats {
        let now = self
            .islands
            .iter()
            .map(|s| s.now())
            .max()
            .unwrap_or(SimTime::ZERO);
        self.run_until(now + d)
    }

    /// Fires one window on every runnable island, in parallel when a
    /// pool is available. Within a window islands share no state except
    /// the outbox (merged deterministically afterwards), so dispatch
    /// order cannot influence results.
    fn dispatch(&self, runnable: Vec<(usize, Sim)>, bound: SimTime) -> u64 {
        #[cfg(feature = "parallel")]
        if runnable.len() > 1 {
            if let Some(pool) = &self.pool {
                let window_started = std::time::Instant::now();
                // (island, events fired, busy ns) per finished window;
                // the shim's spawn needs 'static, hence the Arc.
                let done: Arc<Mutex<Vec<(usize, u64, u64)>>> =
                    Arc::new(Mutex::new(Vec::with_capacity(runnable.len())));
                pool.scope(|s| {
                    for (idx, sim) in runnable {
                        let done = done.clone();
                        s.spawn(move || {
                            let started = std::time::Instant::now();
                            let fired = sim.run_window(bound) as u64;
                            let busy = started.elapsed().as_nanos() as u64;
                            done.lock().push((idx, fired, busy));
                        });
                    }
                });
                let window_ns = window_started.elapsed().as_nanos() as u64;
                let done = Arc::try_unwrap(done)
                    .map(Mutex::into_inner)
                    .unwrap_or_default();
                let mut total = 0;
                let mut profiles = self.profiles.lock();
                for (idx, fired, busy_ns) in done {
                    total += fired;
                    let p = &mut profiles[idx];
                    p.windows += 1;
                    p.events += fired;
                    p.busy_ns += busy_ns;
                    p.barrier_wait_ns += window_ns.saturating_sub(busy_ns);
                }
                return total;
            }
        }
        let mut total = 0;
        let mut profiles = self.profiles.lock();
        for (idx, sim) in &runnable {
            let started = std::time::Instant::now();
            let fired = sim.run_window(bound) as u64;
            total += fired;
            let p = &mut profiles[*idx];
            p.windows += 1;
            p.events += fired;
            p.busy_ns += started.elapsed().as_nanos() as u64;
        }
        total
    }

    /// Total cross-island sends committed over this executor's
    /// lifetime.
    pub fn total_cross_sends(&self) -> u64 {
        self.shared.cross_sends.load(Ordering::Relaxed)
    }

    /// Per-island execution profiles accumulated so far, in island
    /// order. The `windows`/`events`/`commits` fields are identical
    /// for any thread count; the `*_ns` fields are wall clock.
    pub fn profiles(&self) -> Vec<IslandProfile> {
        self.profiles.lock().clone()
    }

    /// Wall time spent sorting and committing the cross-island outbox
    /// at window barriers.
    pub fn commit_wall_ns(&self) -> u64 {
        self.commit_ns.load(Ordering::Relaxed)
    }

    /// Profiles as one JSON array, deterministic fields first. The
    /// wall-clock fields are included; callers diffing across thread
    /// counts should print [`IslandProfile::deterministic_line`]
    /// instead.
    pub fn profile_json(&self) -> String {
        let profiles = self.profiles.lock();
        let mut out = String::from("[");
        for (i, p) in profiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"island\":{i},\"windows\":{},\"events\":{},\"commits\":{},\
                 \"busy_ns\":{},\"barrier_wait_ns\":{}}}",
                p.windows, p.events, p.commits, p.busy_ns, p.barrier_wait_ns
            ));
        }
        out.push(']');
        out
    }
}

impl std::fmt::Debug for ParSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParSim")
            .field("islands", &self.islands.len())
            .field("threads", &self.threads)
            .field("lookahead", &self.lookahead())
            .finish()
    }
}

/// The cross-island send handle for one source island.
///
/// Sends are buffered in the executor's outbox and committed at the
/// next window barrier; the delivery delay must be at least the global
/// lookahead, which the coupling latencies guarantee for any message
/// that actually traverses a declared link.
#[derive(Clone)]
pub struct Courier {
    src: Sim,
    src_island: u32,
    seq: Arc<AtomicU64>,
    shared: Arc<ParShared>,
}

impl Courier {
    /// Buffers `f` to run on island `dst` at `delay` past the source
    /// island's current time. Panics if `delay` undercuts the
    /// lookahead — that would let a message land in a window the
    /// destination may already have executed.
    pub fn send(&self, dst: usize, delay: SimDuration, f: impl FnOnce(&Sim) + Send + 'static) {
        if let Some(lookahead) = *self.shared.lookahead.lock() {
            assert!(
                delay >= lookahead,
                "cross-island delay {delay} undercuts lookahead {lookahead}"
            );
        }
        let deliver_at = self.src.now() + delay;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.shared.cross_sends.fetch_add(1, Ordering::Relaxed);
        self.shared.outbox.lock().push(CrossSend {
            deliver_at,
            src_island: self.src_island,
            seq,
            dst,
            f: Box::new(f),
        });
    }

    /// The source island's current virtual time.
    pub fn now(&self) -> SimTime {
        self.src.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn fleet(n: usize, threads: usize) -> ParSim {
        let mut par = ParSim::new(threads);
        for i in 0..n {
            par.add_island(Sim::with_island(42, i as u32));
        }
        par
    }

    #[test]
    fn uncoupled_islands_run_to_deadline_in_one_window() {
        let mut par = fleet(3, 1);
        let count = Arc::new(AtomicU64::new(0));
        for island in par.islands() {
            let count = count.clone();
            island.every(SimDuration::from_millis(10), move |_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        let stats = par.run_until(SimTime::from_micros(100_000));
        assert_eq!(count.load(Ordering::SeqCst), 30);
        assert_eq!(stats.windows, 1, "infinite lookahead = one window");
        assert_eq!(stats.events, 30);
        assert_eq!(par.component_count(), 3);
        for island in par.islands() {
            assert_eq!(island.now(), SimTime::from_micros(100_000));
        }
    }

    #[test]
    fn coupling_merges_components_and_sets_lookahead() {
        let mut par = fleet(4, 1);
        par.couple(0, 1, SimDuration::from_millis(5));
        par.couple(1, 2, SimDuration::from_millis(2));
        assert_eq!(par.component_count(), 2);
        assert_eq!(par.lookahead(), Some(SimDuration::from_millis(2)));
    }

    #[test]
    fn cross_island_sends_commit_in_deterministic_order() {
        let run = |threads: usize| -> Vec<(u64, String)> {
            let mut par = fleet(3, threads);
            par.couple(0, 2, SimDuration::from_millis(1));
            par.couple(1, 2, SimDuration::from_millis(1));
            let log = Arc::new(Mutex::new(Vec::new()));
            // Islands 0 and 1 both message island 2 with identical
            // delivery times; the merge must order them by island id.
            for src in [1usize, 0] {
                let courier = par.courier(src);
                let log = log.clone();
                par.islands()[src].schedule_in(SimDuration::from_millis(3), move |_| {
                    let log = log.clone();
                    let tag = format!("from-{src}");
                    courier.send(2, SimDuration::from_millis(1), move |sim| {
                        log.lock().push((sim.now().as_micros(), tag));
                    });
                });
            }
            let stats = par.run_until(SimTime::from_micros(10_000));
            assert_eq!(stats.cross_sends, 2);
            let out = log.lock().clone();
            out
        };
        let seq = run(1);
        assert_eq!(
            seq,
            vec![(4_000, "from-0".into()), (4_000, "from-1".into())]
        );
        assert_eq!(run(4), seq, "thread count must not reorder the merge");
    }

    #[test]
    fn windows_respect_lookahead() {
        let mut par = fleet(2, 1);
        par.couple(0, 1, SimDuration::from_millis(1));
        let courier = par.courier(0);
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = hits.clone();
        // A ping-pong chain: each delivery schedules the next.
        fn ping(courier: Courier, hits: Arc<AtomicU64>, n: u64) {
            if n == 0 {
                return;
            }
            courier.send(1, SimDuration::from_millis(1), move |_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        par.islands()[0].schedule_in(SimDuration::from_millis(1), move |_| {
            ping(courier, hits2, 1);
        });
        let stats = par.run_until(SimTime::from_micros(10_000));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(stats.windows >= 2, "coupled islands need multiple windows");
    }

    #[test]
    fn parallel_and_sequential_fire_identical_event_counts() {
        let run = |threads: usize| {
            let par = fleet(8, threads);
            let count = Arc::new(AtomicU64::new(0));
            for island in par.islands() {
                let count = count.clone();
                island.every(SimDuration::from_micros(700), move |sim| {
                    // Burn RNG so stream divergence would be visible.
                    let _ = sim.with_rng(|r| r.range(0, 1_000));
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
            let stats = par.run_until(SimTime::from_micros(70_000));
            (stats.events, count.load(Ordering::SeqCst))
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn profile_deterministic_fields_are_thread_invariant() {
        let run = |threads: usize| {
            let mut par = fleet(3, threads);
            par.couple(0, 2, SimDuration::from_millis(1));
            let courier = par.courier(0);
            for island in par.islands() {
                island.every(SimDuration::from_millis(10), |_| {});
            }
            par.islands()[0].schedule_in(SimDuration::from_millis(5), move |_| {
                courier.send(2, SimDuration::from_millis(1), |_| {});
            });
            par.run_until(SimTime::from_micros(100_000));
            par.profiles()
                .iter()
                .enumerate()
                .map(|(i, p)| p.deterministic_line(i))
                .collect::<Vec<_>>()
        };
        let seq = run(1);
        assert_eq!(seq.len(), 3);
        assert!(seq[2].ends_with("commits=1"), "{seq:?}");
        assert_eq!(run(4), seq, "profiler counts must not depend on threads");
    }

    #[test]
    fn profile_json_lists_every_island() {
        let par = fleet(2, 1);
        for island in par.islands() {
            island.every(SimDuration::from_millis(10), |_| {});
        }
        par.run_until(SimTime::from_micros(20_000));
        let json = par.profile_json();
        assert!(json.starts_with("[{\"island\":0,"), "{json}");
        assert!(json.contains("{\"island\":1,"), "{json}");
        assert!(json.contains("\"barrier_wait_ns\":"), "{json}");
    }

    #[test]
    #[should_panic(expected = "undercuts lookahead")]
    fn undercutting_lookahead_panics() {
        let mut par = fleet(2, 1);
        par.couple(0, 1, SimDuration::from_millis(5));
        let courier = par.courier(0);
        courier.send(1, SimDuration::from_millis(1), |_| {});
    }
}
