//! Lightweight event tracing.
//!
//! Traces are kept in a bounded ring buffer so long benchmark runs cannot
//! exhaust memory. The conversion-path experiment (E3) and the examples use
//! traces to print the per-stage transaction breakdown of Figure 4.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Subsystem that emitted it (e.g. `"jini"`, `"vsg"`, `"x10"`).
    pub component: String,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.at, self.component, self.detail)
    }
}

/// A bounded in-memory trace sink.
#[derive(Debug)]
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Tracer {
    /// Creates a tracer holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            events: VecDeque::new(),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// Enables or disables recording (benches disable it to avoid skew).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// True if recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event, evicting the oldest if at capacity.
    pub fn record(&mut self, at: SimTime, component: &str, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            component: component.to_owned(),
            detail: detail.into(),
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events emitted by one component, oldest first.
    pub fn by_component<'a>(&'a self, component: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.component == component)
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears all retained events (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(4_096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_replays_in_order() {
        let mut t = Tracer::with_capacity(10);
        t.record(SimTime::from_micros(1), "a", "first");
        t.record(SimTime::from_micros(2), "b", "second");
        let got: Vec<_> = t.events().map(|e| e.detail.clone()).collect();
        assert_eq!(got, ["first", "second"]);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5u64 {
            t.record(SimTime::from_micros(i), "c", format!("e{i}"));
        }
        let got: Vec<_> = t.events().map(|e| e.detail.clone()).collect();
        assert_eq!(got, ["e3", "e4"]);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::default();
        t.set_enabled(false);
        t.record(SimTime::ZERO, "x", "ignored");
        assert_eq!(t.events().count(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn component_filter() {
        let mut t = Tracer::default();
        t.record(SimTime::ZERO, "vsg", "one");
        t.record(SimTime::ZERO, "jini", "two");
        t.record(SimTime::ZERO, "vsg", "three");
        let got: Vec<_> = t.by_component("vsg").map(|e| e.detail.clone()).collect();
        assert_eq!(got, ["one", "three"]);
    }

    #[test]
    fn display_includes_component() {
        let e = TraceEvent {
            at: SimTime::from_micros(1_000),
            component: "x10".into(),
            detail: "frame sent".into(),
        };
        assert_eq!(e.to_string(), "t+1.000ms [x10] frame sent");
    }
}
