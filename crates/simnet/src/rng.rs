//! Deterministic randomness for the simulation.
//!
//! Every stochastic decision (frame loss, collision backoff, workload
//! generation) draws from one seeded generator owned by the [`crate::sim::Sim`]
//! context, so a run is exactly reproducible from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded pseudo-random source.
#[derive(Debug)]
pub struct SimRng {
    rng: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Derives the generator for island `island` of a partitioned run.
    ///
    /// Island 0 gets exactly the stream `seeded(seed)` would, so
    /// single-island worlds (every run before the parallel executor
    /// existed) replay bit-for-bit against their old baselines. Other
    /// islands mix the island id through a SplitMix64 finalizer so
    /// their streams are decorrelated but still pure functions of
    /// `(seed, island)` — independent of thread count or schedule.
    pub fn for_island(seed: u64, island: u32) -> Self {
        if island == 0 {
            return SimRng::seeded(seed);
        }
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(island)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seeded(z ^ (z >> 31))
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// A uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.rng.gen_range(lo..hi)
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty slice");
        self.rng.gen_range(0..len)
    }
}

impl Default for SimRng {
    /// Seeds with a fixed default so that `Sim::default()` is reproducible.
    fn default() -> Self {
        SimRng::seeded(0x1CDC_2002)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1_000_000), b.range(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let va: Vec<u64> = (0..20).map(|_| a.range(0, 1_000_000)).collect();
        let vb: Vec<u64> = (0..20).map(|_| b.range(0, 1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_edge_cases() {
        let mut r = SimRng::seeded(7);
        assert!(!r.chance(0.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::seeded(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn island_zero_matches_plain_seed() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::for_island(42, 0);
        for _ in 0..50 {
            assert_eq!(a.range(0, 1_000_000), b.range(0, 1_000_000));
        }
    }

    #[test]
    fn island_streams_are_decorrelated_but_reproducible() {
        let va: Vec<u64> = {
            let mut r = SimRng::for_island(42, 3);
            (0..20).map(|_| r.range(0, 1_000_000)).collect()
        };
        let vb: Vec<u64> = {
            let mut r = SimRng::for_island(42, 3);
            (0..20).map(|_| r.range(0, 1_000_000)).collect()
        };
        let vc: Vec<u64> = {
            let mut r = SimRng::for_island(42, 4);
            (0..20).map(|_| r.range(0, 1_000_000)).collect()
        };
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seeded(3);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
