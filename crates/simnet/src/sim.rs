//! The simulation context: virtual clock, timer queue, RNG and tracer.
//!
//! # Execution model
//!
//! The simulator uses a *synchronous call-through* model: a remote
//! invocation is executed as ordinary nested function calls, and each layer
//! charges its cost to the virtual clock with [`Sim::advance`]. Asynchronous
//! behaviour (sensor firings, lease expiry, HTTP polling) is expressed as
//! timers whose callbacks run when the owner pumps the queue with
//! [`Sim::run_until`] / [`Sim::run_for`] / [`Sim::step`].
//!
//! `advance` deliberately does **not** fire timers: time passing *inside* a
//! synchronous call chain must not re-enter other components mid-call. The
//! scenario driver fires timers between top-level interactions instead.
//! This trades a small amount of timing fidelity (a timer due mid-call
//! fires at the end of the call) for a programming model in which a whole
//! middleware bridge is a readable call stack — the same trade the paper's
//! prototype makes by using synchronous SOAP RPC.

use crate::rng::SimRng;
use crate::sched::{EventQueue, TimerId};
use crate::time::{SimDuration, SimTime};
use crate::trace::Tracer;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A cheaply clonable handle to one simulation world.
///
/// All components of a scenario (networks, middleware, the meta-middleware
/// framework) share one `Sim`, giving them a common clock, RNG stream and
/// trace.
#[derive(Clone)]
pub struct Sim {
    inner: Arc<SimInner>,
}

struct SimInner {
    clock: Mutex<SimTime>,
    queue: Mutex<EventQueue>,
    rng: Mutex<SimRng>,
    tracer: Mutex<Tracer>,
    /// Which island of a partitioned run this world is (0 for
    /// standalone worlds). Baked into every id drawn from `next_serial`
    /// so ids are unique fleet-wide without cross-island coordination.
    island: u32,
    /// Monotonic well for trace/span/correlation ids. Per-world (not
    /// process-wide) so id streams depend only on this island's own
    /// event order — identical under any thread count.
    serial: AtomicU64,
}

/// Cancellation handle for a repeating timer created by [`Sim::every`].
#[derive(Clone)]
pub struct RepeatHandle {
    alive: Arc<AtomicBool>,
    sim: Sim,
    /// The currently scheduled occurrence, so `cancel` can reap it
    /// eagerly instead of leaving a zombie tick in the queue.
    current: Arc<Mutex<Option<TimerId>>>,
}

impl RepeatHandle {
    /// Stops future repetitions and cancels the already-scheduled next
    /// occurrence, so a stopped repeat leaves nothing behind in the
    /// event queue (fleet runs stop thousands of heartbeats).
    pub fn cancel(&self) {
        self.alive.store(false, Ordering::SeqCst);
        if let Some(id) = self.current.lock().take() {
            self.sim.cancel(id);
        }
    }

    /// True if the repetition has not been cancelled.
    pub fn is_active(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }
}

impl Sim {
    /// Creates a world with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim::with_island(seed, 0)
    }

    /// Creates island `island` of a partitioned run. The RNG stream is
    /// derived deterministically from `(seed, island)` — see
    /// [`SimRng::for_island`] — and island 0 is indistinguishable from
    /// `Sim::new(seed)`.
    pub fn with_island(seed: u64, island: u32) -> Self {
        Sim {
            inner: Arc::new(SimInner {
                clock: Mutex::new(SimTime::ZERO),
                queue: Mutex::new(EventQueue::new()),
                rng: Mutex::new(SimRng::for_island(seed, island)),
                tracer: Mutex::new(Tracer::default()),
                island,
                serial: AtomicU64::new(0),
            }),
        }
    }

    /// The island id this world was created with (0 for standalone).
    pub fn island(&self) -> u32 {
        self.inner.island
    }

    /// Draws the next id from this world's serial well, namespaced by
    /// island: `(island << 40) | serial`. Deterministic because it
    /// depends only on this island's own event order.
    pub fn next_serial(&self) -> u64 {
        let serial = self.inner.serial.fetch_add(1, Ordering::Relaxed);
        (u64::from(self.inner.island) << 40) | (serial & ((1 << 40) - 1))
    }

    // ---- clock ----------------------------------------------------------

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        *self.inner.clock.lock()
    }

    /// Advances the virtual clock by `d` without firing timers.
    ///
    /// This is how layers charge processing/transfer costs during a
    /// synchronous call chain; see the module docs for why timers are not
    /// fired here.
    pub fn advance(&self, d: SimDuration) {
        *self.inner.clock.lock() += d;
    }

    // ---- timers ---------------------------------------------------------

    /// Schedules `f` to run at absolute time `at` (clamped to now if in the
    /// past). Returns a handle that can cancel it.
    pub fn schedule_at(&self, at: SimTime, f: impl FnOnce(&Sim) + Send + 'static) -> TimerId {
        let at = at.max(self.now());
        self.inner.queue.lock().push(at, Box::new(f))
    }

    /// Schedules `f` to run `delay` from now.
    pub fn schedule_in(
        &self,
        delay: SimDuration,
        f: impl FnOnce(&Sim) + Send + 'static,
    ) -> TimerId {
        self.schedule_at(self.now() + delay, f)
    }

    /// Runs `f` every `period`, starting one period from now, until the
    /// returned handle is cancelled.
    pub fn every(&self, period: SimDuration, f: impl FnMut(&Sim) + Send + 'static) -> RepeatHandle {
        self.every_with_phase(SimDuration::ZERO, period, f)
    }

    /// Like [`Sim::every`], but the first firing is `phase + period`
    /// from now. Fleets use a per-island phase to stagger identical
    /// periodic work (anti-entropy, heartbeats) so thousands of homes
    /// don't all act at the same virtual instant.
    pub fn every_with_phase(
        &self,
        phase: SimDuration,
        period: SimDuration,
        f: impl FnMut(&Sim) + Send + 'static,
    ) -> RepeatHandle {
        assert!(!period.is_zero(), "repeating timer period must be non-zero");
        let alive = Arc::new(AtomicBool::new(true));
        let current = Arc::new(Mutex::new(None));
        let handle = RepeatHandle {
            alive: alive.clone(),
            sim: self.clone(),
            current: current.clone(),
        };
        fn arm(
            sim: &Sim,
            delay: SimDuration,
            period: SimDuration,
            alive: Arc<AtomicBool>,
            current: Arc<Mutex<Option<TimerId>>>,
            mut f: impl FnMut(&Sim) + Send + 'static,
        ) {
            let slot = current.clone();
            let id = sim.schedule_in(delay, move |sim| {
                if !alive.load(Ordering::SeqCst) {
                    return;
                }
                f(sim);
                if alive.load(Ordering::SeqCst) {
                    arm(sim, period, period, alive, current, f);
                }
            });
            *slot.lock() = Some(id);
        }
        arm(self, phase + period, period, alive, current, f);
        handle
    }

    /// Cancels a one-shot timer.
    pub fn cancel(&self, id: TimerId) {
        self.inner.queue.lock().cancel(id);
    }

    /// Number of live pending timers (cancelled tombstones excluded).
    pub fn pending_timers(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Number of cancelled-timer tombstones still awaiting reap. Stays
    /// bounded by the heap size; exposed for leak diagnostics.
    pub fn timer_tombstones(&self) -> usize {
        self.inner.queue.lock().tombstones()
    }

    /// The firing time of the earliest pending timer, if any.
    pub fn next_timer_at(&self) -> Option<SimTime> {
        self.inner.queue.lock().peek_time()
    }

    /// Cancels every pending timer (used when tearing down a scenario).
    pub fn clear_timers(&self) {
        self.inner.queue.lock().clear();
    }

    // ---- pumping --------------------------------------------------------

    /// Fires the earliest pending timer, advancing the clock to its
    /// deadline. Returns `false` if no timer is pending.
    pub fn step(&self) -> bool {
        self.fire_next(SimTime::MAX)
    }

    /// Fires all timers due up to `deadline` (inclusive), in order, then
    /// sets the clock to `deadline` if it is later than the current time.
    pub fn run_until(&self, deadline: SimTime) {
        while self.fire_next(deadline) {}
        let mut clock = self.inner.clock.lock();
        if *clock < deadline {
            *clock = deadline;
        }
    }

    /// Equivalent to `run_until(now + d)`.
    pub fn run_for(&self, d: SimDuration) {
        self.run_until(self.now() + d);
    }

    /// Fires all timers due strictly before `bound`, in order, leaving
    /// the clock on the last event fired (it is *not* advanced to
    /// `bound`). This is the lookahead-window pump used by the parallel
    /// executor: windows are half-open on the right so a cross-island
    /// delivery scheduled exactly on the boundary is never fired early,
    /// and the clock is left free for the next window's events.
    /// Returns the number of events fired.
    pub fn run_window(&self, bound: SimTime) -> usize {
        let mut fired = 0;
        loop {
            let entry = self.inner.queue.lock().pop_before(bound);
            match entry {
                Some(e) => {
                    {
                        let mut clock = self.inner.clock.lock();
                        if *clock < e.at {
                            *clock = e.at;
                        }
                    }
                    (e.f)(self);
                    fired += 1;
                }
                None => return fired,
            }
        }
    }

    /// Fires timers until the queue is empty (or `max_events` fired),
    /// letting the clock follow the timers. Returns the number fired.
    pub fn drain(&self, max_events: usize) -> usize {
        let mut fired = 0;
        while fired < max_events && self.step() {
            fired += 1;
        }
        fired
    }

    fn fire_next(&self, deadline: SimTime) -> bool {
        let entry = self.inner.queue.lock().pop_due(deadline);
        match entry {
            Some(e) => {
                {
                    let mut clock = self.inner.clock.lock();
                    if *clock < e.at {
                        *clock = e.at;
                    }
                }
                (e.f)(self);
                true
            }
            None => false,
        }
    }

    // ---- randomness -----------------------------------------------------

    /// Runs `f` with exclusive access to the world RNG.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SimRng) -> T) -> T {
        f(&mut self.inner.rng.lock())
    }

    /// True with probability `p`.
    pub fn chance(&self, p: f64) -> bool {
        self.with_rng(|r| r.chance(p))
    }

    // ---- tracing --------------------------------------------------------

    /// Records a trace event at the current virtual time.
    pub fn trace(&self, component: &str, detail: impl Into<String>) {
        let now = self.now();
        self.inner.tracer.lock().record(now, component, detail);
    }

    /// Runs `f` with exclusive access to the tracer (to read or configure).
    pub fn with_tracer<T>(&self, f: impl FnOnce(&mut Tracer) -> T) -> T {
        f(&mut self.inner.tracer.lock())
    }
}

impl Default for Sim {
    fn default() -> Self {
        Sim::new(0x1CDC_2002)
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now())
            .field("pending_timers", &self.pending_timers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn advance_moves_clock_without_firing() {
        let sim = Sim::new(1);
        let fired = Arc::new(AtomicBool::new(false));
        let fired2 = fired.clone();
        sim.schedule_in(SimDuration::from_millis(5), move |_| {
            fired2.store(true, Ordering::SeqCst);
        });
        sim.advance(SimDuration::from_millis(10));
        assert!(!fired.load(Ordering::SeqCst));
        assert_eq!(sim.now(), SimTime::from_micros(10_000));
        // The timer is still pending and fires on the next pump, at the
        // current (later) clock because its deadline already passed.
        assert!(sim.step());
        assert!(fired.load(Ordering::SeqCst));
        assert_eq!(sim.now(), SimTime::from_micros(10_000));
    }

    #[test]
    fn run_until_fires_in_order_and_lands_on_deadline() {
        let sim = Sim::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for (delay, tag) in [(30u64, "c"), (10, "a"), (20, "b")] {
            let log = log.clone();
            sim.schedule_in(SimDuration::from_micros(delay), move |sim| {
                log.lock().push((tag, sim.now().as_micros()));
            });
        }
        sim.run_until(SimTime::from_micros(25));
        assert_eq!(*log.lock(), vec![("a", 10), ("b", 20)]);
        assert_eq!(sim.now(), SimTime::from_micros(25));
        sim.run_for(SimDuration::from_micros(10));
        assert_eq!(log.lock().last(), Some(&("c", 30)));
    }

    #[test]
    fn timers_can_schedule_timers() {
        let sim = Sim::new(1);
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        sim.schedule_in(SimDuration::from_micros(1), move |sim| {
            c.fetch_add(1, Ordering::SeqCst);
            let c2 = c.clone();
            sim.schedule_in(SimDuration::from_micros(1), move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            });
        });
        sim.run_for(SimDuration::from_micros(10));
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let sim = Sim::new(1);
        let fired = Arc::new(AtomicBool::new(false));
        let f2 = fired.clone();
        let id = sim.schedule_in(SimDuration::from_micros(5), move |_| {
            f2.store(true, Ordering::SeqCst);
        });
        sim.cancel(id);
        sim.run_for(SimDuration::from_millis(1));
        assert!(!fired.load(Ordering::SeqCst));
    }

    #[test]
    fn every_repeats_until_cancelled() {
        let sim = Sim::new(1);
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        let handle = sim.every(SimDuration::from_millis(10), move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        sim.run_for(SimDuration::from_millis(35));
        assert_eq!(count.load(Ordering::SeqCst), 3);
        handle.cancel();
        assert!(!handle.is_active());
        sim.run_for(SimDuration::from_millis(100));
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn cancelling_a_repeat_reaps_the_pending_tick() {
        let sim = Sim::new(1);
        let handle = sim.every(SimDuration::from_millis(10), |_| {});
        sim.run_for(SimDuration::from_millis(25));
        assert_eq!(sim.pending_timers(), 1);
        handle.cancel();
        assert_eq!(sim.pending_timers(), 0, "pending tick is cancelled eagerly");
        sim.run_for(SimDuration::from_millis(50));
        assert_eq!(
            sim.timer_tombstones(),
            0,
            "tombstone reaped once time passes it"
        );
    }

    #[test]
    fn drain_respects_event_budget() {
        let sim = Sim::new(1);
        for i in 1..=10u64 {
            sim.schedule_in(SimDuration::from_micros(i), |_| {});
        }
        assert_eq!(sim.drain(4), 4);
        assert_eq!(sim.pending_timers(), 6);
        assert_eq!(sim.drain(usize::MAX), 6);
    }

    #[test]
    fn rng_is_shared_and_deterministic() {
        let a = Sim::new(99);
        let b = Sim::new(99);
        let va: Vec<u64> = (0..10).map(|_| a.with_rng(|r| r.range(0, 100))).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.with_rng(|r| r.range(0, 100))).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn trace_records_at_current_time() {
        let sim = Sim::new(1);
        sim.advance(SimDuration::from_millis(3));
        sim.trace("test", "hello");
        sim.with_tracer(|t| {
            let e = t.events().next().unwrap();
            assert_eq!(e.at, SimTime::from_micros(3_000));
            assert_eq!(e.component, "test");
        });
    }

    #[test]
    fn run_window_is_strict_and_leaves_clock_on_last_event() {
        let sim = Sim::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for delay in [10u64, 20, 30] {
            let log = log.clone();
            sim.schedule_in(SimDuration::from_micros(delay), move |sim| {
                log.lock().push(sim.now().as_micros());
            });
        }
        // Half-open window: the event at t=30 is on the bound → not fired.
        assert_eq!(sim.run_window(SimTime::from_micros(30)), 2);
        assert_eq!(*log.lock(), vec![10, 20]);
        assert_eq!(sim.now(), SimTime::from_micros(20));
        assert_eq!(sim.run_window(SimTime::from_micros(31)), 1);
        assert_eq!(sim.now(), SimTime::from_micros(30));
    }

    #[test]
    fn island_identity_and_serial_well() {
        let a = Sim::with_island(42, 0);
        let b = Sim::with_island(42, 3);
        assert_eq!(a.island(), 0);
        assert_eq!(b.island(), 3);
        assert_eq!(a.next_serial(), 0);
        assert_eq!(a.next_serial(), 1);
        assert_eq!(b.next_serial(), 3u64 << 40);
        assert_eq!(b.next_serial(), (3u64 << 40) | 1);
    }

    #[test]
    fn island_zero_rng_matches_plain_new() {
        let a = Sim::new(7);
        let b = Sim::with_island(7, 0);
        let va: Vec<u64> = (0..10).map(|_| a.with_rng(|r| r.range(0, 100))).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.with_rng(|r| r.range(0, 100))).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn tombstones_stay_bounded() {
        let sim = Sim::new(1);
        for _ in 0..100 {
            let id = sim.schedule_in(SimDuration::from_micros(1), |_| {});
            sim.run_for(SimDuration::from_micros(2));
            sim.cancel(id); // cancel after it fired: must not accumulate
        }
        assert_eq!(sim.timer_tombstones(), 0);
    }

    #[test]
    fn past_deadline_clamps_to_now() {
        let sim = Sim::new(1);
        sim.advance(SimDuration::from_millis(5));
        let fired_at = Arc::new(AtomicU64::new(0));
        let f = fired_at.clone();
        sim.schedule_at(SimTime::from_micros(1), move |sim| {
            f.store(sim.now().as_micros(), Ordering::SeqCst);
        });
        sim.step();
        assert_eq!(fired_at.load(Ordering::SeqCst), 5_000);
    }
}
