//! Frames: the unit of transfer on every simulated network.

use crate::node::{Addr, NodeId};
use bytes::Bytes;
use std::fmt;

/// Tags the protocol family a frame belongs to, so that traces and
/// per-protocol statistics can distinguish traffic classes sharing a
/// physical network (e.g. HTTP and Jini discovery on the same Ethernet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Raw application bytes with no declared protocol.
    Raw,
    /// Simulated HTTP/1.1 (used by SOAP and UPnP control).
    Http,
    /// Jini discovery/lookup/RMI traffic.
    Jini,
    /// HAVi messaging over IEEE1394 asynchronous transactions.
    Havi,
    /// IEEE1394 isochronous stream packets.
    Isochronous,
    /// X10 powerline signalling.
    X10,
    /// SMTP-like mail submission.
    Mail,
    /// UPnP SSDP/GENA traffic.
    Upnp,
    /// SIP-like VSG signalling.
    Sip,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Protocol::Raw => "raw",
            Protocol::Http => "http",
            Protocol::Jini => "jini",
            Protocol::Havi => "havi",
            Protocol::Isochronous => "iso",
            Protocol::X10 => "x10",
            Protocol::Mail => "mail",
            Protocol::Upnp => "upnp",
            Protocol::Sip => "sip",
        };
        f.write_str(s)
    }
}

/// A frame in flight on a simulated network.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The sending node.
    pub src: NodeId,
    /// The destination (unicast or broadcast).
    pub dst: Addr,
    /// Protocol family, for tracing and statistics.
    pub protocol: Protocol,
    /// Application payload.
    pub payload: Bytes,
}

impl Frame {
    /// Creates a frame.
    pub fn new(
        src: NodeId,
        dst: impl Into<Addr>,
        protocol: Protocol,
        payload: impl Into<Bytes>,
    ) -> Self {
        Frame {
            src,
            dst: dst.into(),
            protocol,
            payload: payload.into(),
        }
    }

    /// The unicast destination, or `None` for broadcast frames.
    pub fn dst_node(&self) -> Option<NodeId> {
        match self.dst {
            Addr::Unicast(n) => Some(n),
            Addr::Broadcast => None,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {}->{} {}B]",
            self.protocol,
            self.src,
            self.dst,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_construction_and_accessors() {
        let f = Frame::new(NodeId(1), NodeId(2), Protocol::Http, &b"GET /"[..]);
        assert_eq!(f.len(), 5);
        assert!(!f.is_empty());
        assert_eq!(f.dst, Addr::Unicast(NodeId(2)));
    }

    #[test]
    fn broadcast_frame() {
        let f = Frame::new(NodeId(1), Addr::Broadcast, Protocol::X10, Vec::new());
        assert!(f.is_empty());
        assert_eq!(f.to_string(), "[x10 node#1->broadcast 0B]");
    }

    #[test]
    fn protocol_labels_are_stable() {
        // Trace files and bench CSVs key on these labels.
        assert_eq!(Protocol::Isochronous.to_string(), "iso");
        assert_eq!(Protocol::Jini.to_string(), "jini");
        assert_eq!(Protocol::Sip.to_string(), "sip");
    }
}
