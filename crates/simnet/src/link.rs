//! Link cost models.
//!
//! A [`LinkModel`] turns a frame size into a virtual-time transfer delay and
//! a loss decision. Each network technology in the home (Ethernet, IEEE1394,
//! X10 powerline, RS-232 serial) gets its own parameterisation; see
//! [`crate::netkind`] for presets.

use crate::time::SimDuration;

/// Parameters describing the physical behaviour of one network technology.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// One-way propagation + processing latency applied to every frame.
    pub latency: SimDuration,
    /// Line rate in bits per second. Zero means "do not model
    /// serialisation delay".
    pub bandwidth_bps: u64,
    /// Per-frame framing overhead in bytes (headers, preambles,
    /// inter-frame gaps expressed as byte-equivalents).
    pub per_frame_overhead: usize,
    /// Maximum payload size; larger sends fail with
    /// [`crate::error::SimError::FrameTooLarge`].
    pub mtu: usize,
    /// Independent probability that any given frame is lost.
    ///
    /// This models powerline noise and collisions statistically; wired
    /// point-to-point links use `0.0`.
    pub loss_prob: f64,
}

impl LinkModel {
    /// A perfect, instantaneous link — useful in unit tests.
    pub fn ideal() -> Self {
        LinkModel {
            latency: SimDuration::ZERO,
            bandwidth_bps: 0,
            per_frame_overhead: 0,
            mtu: usize::MAX,
            loss_prob: 0.0,
        }
    }

    /// The virtual time needed to move a `payload_len`-byte frame across
    /// this link: serialisation of payload plus framing overhead, plus
    /// propagation latency.
    pub fn transfer_time(&self, payload_len: usize) -> SimDuration {
        let wire_bytes = payload_len + self.per_frame_overhead;
        self.latency + SimDuration::transmission(wire_bytes, self.bandwidth_bps)
    }

    /// True if a frame of `payload_len` bytes fits in one MTU.
    pub fn fits(&self, payload_len: usize) -> bool {
        payload_len <= self.mtu
    }

    /// The number of MTU-sized fragments needed for `payload_len` bytes.
    ///
    /// Networks that fragment (HTTP over Ethernet) use this to charge
    /// per-fragment overhead; networks that reject oversized frames
    /// (X10, raw 1394 async) use [`LinkModel::fits`] instead.
    pub fn fragments(&self, payload_len: usize) -> usize {
        if payload_len == 0 || self.mtu == 0 || self.mtu == usize::MAX {
            return 1;
        }
        payload_len.div_ceil(self.mtu)
    }

    /// Transfer time for a payload that is fragmented across MTUs, charging
    /// `per_frame_overhead` once per fragment.
    pub fn fragmented_transfer_time(&self, payload_len: usize) -> SimDuration {
        let frags = self.fragments(payload_len);
        let wire_bytes = payload_len + self.per_frame_overhead * frags;
        self.latency + SimDuration::transmission(wire_bytes, self.bandwidth_bps)
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_is_free() {
        let l = LinkModel::ideal();
        assert_eq!(l.transfer_time(1_000_000), SimDuration::ZERO);
        assert!(l.fits(usize::MAX - 1));
        assert_eq!(l.fragments(1_000_000), 1);
    }

    #[test]
    fn transfer_time_includes_overhead_and_latency() {
        let l = LinkModel {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 8_000_000, // 1 byte per microsecond
            per_frame_overhead: 50,
            mtu: 1500,
            loss_prob: 0.0,
        };
        // 950 payload + 50 overhead = 1000 bytes = 1000us, plus 100us latency.
        assert_eq!(l.transfer_time(950), SimDuration::from_micros(1_100));
    }

    #[test]
    fn fragmentation_counts() {
        let l = LinkModel {
            mtu: 1500,
            ..LinkModel::ideal()
        };
        assert_eq!(l.fragments(0), 1);
        assert_eq!(l.fragments(1500), 1);
        assert_eq!(l.fragments(1501), 2);
        assert_eq!(l.fragments(4500), 3);
    }

    #[test]
    fn fragmented_transfer_charges_per_fragment_overhead() {
        let l = LinkModel {
            latency: SimDuration::ZERO,
            bandwidth_bps: 8_000_000,
            per_frame_overhead: 100,
            mtu: 1000,
            loss_prob: 0.0,
        };
        // 2000 bytes -> 2 fragments -> 2000 + 200 overhead = 2200us.
        assert_eq!(
            l.fragmented_transfer_time(2000),
            SimDuration::from_micros(2_200)
        );
    }
}
