//! Traffic statistics.
//!
//! Benches and EXPERIMENTS.md report message counts and byte volumes per
//! protocol family; every [`crate::net::Network`] feeds a [`NetStats`].

use crate::frame::Protocol;
use std::collections::BTreeMap;

/// Counters for one protocol family on one network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Frames successfully delivered.
    pub frames: u64,
    /// Payload bytes successfully delivered.
    pub bytes: u64,
    /// Frames lost to noise/collision.
    pub lost: u64,
}

/// Per-protocol traffic counters for one network.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    by_protocol: BTreeMap<&'static str, Counter>,
    conns_opened: u64,
}

impl NetStats {
    /// Creates an empty statistics table.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(p: Protocol) -> &'static str {
        match p {
            Protocol::Raw => "raw",
            Protocol::Http => "http",
            Protocol::Jini => "jini",
            Protocol::Havi => "havi",
            Protocol::Isochronous => "iso",
            Protocol::X10 => "x10",
            Protocol::Mail => "mail",
            Protocol::Upnp => "upnp",
            Protocol::Sip => "sip",
        }
    }

    /// Records a successful delivery.
    pub fn record_delivered(&mut self, protocol: Protocol, bytes: usize) {
        let c = self.by_protocol.entry(Self::key(protocol)).or_default();
        c.frames += 1;
        c.bytes += bytes as u64;
    }

    /// Records `frames` deliveries totalling `bytes` in one call (used by
    /// stream simulation, where per-packet accounting would be wasteful).
    pub fn record_bulk(&mut self, protocol: Protocol, frames: u64, bytes: u64) {
        let c = self.by_protocol.entry(Self::key(protocol)).or_default();
        c.frames += frames;
        c.bytes += bytes;
    }

    /// Records a lost frame.
    pub fn record_lost(&mut self, protocol: Protocol) {
        self.by_protocol
            .entry(Self::key(protocol))
            .or_default()
            .lost += 1;
    }

    /// Records one transport connection establishment (a TCP-style
    /// handshake). Persistent-connection clients call this once per
    /// peer; connect-per-call clients once per exchange, which is what
    /// makes the saving visible in bench output.
    pub fn record_conn_open(&mut self) {
        self.conns_opened += 1;
    }

    /// Transport connections opened since the last [`NetStats::reset`].
    pub fn conns_opened(&self) -> u64 {
        self.conns_opened
    }

    /// The counter for one protocol family (zeroes if never seen).
    pub fn protocol(&self, protocol: Protocol) -> Counter {
        self.by_protocol
            .get(Self::key(protocol))
            .copied()
            .unwrap_or_default()
    }

    /// Sums over all protocol families.
    pub fn total(&self) -> Counter {
        let mut t = Counter::default();
        for c in self.by_protocol.values() {
            t.frames += c.frames;
            t.bytes += c.bytes;
            t.lost += c.lost;
        }
        t
    }

    /// Iterates `(protocol-label, counter)` pairs in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Counter)> + '_ {
        self.by_protocol.iter().map(|(k, v)| (*k, *v))
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.by_protocol.clear();
        self.conns_opened = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_protocol() {
        let mut s = NetStats::new();
        s.record_delivered(Protocol::Http, 100);
        s.record_delivered(Protocol::Http, 50);
        s.record_delivered(Protocol::X10, 2);
        s.record_lost(Protocol::X10);
        assert_eq!(
            s.protocol(Protocol::Http),
            Counter {
                frames: 2,
                bytes: 150,
                lost: 0
            }
        );
        assert_eq!(
            s.protocol(Protocol::X10),
            Counter {
                frames: 1,
                bytes: 2,
                lost: 1
            }
        );
        assert_eq!(s.protocol(Protocol::Jini), Counter::default());
    }

    #[test]
    fn totals_sum_everything() {
        let mut s = NetStats::new();
        s.record_delivered(Protocol::Jini, 10);
        s.record_delivered(Protocol::Havi, 20);
        s.record_lost(Protocol::Havi);
        let t = s.total();
        assert_eq!(
            t,
            Counter {
                frames: 2,
                bytes: 30,
                lost: 1
            }
        );
    }

    #[test]
    fn reset_clears() {
        let mut s = NetStats::new();
        s.record_delivered(Protocol::Mail, 10);
        s.record_conn_open();
        assert_eq!(s.conns_opened(), 1);
        s.reset();
        assert_eq!(s.total(), Counter::default());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.conns_opened(), 0);
    }

    #[test]
    fn iter_is_stably_ordered() {
        let mut s = NetStats::new();
        s.record_delivered(Protocol::X10, 1);
        s.record_delivered(Protocol::Http, 1);
        s.record_delivered(Protocol::Jini, 1);
        let keys: Vec<_> = s.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
