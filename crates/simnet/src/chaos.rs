//! Deterministic fault injection over virtual time.
//!
//! A [`FaultPlan`] is a script of fault windows — loss spikes, latency
//! spikes, node crashes, partitions — each active over a half-open
//! virtual-time range `[from, until)`. Plans are pure data: the network
//! consults the plan at each send/request against the current virtual
//! clock, so the same seed and the same plan always produce the same
//! failure sequence, with no background machinery to pump. Attach a plan
//! with [`crate::Network::set_fault_plan`]; heal everything at once with
//! [`crate::Network::clear_fault_plan`] or just run past
//! [`FaultPlan::healed_by`].

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// What one fault window does while it is active.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Extra frame-loss probability, compounded with the link's own
    /// loss rate.
    Loss {
        /// Probability in `[0, 1]` that any frame is dropped.
        prob: f64,
    },
    /// Extra one-way latency added to every transfer.
    Latency {
        /// The added delay per leg.
        extra: SimDuration,
    },
    /// One node has crashed: it can neither send nor be reached. The
    /// node "restarts" when the window closes.
    NodeDown {
        /// The crashed node.
        node: NodeId,
    },
    /// The medium is split: traffic between the `left` and `right`
    /// groups fails in both directions. Traffic within a group is
    /// unaffected.
    Partition {
        /// One side of the split.
        left: Vec<NodeId>,
        /// The other side.
        right: Vec<NodeId>,
    },
    /// At-least-once delivery: any delivered frame (or request) may be
    /// delivered *again*. Delivery-leg-aware like [`FaultKind::Loss`]:
    /// a duplicated request leg re-invokes the receiving handler, the
    /// WAN failure mode that makes idempotency mandatory.
    Duplicate {
        /// Probability in `[0, 1]` that a delivered frame arrives twice.
        prob: f64,
    },
    /// Out-of-order delivery: each delivery is delayed by an extra
    /// amount drawn uniformly from `[0, window)`, so frames sent close
    /// together may arrive transposed.
    Reorder {
        /// The maximum extra per-delivery delay.
        window: SimDuration,
    },
}

/// One scheduled fault: a [`FaultKind`] active over `[from, until)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// First instant the fault is active.
    pub from: SimTime,
    /// First instant the fault is healed again.
    pub until: SimTime,
    /// The fault itself.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether this window is active at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// A seed-deterministic script of fault windows.
///
/// Windows may overlap freely; effects compose (latencies add, loss
/// probabilities compound, any matching crash or partition blocks).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an arbitrary window (builder style).
    pub fn window(mut self, from: SimTime, until: SimTime, kind: FaultKind) -> FaultPlan {
        self.windows.push(FaultWindow { from, until, kind });
        self
    }

    /// Schedules a frame-loss spike of probability `prob` over
    /// `[from, until)`.
    pub fn loss_spike(self, from: SimTime, until: SimTime, prob: f64) -> FaultPlan {
        self.window(from, until, FaultKind::Loss { prob })
    }

    /// Schedules `extra` one-way latency on every transfer over
    /// `[from, until)`.
    pub fn latency_spike(self, from: SimTime, until: SimTime, extra: SimDuration) -> FaultPlan {
        self.window(from, until, FaultKind::Latency { extra })
    }

    /// Crashes `node` over `[from, until)`; it restarts at `until`.
    pub fn node_down(self, node: NodeId, from: SimTime, until: SimTime) -> FaultPlan {
        self.window(from, until, FaultKind::NodeDown { node })
    }

    /// Partitions the `left` group from the `right` group over
    /// `[from, until)`.
    pub fn partition(
        self,
        left: impl Into<Vec<NodeId>>,
        right: impl Into<Vec<NodeId>>,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlan {
        self.window(
            from,
            until,
            FaultKind::Partition {
                left: left.into(),
                right: right.into(),
            },
        )
    }

    /// Schedules an at-least-once delivery window: any delivered frame
    /// is duplicated with probability `prob` over `[from, until)`.
    pub fn duplicate_spike(self, from: SimTime, until: SimTime, prob: f64) -> FaultPlan {
        self.window(from, until, FaultKind::Duplicate { prob })
    }

    /// Schedules an out-of-order delivery window: each delivery gains
    /// an extra delay drawn from `[0, window)` over `[from, until)`.
    pub fn reorder_spike(self, from: SimTime, until: SimTime, window: SimDuration) -> FaultPlan {
        self.window(from, until, FaultKind::Reorder { window })
    }

    /// Returns the plan with every window shifted `offset` later.
    /// Used to stagger one scripted fault schedule across a fleet of
    /// islands so they do not all fail in lockstep.
    pub fn shifted(mut self, offset: SimDuration) -> FaultPlan {
        for w in &mut self.windows {
            w.from += offset;
            w.until += offset;
        }
        self
    }

    /// Returns the plan staggered for island `island`: windows shift by
    /// a jitter in `[0, max_jitter)` that is a pure function of
    /// `(seed, island)`, so per-island chaos schedules replay
    /// bit-for-bit under any thread count. Island 0 is unshifted,
    /// keeping pre-fleet single-world runs byte-identical.
    pub fn jittered_for_island(self, seed: u64, island: u32, max_jitter: SimDuration) -> FaultPlan {
        if island == 0 || max_jitter.is_zero() {
            return self;
        }
        let span = max_jitter.as_micros();
        let jitter = crate::rng::SimRng::for_island(seed, island).range(0, span.max(1));
        self.shifted(SimDuration::from_micros(jitter))
    }

    /// Number of scheduled windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The first instant at which every window has closed (the plan is
    /// fully healed). [`SimTime::ZERO`] for an empty plan.
    pub fn healed_by(&self) -> SimTime {
        self.windows
            .iter()
            .map(|w| w.until)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Whether no window is active at `now` (past faults healed, future
    /// ones not yet open).
    pub fn quiet_at(&self, now: SimTime) -> bool {
        !self.windows.iter().any(|w| w.active_at(now))
    }

    /// Whether `node` is crashed at `now`.
    pub fn node_down_at(&self, now: SimTime, node: NodeId) -> bool {
        self.windows.iter().any(|w| {
            w.active_at(now) && matches!(&w.kind, FaultKind::NodeDown { node: n } if *n == node)
        })
    }

    /// Whether an active partition separates `a` from `b` at `now`
    /// (symmetric).
    pub fn partitioned_at(&self, now: SimTime, a: NodeId, b: NodeId) -> bool {
        self.windows.iter().any(|w| {
            w.active_at(now)
                && match &w.kind {
                    FaultKind::Partition { left, right } => {
                        (left.contains(&a) && right.contains(&b))
                            || (left.contains(&b) && right.contains(&a))
                    }
                    _ => false,
                }
        })
    }

    /// The combined extra loss probability at `now`: overlapping loss
    /// spikes compound as independent drop chances.
    pub fn extra_loss_at(&self, now: SimTime) -> f64 {
        let mut keep = 1.0;
        for w in &self.windows {
            if let FaultKind::Loss { prob } = w.kind {
                if w.active_at(now) {
                    keep *= 1.0 - prob.clamp(0.0, 1.0);
                }
            }
        }
        1.0 - keep
    }

    /// The summed extra one-way latency at `now`.
    pub fn extra_latency_at(&self, now: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for w in &self.windows {
            if let FaultKind::Latency { extra } = w.kind {
                if w.active_at(now) {
                    total += extra;
                }
            }
        }
        total
    }

    /// The combined duplicate probability at `now`: overlapping
    /// duplicate windows compound as independent duplication chances,
    /// mirroring [`FaultPlan::extra_loss_at`].
    pub fn duplicate_prob_at(&self, now: SimTime) -> f64 {
        let mut keep = 1.0;
        for w in &self.windows {
            if let FaultKind::Duplicate { prob } = w.kind {
                if w.active_at(now) {
                    keep *= 1.0 - prob.clamp(0.0, 1.0);
                }
            }
        }
        1.0 - keep
    }

    /// The widest active reorder window at `now` ([`SimDuration::ZERO`]
    /// when none): overlapping windows don't add — the slowest path
    /// bounds how far a frame can slip.
    pub fn reorder_window_at(&self, now: SimTime) -> SimDuration {
        let mut widest = SimDuration::ZERO;
        for w in &self.windows {
            if let FaultKind::Reorder { window } = w.kind {
                if w.active_at(now) && window > widest {
                    widest = window;
                }
            }
        }
        widest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::new().node_down(NodeId(3), t(100), t(200));
        assert!(!plan.node_down_at(t(99), NodeId(3)));
        assert!(plan.node_down_at(t(100), NodeId(3)));
        assert!(plan.node_down_at(t(199), NodeId(3)));
        assert!(!plan.node_down_at(t(200), NodeId(3)), "heals at `until`");
        assert!(!plan.node_down_at(t(150), NodeId(4)), "other nodes fine");
    }

    #[test]
    fn partitions_are_symmetric_and_group_scoped() {
        let plan =
            FaultPlan::new().partition(vec![NodeId(1), NodeId(2)], vec![NodeId(7)], t(0), t(1000));
        assert!(plan.partitioned_at(t(10), NodeId(1), NodeId(7)));
        assert!(plan.partitioned_at(t(10), NodeId(7), NodeId(2)));
        assert!(
            !plan.partitioned_at(t(10), NodeId(1), NodeId(2)),
            "same side"
        );
        assert!(
            !plan.partitioned_at(t(10), NodeId(1), NodeId(9)),
            "outsider"
        );
        assert!(
            !plan.partitioned_at(t(1000), NodeId(1), NodeId(7)),
            "healed"
        );
    }

    #[test]
    fn loss_spikes_compound_and_latency_sums() {
        let plan = FaultPlan::new()
            .loss_spike(t(0), t(100), 0.5)
            .loss_spike(t(50), t(100), 0.5)
            .latency_spike(t(0), t(100), SimDuration::from_micros(300))
            .latency_spike(t(50), t(100), SimDuration::from_micros(200));
        assert!((plan.extra_loss_at(t(10)) - 0.5).abs() < 1e-9);
        assert!((plan.extra_loss_at(t(60)) - 0.75).abs() < 1e-9);
        assert_eq!(plan.extra_loss_at(t(100)), 0.0);
        assert_eq!(plan.extra_latency_at(t(10)).as_micros(), 300);
        assert_eq!(plan.extra_latency_at(t(60)).as_micros(), 500);
        assert_eq!(plan.extra_latency_at(t(100)).as_micros(), 0);
    }

    #[test]
    fn shifted_moves_every_window() {
        let plan = FaultPlan::new()
            .node_down(NodeId(1), t(100), t(200))
            .loss_spike(t(300), t(400), 0.9)
            .shifted(SimDuration::from_micros(50));
        assert!(!plan.node_down_at(t(100), NodeId(1)));
        assert!(plan.node_down_at(t(150), NodeId(1)));
        assert_eq!(plan.healed_by(), t(450));
    }

    #[test]
    fn island_jitter_is_deterministic_and_island_zero_exact() {
        let base = || FaultPlan::new().loss_spike(t(100), t(200), 0.5);
        let j = SimDuration::from_micros(1_000);
        assert_eq!(base().jittered_for_island(7, 0, j), base());
        let a = base().jittered_for_island(7, 3, j);
        let b = base().jittered_for_island(7, 3, j);
        assert_eq!(a, b, "same (seed, island) => same schedule");
        let from = a.windows()[0].from;
        assert!(t(100) <= from && from < t(1_100), "jitter within bound");
    }

    #[test]
    fn duplicate_windows_compound_and_reorder_takes_the_widest() {
        let plan = FaultPlan::new()
            .duplicate_spike(t(0), t(100), 0.5)
            .duplicate_spike(t(50), t(100), 0.5)
            .reorder_spike(t(0), t(100), SimDuration::from_micros(300))
            .reorder_spike(t(50), t(100), SimDuration::from_micros(200));
        assert!((plan.duplicate_prob_at(t(10)) - 0.5).abs() < 1e-9);
        assert!((plan.duplicate_prob_at(t(60)) - 0.75).abs() < 1e-9);
        assert_eq!(plan.duplicate_prob_at(t(100)), 0.0, "half-open heal");
        assert_eq!(plan.reorder_window_at(t(10)).as_micros(), 300);
        assert_eq!(
            plan.reorder_window_at(t(60)).as_micros(),
            300,
            "widest window bounds the slip, windows do not add"
        );
        assert_eq!(plan.reorder_window_at(t(100)), SimDuration::ZERO);
    }

    #[test]
    fn healed_by_and_quiet_report_the_schedule() {
        let plan = FaultPlan::new()
            .node_down(NodeId(1), t(100), t(200))
            .loss_spike(t(300), t(400), 0.9);
        assert_eq!(plan.healed_by(), t(400));
        assert!(plan.quiet_at(t(250)), "gap between windows is quiet");
        assert!(!plan.quiet_at(t(350)));
        assert!(plan.quiet_at(t(400)));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(FaultPlan::new().healed_by(), SimTime::ZERO);
    }
}
