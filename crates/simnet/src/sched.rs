//! The discrete-event queue backing [`crate::sim::Sim`].
//!
//! This module owns only the data structure; the firing loop lives in
//! [`crate::sim`] because callbacks need a `&Sim` handle.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

/// Identifies a scheduled timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// The callback type fired by the scheduler.
pub(crate) type TimerFn = Box<dyn FnOnce(&crate::sim::Sim) + Send>;

pub(crate) struct Entry {
    pub at: SimTime,
    pub seq: u64,
    pub id: TimerId,
    pub f: TimerFn,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    // Reversed so the BinaryHeap (a max-heap) pops the *earliest* entry;
    // ties break FIFO by sequence number.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pending-timer queue.
///
/// Cancellation is tombstone-based: `cancel` moves the id from the
/// `live` set into the `cancelled` set, and the entry is discarded when
/// it bubbles to the top of the heap. Both sets shrink as entries are
/// popped, so long fleet runs do not accumulate state for timers that
/// already fired or were already reaped — cancelling a dead id is a
/// no-op rather than a permanent tombstone.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Entry>,
    /// Ids of entries still in the heap and not cancelled.
    live: HashSet<TimerId>,
    /// Ids of entries still in the heap but cancelled (awaiting reap).
    cancelled: HashSet<TimerId>,
    next_seq: u64,
    next_id: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a callback at `at`, returning its cancellation handle.
    pub fn push(&mut self, at: SimTime, f: TimerFn) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, id, f });
        self.live.insert(id);
        id
    }

    /// Marks a timer as cancelled. Cancelled timers are skipped on pop.
    /// Cancelling a timer that already fired (or was already cancelled)
    /// is a no-op, so the tombstone set stays bounded by the heap size.
    pub fn cancel(&mut self, id: TimerId) {
        if self.live.remove(&id) {
            self.cancelled.insert(id);
        }
    }

    /// The firing time of the earliest live timer, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest live timer with `at <= deadline`.
    pub fn pop_due(&mut self, deadline: SimTime) -> Option<Entry> {
        self.skip_cancelled();
        if self.heap.peek().is_some_and(|e| e.at <= deadline) {
            let e = self.heap.pop();
            if let Some(entry) = &e {
                self.live.remove(&entry.id);
            }
            e
        } else {
            None
        }
    }

    /// Pops the earliest live timer with `at` strictly before `bound`.
    /// The parallel executor uses this to fire a lookahead window
    /// half-open on the right, so cross-island deliveries landing *on*
    /// the window boundary are never executed early.
    pub fn pop_before(&mut self, bound: SimTime) -> Option<Entry> {
        self.skip_cancelled();
        if self.heap.peek().is_some_and(|e| e.at < bound) {
            let e = self.heap.pop();
            if let Some(entry) = &e {
                self.live.remove(&entry.id);
            }
            e
        } else {
            None
        }
    }

    /// Number of live pending timers (tombstones excluded), O(1).
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Number of cancelled entries still awaiting reap (diagnostics).
    pub fn tombstones(&self) -> usize {
        self.cancelled.len()
    }

    /// Discards everything.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
        self.cancelled.clear();
    }

    fn skip_cancelled(&mut self) {
        while let Some(e) = self.heap.peek() {
            if self.cancelled.remove(&e.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("cancelled", &self.cancelled.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn noop() -> TimerFn {
        Box::new(|_| {})
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), noop());
        q.push(SimTime::from_micros(10), noop());
        q.push(SimTime::from_micros(20), noop());
        let t1 = q.pop_due(SimTime::MAX).unwrap().at;
        let t2 = q.pop_due(SimTime::MAX).unwrap().at;
        let t3 = q.pop_due(SimTime::MAX).unwrap().at;
        assert_eq!(
            (t1.as_micros(), t2.as_micros(), t3.as_micros()),
            (10, 20, 30)
        );
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_micros(5), noop());
        let b = q.push(SimTime::from_micros(5), noop());
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().id, a);
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().id, b);
    }

    #[test]
    fn deadline_gates_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(100), noop());
        assert!(q.pop_due(SimTime::from_micros(99)).is_none());
        assert!(q.pop_due(SimTime::from_micros(100)).is_some());
    }

    #[test]
    fn cancelled_timers_are_skipped() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_micros(1), noop());
        let b = q.push(SimTime::from_micros(2), noop());
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().id, b);
        assert!(q.pop_due(SimTime::MAX).is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_micros(1), noop());
        q.push(SimTime::from_micros(9), noop());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(1), noop());
        q.clear();
        assert_eq!(q.len(), 0);
        assert!(q.peek_time().is_none());
    }

    #[test]
    fn cancelling_a_fired_timer_leaves_no_tombstone() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_micros(1), noop());
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().id, a);
        q.cancel(a); // already fired: must not grow the tombstone set
        assert_eq!(q.tombstones(), 0);
        q.cancel(a); // idempotent
        assert_eq!(q.tombstones(), 0);
    }

    #[test]
    fn tombstones_are_reaped_on_pop() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_micros(1), noop());
        q.push(SimTime::from_micros(2), noop());
        q.cancel(a);
        assert_eq!(q.tombstones(), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().at.as_micros(), 2);
        assert_eq!(q.tombstones(), 0);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn double_cancel_is_single_tombstone() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_micros(5), noop());
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.tombstones(), 1);
        assert!(q.pop_due(SimTime::MAX).is_none());
        assert_eq!(q.tombstones(), 0);
    }

    #[test]
    fn pop_before_is_strict() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), noop());
        assert!(q.pop_before(SimTime::from_micros(10)).is_none());
        assert!(q.pop_before(SimTime::from_micros(11)).is_some());
    }
}
