//! Preset link models for the network technologies the paper names.
//!
//! §1 of the paper: "there will be various types of networks such as
//! Ethernet, Bluetooth and IEEE1394" — plus the X10 powerline, the CM11A
//! RS-232 attachment, and the Internet uplink used by the mail/web
//! services. The numbers below are period-accurate order-of-magnitude
//! figures (2002-era home equipment); experiments depend on their ratios,
//! not their absolute values.

use crate::link::LinkModel;
use crate::net::Network;
use crate::sim::Sim;
use crate::time::SimDuration;

/// 100BASE-T home Ethernet segment (Jini's habitat in the prototype).
pub fn ethernet() -> LinkModel {
    LinkModel {
        latency: SimDuration::from_micros(200),
        bandwidth_bps: 100_000_000,
        per_frame_overhead: 38, // header + preamble + inter-frame gap
        mtu: 1500,
        loss_prob: 0.0,
    }
}

/// IEEE1394 (FireWire) S400 bus — HAVi's required transport.
pub fn ieee1394() -> LinkModel {
    LinkModel {
        latency: SimDuration::from_micros(20),
        bandwidth_bps: 393_216_000,
        per_frame_overhead: 24,
        mtu: 2048,
        loss_prob: 0.0,
    }
}

/// X10 powerline signalling: one bit per AC zero-crossing (~60 Hz mains,
/// so ~120 crossings/s => 120 bit/s raw, and every frame is sent twice).
/// Powerline noise makes loss a fact of life.
pub fn powerline() -> LinkModel {
    LinkModel {
        latency: SimDuration::from_millis(10),
        bandwidth_bps: 60, // effective rate after mandatory retransmission
        per_frame_overhead: 1,
        mtu: 4,
        loss_prob: 0.02,
    }
}

/// RS-232 serial line at 9600 baud (the CM11A computer interface).
pub fn serial() -> LinkModel {
    LinkModel {
        latency: SimDuration::from_millis(1),
        bandwidth_bps: 9_600,
        per_frame_overhead: 2, // start/stop bits amortised
        mtu: 255,
        loss_prob: 0.0,
    }
}

/// Bluetooth 1.1 piconet (mentioned in §1 as a home network type).
pub fn bluetooth() -> LinkModel {
    LinkModel {
        latency: SimDuration::from_millis(5),
        bandwidth_bps: 723_000,
        per_frame_overhead: 17,
        mtu: 672,
        loss_prob: 0.005,
    }
}

/// The home's Internet uplink (DSL-class, 2002): reaches the TV-program
/// service, mail service, and remote SOAP services.
pub fn internet() -> LinkModel {
    LinkModel {
        latency: SimDuration::from_millis(25),
        bandwidth_bps: 1_500_000,
        per_frame_overhead: 40, // IP + TCP headers
        mtu: 1500,
        loss_prob: 0.001,
    }
}

/// Convenience constructors pairing each preset with a named [`Network`].
impl Network {
    /// A home Ethernet segment.
    pub fn ethernet(sim: &Sim) -> Network {
        Network::new(sim, "ethernet", ethernet())
    }

    /// An IEEE1394 bus.
    pub fn ieee1394(sim: &Sim) -> Network {
        Network::new(sim, "ieee1394", ieee1394())
    }

    /// The house powerline.
    pub fn powerline(sim: &Sim) -> Network {
        Network::new(sim, "powerline", powerline())
    }

    /// A point-to-point serial cable.
    pub fn serial(sim: &Sim) -> Network {
        Network::new(sim, "serial", serial())
    }

    /// The Internet uplink.
    pub fn internet(sim: &Sim) -> Network {
        Network::new(sim, "internet", internet())
    }

    /// A Bluetooth piconet.
    pub fn bluetooth(sim: &Sim) -> Network {
        Network::new(sim, "bluetooth", bluetooth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technology_speed_ordering_holds() {
        // The experiments rely on these qualitative relations.
        let small = 16; // a small control frame
        let t_1394 = ieee1394().transfer_time(small);
        let t_eth = ethernet().transfer_time(small);
        let t_bt = bluetooth().transfer_time(small);
        let t_inet = internet().transfer_time(small);
        assert!(t_1394 < t_eth, "1394 beats Ethernet on latency");
        assert!(t_eth < t_bt, "Ethernet beats Bluetooth");
        assert!(t_bt < t_inet, "LAN beats WAN");
    }

    #[test]
    fn x10_commands_take_the_better_part_of_a_second() {
        // A 2-byte X10 command (sent twice at ~120 crossings/s) should
        // land in the 100ms..1s band the real protocol exhibits.
        let t = powerline().transfer_time(2);
        let ms = t.as_millis();
        assert!((100..=1_000).contains(&ms), "got {ms}ms");
    }

    #[test]
    fn presets_attach_named_networks() {
        let sim = Sim::new(1);
        assert_eq!(Network::ethernet(&sim).name(), "ethernet");
        assert_eq!(Network::ieee1394(&sim).name(), "ieee1394");
        assert_eq!(Network::powerline(&sim).name(), "powerline");
        assert_eq!(Network::serial(&sim).name(), "serial");
        assert_eq!(Network::internet(&sim).name(), "internet");
        assert_eq!(Network::bluetooth(&sim).name(), "bluetooth");
    }

    #[test]
    fn wired_lans_are_lossless() {
        assert_eq!(ethernet().loss_prob, 0.0);
        assert_eq!(ieee1394().loss_prob, 0.0);
        assert_eq!(serial().loss_prob, 0.0);
        assert!(powerline().loss_prob > 0.0);
    }
}
