//! The CM11A computer interface.
//!
//! The CM11A is the serial-attached bridge between a PC and the
//! powerline — the hardware behind the paper's X10 PCM (ref. \[15\],
//! "CM11A programming protocol"). The PC side sends a two-byte
//! header/code pair, verifies the interface's checksum echo, commits
//! with `0x00`, and receives `0x55` once the command has been put on the
//! powerline. Received powerline traffic is buffered in the interface
//! and fetched with the `0xC3` poll.
//!
//! *Deviation from hardware:* the real interface volunteers `0x5A` bytes
//! to announce buffered data; the simulation's serial line is
//! request/response, so the driver polls instead.

use crate::codec::{Function, HouseCode, UnitCode, X10Frame};
use crate::powerline::Transmitter;
use parking_lot::Mutex;
use simnet::{Network, NodeId, Protocol, SimDuration};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// PC → interface: commit a checksummed command.
pub const ACK_OK: u8 = 0x00;
/// Interface → PC: command transmitted.
pub const IF_READY: u8 = 0x55;
/// PC → interface: upload your receive buffer.
pub const POLL_FETCH: u8 = 0xC3;

/// The interface device: one foot on the serial line, one on the
/// powerline.
#[derive(Clone)]
pub struct Cm11a {
    serial_node: NodeId,
    buffer: Arc<Mutex<VecDeque<X10Frame>>>,
}

/// How many received frames the hardware buffer holds (the real device
/// has a 10-byte buffer ≈ 5 frames).
pub const RX_BUFFER_FRAMES: usize = 5;

impl Cm11a {
    /// Installs the interface: attaches a node on `serial` (to the PC)
    /// and a node on `powerline`.
    pub fn install(serial: &Network, powerline: &Network) -> Cm11a {
        let serial_node = serial.attach("cm11a-serial");
        let pl_tx = Transmitter::attach(powerline, "cm11a-powerline");
        let buffer: Arc<Mutex<VecDeque<X10Frame>>> = Arc::new(Mutex::new(VecDeque::new()));

        // Powerline side: buffer everything heard (the PC decides what
        // matters).
        let buffer2 = buffer.clone();
        powerline
            .set_frame_handler(pl_tx.node(), move |_sim, frame| {
                if let Some(decoded) = X10Frame::decode(&frame.payload) {
                    let mut buf = buffer2.lock();
                    if buf.len() == RX_BUFFER_FRAMES {
                        buf.pop_front(); // hardware overwrites oldest
                    }
                    buf.push_back(decoded);
                }
            })
            .expect("powerline node exists");

        // Serial side: the command protocol. The two-byte command and its
        // commit arrive as one serial exchange each.
        let pending: Arc<Mutex<Option<[u8; 2]>>> = Arc::new(Mutex::new(None));
        let buffer3 = buffer.clone();
        serial
            .set_request_handler(serial_node, move |sim, frame| {
                sim.advance(SimDuration::from_millis(1)); // 8-bit MCU
                let bytes = &frame.payload;
                match bytes.len() {
                    2 => {
                        // Header/code pair: store and echo the checksum.
                        let pair = [bytes[0], bytes[1]];
                        *pending.lock() = Some(pair);
                        let checksum = pair[0].wrapping_add(pair[1]);
                        Ok(vec![checksum].into())
                    }
                    1 if bytes[0] == ACK_OK => {
                        // Commit: transmit the stored command on the
                        // powerline.
                        let Some(pair) = pending.lock().take() else {
                            return Err("commit without pending command".into());
                        };
                        match decode_pc_command(pair) {
                            Some(frame) => {
                                let _ = pl_tx.transmit_frame(frame);
                                Ok(vec![IF_READY].into())
                            }
                            None => Err("malformed command".into()),
                        }
                    }
                    1 if bytes[0] == POLL_FETCH => {
                        // Upload and clear the receive buffer.
                        let mut buf = buffer3.lock();
                        let mut out = vec![buf.len() as u8];
                        for f in buf.drain(..) {
                            out.extend_from_slice(&f.encode());
                        }
                        Ok(out.into())
                    }
                    _ => Err(format!("unexpected serial bytes {bytes:?}")),
                }
            })
            .expect("serial node exists");

        Cm11a {
            serial_node,
            buffer,
        }
    }

    /// The interface's node on the serial line.
    pub fn serial_node(&self) -> NodeId {
        self.serial_node
    }

    /// Frames waiting in the receive buffer (for tests).
    pub fn buffered(&self) -> usize {
        self.buffer.lock().len()
    }
}

impl fmt::Debug for Cm11a {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cm11a")
            .field("serial_node", &self.serial_node)
            .field("buffered", &self.buffered())
            .finish()
    }
}

fn encode_pc_command(frame: X10Frame) -> [u8; 2] {
    match frame {
        X10Frame::Address { house, unit } => [0x04, house.code() << 4 | unit.code()],
        X10Frame::Function {
            house,
            function,
            dims,
        } => [
            0x06 | (dims.min(22) << 3),
            house.code() << 4 | function.code(),
        ],
    }
}

fn decode_pc_command(pair: [u8; 2]) -> Option<X10Frame> {
    let house = HouseCode::from_code(pair[1] >> 4)?;
    if pair[0] & 0x02 == 0 {
        Some(X10Frame::Address {
            house,
            unit: UnitCode::from_code(pair[1])?,
        })
    } else {
        Some(X10Frame::Function {
            house,
            function: Function::from_code(pair[1])?,
            dims: pair[0] >> 3,
        })
    }
}

/// Errors surfaced by the PC-side driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cm11aError {
    /// The serial line failed.
    Serial(String),
    /// The interface's checksum did not match ours.
    ChecksumMismatch {
        /// What we computed.
        expected: u8,
        /// What the interface echoed.
        got: u8,
    },
    /// The interface replied with something unexpected.
    Protocol(String),
}

impl fmt::Display for Cm11aError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cm11aError::Serial(m) => write!(f, "serial error: {m}"),
            Cm11aError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:02x}, got {got:02x}"
                )
            }
            Cm11aError::Protocol(m) => write!(f, "CM11A protocol error: {m}"),
        }
    }
}

impl std::error::Error for Cm11aError {}

/// The PC-side driver speaking the CM11A serial protocol.
#[derive(Debug, Clone)]
pub struct Cm11aDriver {
    serial: Network,
    pc: NodeId,
    interface: NodeId,
}

impl Cm11aDriver {
    /// Creates a driver for the interface at `interface`, talking from a
    /// fresh PC node on `serial`.
    pub fn new(serial: &Network, interface: NodeId) -> Cm11aDriver {
        Cm11aDriver {
            serial: serial.clone(),
            pc: serial.attach("pc-serial"),
            interface,
        }
    }

    fn exchange(&self, bytes: Vec<u8>) -> Result<Vec<u8>, Cm11aError> {
        self.serial
            .request(self.pc, self.interface, Protocol::X10, bytes)
            .map(|b| b.to_vec())
            .map_err(|e| Cm11aError::Serial(e.to_string()))
    }

    fn send_frame(&self, frame: X10Frame) -> Result<(), Cm11aError> {
        let pair = encode_pc_command(frame);
        let expected = pair[0].wrapping_add(pair[1]);
        let echo = self.exchange(pair.to_vec())?;
        match echo.first() {
            Some(&got) if got == expected => {}
            Some(&got) => return Err(Cm11aError::ChecksumMismatch { expected, got }),
            None => return Err(Cm11aError::Protocol("empty checksum reply".into())),
        }
        let ready = self.exchange(vec![ACK_OK])?;
        if ready.first() == Some(&IF_READY) {
            Ok(())
        } else {
            Err(Cm11aError::Protocol(format!(
                "expected 0x55 ready, got {ready:?}"
            )))
        }
    }

    /// Sends a complete X10 command (address then function).
    pub fn send_command(
        &self,
        house: HouseCode,
        unit: UnitCode,
        function: Function,
    ) -> Result<(), Cm11aError> {
        self.send_command_dims(house, unit, function, 0)
    }

    /// Sends a command with a dim/bright step count.
    pub fn send_command_dims(
        &self,
        house: HouseCode,
        unit: UnitCode,
        function: Function,
        dims: u8,
    ) -> Result<(), Cm11aError> {
        self.send_frame(X10Frame::Address { house, unit })?;
        self.send_frame(X10Frame::Function {
            house,
            function,
            dims,
        })
    }

    /// Fetches everything the interface has heard on the powerline since
    /// the last poll.
    pub fn poll(&self) -> Result<Vec<X10Frame>, Cm11aError> {
        let data = self.exchange(vec![POLL_FETCH])?;
        let count = *data
            .first()
            .ok_or(Cm11aError::Protocol("empty poll reply".into()))? as usize;
        let mut frames = Vec::with_capacity(count);
        for i in 0..count {
            let at = 1 + i * 2;
            let pair = data
                .get(at..at + 2)
                .ok_or(Cm11aError::Protocol("truncated poll reply".into()))?;
            if let Some(f) = X10Frame::decode(pair) {
                frames.push(f);
            }
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Module, ModuleKind};
    use simnet::Sim;

    fn world() -> (Sim, Network, Network, Cm11a, Cm11aDriver) {
        let sim = Sim::new(1);
        let serial = Network::serial(&sim);
        let mut link = simnet::netkind::powerline();
        link.loss_prob = 0.0;
        let powerline = Network::new(&sim, "powerline", link);
        let cm11a = Cm11a::install(&serial, &powerline);
        let driver = Cm11aDriver::new(&serial, cm11a.serial_node());
        (sim, serial, powerline, cm11a, driver)
    }

    fn h(c: char) -> HouseCode {
        HouseCode::new(c).unwrap()
    }
    fn u(n: u8) -> UnitCode {
        UnitCode::new(n).unwrap()
    }

    #[test]
    fn pc_command_switches_module() {
        let (_sim, _serial, powerline, _cm11a, driver) = world();
        let lamp = Module::plug_in(&powerline, "lamp", ModuleKind::Lamp, h('A'), u(1));
        driver.send_command(h('A'), u(1), Function::On).unwrap();
        assert!(lamp.is_on());
        driver.send_command(h('A'), u(1), Function::Off).unwrap();
        assert!(!lamp.is_on());
    }

    #[test]
    fn dim_through_interface() {
        let (_sim, _serial, powerline, _cm11a, driver) = world();
        let lamp = Module::plug_in(&powerline, "lamp", ModuleKind::Lamp, h('A'), u(1));
        driver.send_command(h('A'), u(1), Function::On).unwrap();
        driver
            .send_command_dims(h('A'), u(1), Function::Dim, 6)
            .unwrap();
        assert_eq!(lamp.state().level, crate::module::MAX_DIM_STEPS - 6);
    }

    #[test]
    fn poll_returns_overheard_traffic() {
        let (_sim, _serial, powerline, cm11a, driver) = world();
        // Somebody else's remote talks on the powerline.
        let remote = Transmitter::attach(&powerline, "remote");
        remote.send_command(h('C'), u(9), Function::On);
        assert_eq!(cm11a.buffered(), 2);

        let frames = driver.poll().unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(
            frames[0],
            X10Frame::Address {
                house: h('C'),
                unit: u(9)
            }
        );
        assert!(matches!(
            frames[1],
            X10Frame::Function {
                function: Function::On,
                ..
            }
        ));
        // Buffer drained.
        assert!(driver.poll().unwrap().is_empty());
    }

    #[test]
    fn buffer_overwrites_oldest_when_full() {
        let (_sim, _serial, powerline, cm11a, driver) = world();
        let remote = Transmitter::attach(&powerline, "remote");
        for n in 1..=8u8 {
            remote.transmit_frame(X10Frame::Address {
                house: h('A'),
                unit: u(n),
            });
        }
        assert_eq!(cm11a.buffered(), RX_BUFFER_FRAMES);
        let frames = driver.poll().unwrap();
        // Oldest three were overwritten; units 4..=8 remain.
        assert_eq!(frames.len(), RX_BUFFER_FRAMES);
        assert_eq!(
            frames[0],
            X10Frame::Address {
                house: h('A'),
                unit: u(4)
            }
        );
    }

    #[test]
    fn commit_without_command_is_protocol_error() {
        let (_sim, serial, _powerline, cm11a, _driver) = world();
        let pc = serial.attach("rogue-pc");
        let err = serial
            .request(pc, cm11a.serial_node(), Protocol::X10, vec![ACK_OK])
            .unwrap_err();
        assert!(err.to_string().contains("commit without pending"));
    }

    #[test]
    fn own_transmissions_are_not_buffered() {
        let (_sim, _serial, _powerline, cm11a, driver) = world();
        driver.send_command(h('A'), u(1), Function::On).unwrap();
        // The CM11A does not hear itself (broadcast excludes the sender).
        assert_eq!(cm11a.buffered(), 0);
    }

    #[test]
    fn serial_protocol_has_visible_cost() {
        let (sim, _serial, _powerline, _cm11a, driver) = world();
        let before = sim.now();
        driver.send_command(h('A'), u(1), Function::On).unwrap();
        let elapsed = sim.now() - before;
        // 4 serial exchanges + 2 powerline frames: dominated by the
        // powerline (hundreds of ms).
        assert!(elapsed.as_millis() >= 200, "took {elapsed}");
    }
}
