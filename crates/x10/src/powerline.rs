//! The powerline medium and X10 transmitters.
//!
//! X10 signalling is broadcast, slow (~1 bit per AC zero-crossing) and
//! **unacknowledged**: a transmitter fires its frames into the mains and
//! hopes. Receivers latch address frames and apply the next function
//! frame for their house code. Noise loses frames; nobody is told.

use crate::codec::{Function, HouseCode, UnitCode, X10Frame};
use simnet::{Addr, Frame, Network, NodeId, Protocol, Sim, SimDuration};
use std::fmt;

/// A transmitter attached to the powerline.
#[derive(Debug, Clone)]
pub struct Transmitter {
    net: Network,
    node: NodeId,
}

impl Transmitter {
    /// Attaches a transmitter-only device (e.g. a remote, the CM11A).
    pub fn attach(net: &Network, label: &str) -> Transmitter {
        Transmitter {
            net: net.clone(),
            node: net.attach(label),
        }
    }

    /// Wraps an existing powerline node.
    pub fn on_node(net: &Network, node: NodeId) -> Transmitter {
        Transmitter {
            net: net.clone(),
            node,
        }
    }

    /// The transmitter's powerline node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The powerline this transmitter is attached to.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Puts one raw frame on the powerline. Returns `false` if the frame
    /// was lost to noise (the transmitter itself never knows; the return
    /// value is for tests and statistics).
    pub fn transmit_frame(&self, frame: X10Frame) -> bool {
        let wire = Frame::new(
            self.node,
            Addr::Broadcast,
            Protocol::X10,
            frame.encode().to_vec(),
        );
        self.net.send(wire).is_ok()
    }

    /// Sends a complete command: the address frame, the mandated
    /// 3-cycle gap, then the function frame. Either frame can be lost
    /// independently. Returns which frames made it.
    pub fn send_command(
        &self,
        house: HouseCode,
        unit: UnitCode,
        function: Function,
    ) -> SendOutcome {
        self.send_command_dims(house, unit, function, 0)
    }

    /// Like [`Transmitter::send_command`] with a dim/bright step count.
    pub fn send_command_dims(
        &self,
        house: HouseCode,
        unit: UnitCode,
        function: Function,
        dims: u8,
    ) -> SendOutcome {
        let sim = self.net.sim().clone();
        let address_ok = self.transmit_frame(X10Frame::Address { house, unit });
        // Three silent power-line cycles between address and function.
        sim.advance(SimDuration::from_millis(50));
        let function_ok = self.transmit_frame(X10Frame::Function {
            house,
            function,
            dims,
        });
        SendOutcome {
            address_ok,
            function_ok,
        }
    }

    /// Sends a house-wide function (no address frame needed).
    pub fn send_house_function(&self, house: HouseCode, function: Function) -> bool {
        self.transmit_frame(X10Frame::Function {
            house,
            function,
            dims: 0,
        })
    }
}

/// Which halves of a two-frame command survived the powerline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendOutcome {
    /// The address frame was delivered.
    pub address_ok: bool,
    /// The function frame was delivered.
    pub function_ok: bool,
}

impl SendOutcome {
    /// True if the command as a whole took effect.
    pub fn delivered(self) -> bool {
        self.address_ok && self.function_ok
    }
}

impl fmt::Display for SendOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.address_ok, self.function_ok) {
            (true, true) => write!(f, "delivered"),
            (false, _) => write!(f, "lost address frame"),
            (true, false) => write!(f, "lost function frame"),
        }
    }
}

/// A retrying sender: X10 has no acknowledgements, so reliability-minded
/// controllers (like the paper's X10 PCM) blindly repeat commands.
pub fn send_with_repeats(
    tx: &Transmitter,
    house: HouseCode,
    unit: UnitCode,
    function: Function,
    repeats: u32,
) -> bool {
    let mut any = false;
    for _ in 0..repeats.max(1) {
        if tx.send_command(house, unit, function).delivered() {
            any = true;
        }
    }
    any
}

/// Installs an X10 receiver on `node`: decodes broadcast frames for
/// `house`, maintains the address latch, and calls `on_function` with the
/// latched units each time a function frame arrives.
pub fn install_receiver(
    net: &Network,
    node: NodeId,
    house: HouseCode,
    mut on_function: impl FnMut(&Sim, Function, u8, &[UnitCode]) + Send + 'static,
) {
    let mut latched: Vec<UnitCode> = Vec::new();
    net.set_frame_handler(node, move |sim, frame| {
        let Some(decoded) = X10Frame::decode(&frame.payload) else {
            return;
        };
        if decoded.house() != house {
            return;
        }
        match decoded {
            X10Frame::Address { unit, .. } => {
                if !latched.contains(&unit) {
                    latched.push(unit);
                }
            }
            X10Frame::Function { function, dims, .. } => {
                on_function(sim, function, dims, &latched);
                // The latch clears after a non-dim function completes.
                if !matches!(function, Function::Dim | Function::Bright) {
                    latched.clear();
                }
            }
        }
    })
    .expect("receiver node exists");
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use simnet::{LinkModel, Sim};
    use std::sync::Arc;

    fn lossless_powerline(sim: &Sim) -> Network {
        let mut link = simnet::netkind::powerline();
        link.loss_prob = 0.0;
        Network::new(sim, "powerline", link)
    }

    fn h(c: char) -> HouseCode {
        HouseCode::new(c).unwrap()
    }
    fn u(n: u8) -> UnitCode {
        UnitCode::new(n).unwrap()
    }

    #[test]
    fn command_reaches_receiver_with_latched_unit() {
        let sim = Sim::new(1);
        let net = lossless_powerline(&sim);
        let tx = Transmitter::attach(&net, "remote");
        let rx_node = net.attach("lamp");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        install_receiver(&net, rx_node, h('A'), move |_, f, _, units| {
            seen2.lock().push((f, units.to_vec()));
        });
        let outcome = tx.send_command(h('A'), u(3), Function::On);
        assert!(outcome.delivered());
        let seen = seen.lock();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, Function::On);
        assert_eq!(seen[0].1, vec![u(3)]);
    }

    #[test]
    fn other_house_codes_are_ignored() {
        let sim = Sim::new(1);
        let net = lossless_powerline(&sim);
        let tx = Transmitter::attach(&net, "remote");
        let rx_node = net.attach("lamp");
        let count = Arc::new(Mutex::new(0u32));
        let count2 = count.clone();
        install_receiver(&net, rx_node, h('B'), move |_, _, _, _| *count2.lock() += 1);
        tx.send_command(h('A'), u(1), Function::On);
        assert_eq!(*count.lock(), 0);
    }

    #[test]
    fn multi_unit_latching() {
        let sim = Sim::new(1);
        let net = lossless_powerline(&sim);
        let tx = Transmitter::attach(&net, "ctl");
        let rx_node = net.attach("watcher");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        install_receiver(&net, rx_node, h('A'), move |_, f, _, units| {
            seen2.lock().push((f, units.to_vec()));
        });
        // Address two units, then one function: both switch.
        tx.transmit_frame(X10Frame::Address {
            house: h('A'),
            unit: u(1),
        });
        tx.transmit_frame(X10Frame::Address {
            house: h('A'),
            unit: u(2),
        });
        tx.transmit_frame(X10Frame::Function {
            house: h('A'),
            function: Function::Off,
            dims: 0,
        });
        let seen = seen.lock();
        assert_eq!(seen[0].1, vec![u(1), u(2)]);
    }

    #[test]
    fn latch_persists_through_dim_clears_after_off() {
        let sim = Sim::new(1);
        let net = lossless_powerline(&sim);
        let tx = Transmitter::attach(&net, "ctl");
        let rx_node = net.attach("watcher");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        install_receiver(&net, rx_node, h('A'), move |_, f, _, units| {
            seen2.lock().push((f, units.len()));
        });
        tx.transmit_frame(X10Frame::Address {
            house: h('A'),
            unit: u(5),
        });
        tx.transmit_frame(X10Frame::Function {
            house: h('A'),
            function: Function::Dim,
            dims: 3,
        });
        tx.transmit_frame(X10Frame::Function {
            house: h('A'),
            function: Function::Dim,
            dims: 3,
        });
        tx.transmit_frame(X10Frame::Function {
            house: h('A'),
            function: Function::Off,
            dims: 0,
        });
        tx.transmit_frame(X10Frame::Function {
            house: h('A'),
            function: Function::On,
            dims: 0,
        });
        let seen = seen.lock();
        assert_eq!(
            *seen,
            vec![
                (Function::Dim, 1),
                (Function::Dim, 1),
                (Function::Off, 1),
                (Function::On, 0), // latch cleared by Off
            ]
        );
    }

    #[test]
    fn x10_commands_are_slow() {
        let sim = Sim::new(1);
        let net = lossless_powerline(&sim);
        let tx = Transmitter::attach(&net, "remote");
        let _rx = net.attach("lamp");
        let before = sim.now();
        tx.send_command(h('A'), u(1), Function::On);
        let elapsed = sim.now() - before;
        // Two ~13-bit frames at ~60 bps plus the inter-frame gap: hundreds
        // of milliseconds — the latency floor E1/E3 observe for X10.
        assert!(elapsed.as_millis() >= 300, "took {elapsed}");
    }

    #[test]
    fn lossy_powerline_drops_commands_sometimes() {
        let sim = Sim::new(123);
        let net = Network::new(
            &sim,
            "noisy-powerline",
            LinkModel {
                loss_prob: 0.3,
                ..simnet::netkind::powerline()
            },
        );
        let tx = Transmitter::attach(&net, "remote");
        let _rx = net.attach("lamp");
        let mut delivered = 0;
        for _ in 0..60 {
            if tx.send_command(h('A'), u(1), Function::On).delivered() {
                delivered += 1;
            }
        }
        // ~0.7^2 = 49% expected delivery.
        assert!((15..45).contains(&delivered), "delivered {delivered}/60");
        // Blind repetition helps (the PCM's mitigation).
        let ok = send_with_repeats(&tx, h('A'), u(1), Function::On, 3);
        let _ = ok; // probabilistic; just exercising the path
    }
}
