//! X10 motion sensors.
//!
//! The paper's event-based multimedia experiment (§4.2) uses "X10 motion
//! sensors". A sensor is a battery transmitter: on motion it sends `On`
//! for its unit, and (after a quiet interval) `Off`. It never listens.

use crate::codec::{Function, HouseCode, UnitCode};
use crate::powerline::Transmitter;
use simnet::{Network, SimDuration};

/// A motion sensor on the powerline.
#[derive(Debug, Clone)]
pub struct MotionSensor {
    tx: Transmitter,
    house: HouseCode,
    unit: UnitCode,
    auto_clear: Option<SimDuration>,
}

impl MotionSensor {
    /// Installs a sensor transmitting as `house`/`unit`.
    pub fn install(net: &Network, label: &str, house: HouseCode, unit: UnitCode) -> MotionSensor {
        MotionSensor {
            tx: Transmitter::attach(net, label),
            house,
            unit,
            auto_clear: Some(SimDuration::from_secs(60)),
        }
    }

    /// Sets (or disables) the automatic `Off` after motion stops.
    pub fn set_auto_clear(&mut self, after: Option<SimDuration>) {
        self.auto_clear = after;
    }

    /// The sensor's address.
    pub fn address(&self) -> (HouseCode, UnitCode) {
        (self.house, self.unit)
    }

    /// Motion detected: transmits `On` now and schedules the `Off`
    /// transmission if auto-clear is enabled. Returns whether the `On`
    /// command survived the powerline.
    pub fn trigger(&self) -> bool {
        let delivered = self
            .tx
            .send_command(self.house, self.unit, Function::On)
            .delivered();
        if let Some(after) = self.auto_clear {
            let tx = self.tx.clone();
            let (house, unit) = (self.house, self.unit);
            let net_sim = tx_sim(&self.tx);
            net_sim.schedule_in(after, move |_| {
                let _ = tx.send_command(house, unit, Function::Off);
            });
        }
        delivered
    }

    /// Motion ended: transmits `Off` immediately.
    pub fn clear(&self) -> bool {
        self.tx
            .send_command(self.house, self.unit, Function::Off)
            .delivered()
    }
}

fn tx_sim(tx: &Transmitter) -> simnet::Sim {
    tx.network().sim().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerline::install_receiver;
    use parking_lot::Mutex;
    use simnet::Sim;
    use std::sync::Arc;

    fn world() -> (Sim, Network) {
        let sim = Sim::new(1);
        let mut link = simnet::netkind::powerline();
        link.loss_prob = 0.0;
        (sim.clone(), Network::new(&sim, "powerline", link))
    }

    fn h(c: char) -> HouseCode {
        HouseCode::new(c).unwrap()
    }
    fn u(n: u8) -> UnitCode {
        UnitCode::new(n).unwrap()
    }

    #[test]
    fn trigger_sends_on_then_scheduled_off() {
        let (sim, net) = world();
        let mut sensor = MotionSensor::install(&net, "hall-sensor", h('C'), u(9));
        sensor.set_auto_clear(Some(SimDuration::from_secs(30)));

        let watcher = net.attach("watcher");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        install_receiver(&net, watcher, h('C'), move |_, f, _, units| {
            seen2.lock().push((f, units.to_vec()));
        });

        assert!(sensor.trigger());
        assert_eq!(seen.lock().len(), 1);
        assert_eq!(seen.lock()[0].0, Function::On);

        // The Off arrives only after the quiet interval elapses.
        sim.run_for(SimDuration::from_secs(29));
        assert_eq!(seen.lock().len(), 1);
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(seen.lock().len(), 2);
        assert_eq!(seen.lock()[1].0, Function::Off);
    }

    #[test]
    fn manual_clear_and_disabled_auto_clear() {
        let (sim, net) = world();
        let mut sensor = MotionSensor::install(&net, "sensor", h('C'), u(1));
        sensor.set_auto_clear(None);
        assert_eq!(sensor.address(), (h('C'), u(1)));

        let watcher = net.attach("watcher");
        let count = Arc::new(Mutex::new(0u32));
        let count2 = count.clone();
        install_receiver(&net, watcher, h('C'), move |_, _, _, _| *count2.lock() += 1);

        sensor.trigger();
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(*count.lock(), 1, "no auto-off scheduled");
        sensor.clear();
        assert_eq!(*count.lock(), 2);
    }
}
