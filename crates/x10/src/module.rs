//! X10 receiver modules: lamp and appliance modules.

use crate::codec::{Function, HouseCode, UnitCode};
use crate::powerline::install_receiver;
use parking_lot::Mutex;
use simnet::Network;
use std::fmt;
use std::sync::Arc;

/// Maximum dim level (fully bright); X10 lamp modules have 22 steps.
pub const MAX_DIM_STEPS: u8 = 22;

/// Observable state of a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleState {
    /// Powered on?
    pub on: bool,
    /// Brightness `0..=22` (lamps; appliances stay at 22).
    pub level: u8,
}

/// What kind of module this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleKind {
    /// Dimmable lamp module (responds to AllLights*).
    Lamp,
    /// Relay appliance module (ignores AllLightsOn/Off).
    Appliance,
}

/// An X10 receiver module plugged into the powerline.
#[derive(Clone)]
pub struct Module {
    house: HouseCode,
    unit: UnitCode,
    kind: ModuleKind,
    state: Arc<Mutex<ModuleState>>,
}

impl Module {
    /// Plugs a module into the powerline at `house`/`unit`.
    pub fn plug_in(
        net: &Network,
        label: &str,
        kind: ModuleKind,
        house: HouseCode,
        unit: UnitCode,
    ) -> Module {
        let node = net.attach(label);
        let state = Arc::new(Mutex::new(ModuleState {
            on: false,
            level: MAX_DIM_STEPS,
        }));
        let state2 = state.clone();
        install_receiver(net, node, house, move |_sim, function, dims, latched| {
            let addressed = latched.contains(&unit);
            let mut st = state2.lock();
            match function {
                Function::On if addressed => st.on = true,
                Function::Off if addressed => st.on = false,
                Function::Dim if addressed && kind == ModuleKind::Lamp => {
                    st.level = st.level.saturating_sub(dims.max(1));
                    st.on = true;
                }
                Function::Bright if addressed && kind == ModuleKind::Lamp => {
                    st.level = (st.level + dims.max(1)).min(MAX_DIM_STEPS);
                    st.on = true;
                }
                Function::AllUnitsOff => st.on = false,
                Function::AllLightsOn if kind == ModuleKind::Lamp => {
                    st.on = true;
                    st.level = MAX_DIM_STEPS;
                }
                Function::AllLightsOff if kind == ModuleKind::Lamp => st.on = false,
                _ => {}
            }
        });
        Module {
            house,
            unit,
            kind,
            state,
        }
    }

    /// The module's house code.
    pub fn house(&self) -> HouseCode {
        self.house
    }

    /// The module's unit code.
    pub fn unit(&self) -> UnitCode {
        self.unit
    }

    /// The module's kind.
    pub fn kind(&self) -> ModuleKind {
        self.kind
    }

    /// Current observable state.
    pub fn state(&self) -> ModuleState {
        *self.state.lock()
    }

    /// True if currently on.
    pub fn is_on(&self) -> bool {
        self.state.lock().on
    }
}

impl fmt::Debug for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Module")
            .field("addr", &format!("{}{}", self.house, self.unit))
            .field("kind", &self.kind)
            .field("state", &self.state())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerline::Transmitter;
    use simnet::Sim;

    fn world() -> (Sim, Network, Transmitter) {
        let sim = Sim::new(1);
        let mut link = simnet::netkind::powerline();
        link.loss_prob = 0.0;
        let net = Network::new(&sim, "powerline", link);
        let tx = Transmitter::attach(&net, "controller");
        (sim, net, tx)
    }

    fn h(c: char) -> HouseCode {
        HouseCode::new(c).unwrap()
    }
    fn u(n: u8) -> UnitCode {
        UnitCode::new(n).unwrap()
    }

    #[test]
    fn on_off_cycle() {
        let (_sim, net, tx) = world();
        let lamp = Module::plug_in(&net, "lamp", ModuleKind::Lamp, h('A'), u(1));
        assert!(!lamp.is_on());
        tx.send_command(h('A'), u(1), Function::On);
        assert!(lamp.is_on());
        tx.send_command(h('A'), u(1), Function::Off);
        assert!(!lamp.is_on());
    }

    #[test]
    fn addressing_is_unit_specific() {
        let (_sim, net, tx) = world();
        let lamp1 = Module::plug_in(&net, "lamp1", ModuleKind::Lamp, h('A'), u(1));
        let lamp2 = Module::plug_in(&net, "lamp2", ModuleKind::Lamp, h('A'), u(2));
        tx.send_command(h('A'), u(2), Function::On);
        assert!(!lamp1.is_on());
        assert!(lamp2.is_on());
    }

    #[test]
    fn dimming_steps_and_bounds() {
        let (_sim, net, tx) = world();
        let lamp = Module::plug_in(&net, "lamp", ModuleKind::Lamp, h('A'), u(1));
        tx.send_command(h('A'), u(1), Function::On);
        assert_eq!(lamp.state().level, MAX_DIM_STEPS);
        tx.send_command_dims(h('A'), u(1), Function::Dim, 5);
        assert_eq!(lamp.state().level, MAX_DIM_STEPS - 5);
        tx.send_command_dims(h('A'), u(1), Function::Dim, 50);
        assert_eq!(lamp.state().level, 0);
        tx.send_command_dims(h('A'), u(1), Function::Bright, 7);
        assert_eq!(lamp.state().level, 7);
        tx.send_command_dims(h('A'), u(1), Function::Bright, 50);
        assert_eq!(lamp.state().level, MAX_DIM_STEPS);
    }

    #[test]
    fn appliances_do_not_dim() {
        let (_sim, net, tx) = world();
        let fan = Module::plug_in(&net, "fan", ModuleKind::Appliance, h('A'), u(4));
        tx.send_command(h('A'), u(4), Function::On);
        tx.send_command_dims(h('A'), u(4), Function::Dim, 5);
        assert_eq!(fan.state().level, MAX_DIM_STEPS);
        assert!(fan.is_on());
    }

    #[test]
    fn house_wide_functions_respect_module_kind() {
        let (_sim, net, tx) = world();
        let lamp = Module::plug_in(&net, "lamp", ModuleKind::Lamp, h('A'), u(1));
        let fan = Module::plug_in(&net, "fan", ModuleKind::Appliance, h('A'), u(2));
        tx.send_house_function(h('A'), Function::AllLightsOn);
        assert!(lamp.is_on());
        assert!(!fan.is_on(), "appliances ignore AllLightsOn");
        tx.send_command(h('A'), u(2), Function::On);
        tx.send_house_function(h('A'), Function::AllUnitsOff);
        assert!(!lamp.is_on());
        assert!(!fan.is_on(), "AllUnitsOff hits everything");
    }
}
