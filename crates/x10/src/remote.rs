//! The handheld X10 remote controller.
//!
//! The physical artefact of Fig. 5: a 16-button wand. Button presses map
//! to unit On/Off/Dim/Bright commands on the remote's house code. In the
//! paper's Universal Remote Controller application, the X10 PCM watches
//! these commands and re-routes some units to Jini and HAVi services.

use crate::codec::{Function, HouseCode, UnitCode};
use crate::powerline::Transmitter;
use simnet::Network;
use std::fmt;

/// Which button was pressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Button {
    /// The numbered unit's ON button.
    On(u8),
    /// The numbered unit's OFF button.
    Off(u8),
    /// Dim the last-addressed unit.
    Dim(u8),
    /// Brighten the last-addressed unit.
    Bright(u8),
    /// ALL LIGHTS ON.
    AllLightsOn,
    /// ALL OFF.
    AllOff,
}

/// A handheld remote.
#[derive(Clone)]
pub struct Remote {
    tx: Transmitter,
    house: HouseCode,
    last_unit: u8,
}

impl Remote {
    /// Pairs a remote with `house` (the code wheel on the back).
    pub fn new(net: &Network, label: &str, house: HouseCode) -> Remote {
        Remote {
            tx: Transmitter::attach(net, label),
            house,
            last_unit: 1,
        }
    }

    /// The remote's house code.
    pub fn house(&self) -> HouseCode {
        self.house
    }

    /// Presses a button, transmitting the corresponding command.
    /// Returns `true` if the command survived the powerline.
    pub fn press(&mut self, button: Button) -> bool {
        match button {
            Button::On(unit) => self.unit_command(unit, Function::On),
            Button::Off(unit) => self.unit_command(unit, Function::Off),
            Button::Dim(steps) => {
                let unit = self.last_unit;
                self.dim_command(unit, Function::Dim, steps)
            }
            Button::Bright(steps) => {
                let unit = self.last_unit;
                self.dim_command(unit, Function::Bright, steps)
            }
            Button::AllLightsOn => self
                .tx
                .send_house_function(self.house, Function::AllLightsOn),
            Button::AllOff => self
                .tx
                .send_house_function(self.house, Function::AllUnitsOff),
        }
    }

    fn unit_command(&mut self, unit: u8, function: Function) -> bool {
        let Some(u) = UnitCode::new(unit) else {
            return false;
        };
        self.last_unit = unit;
        self.tx.send_command(self.house, u, function).delivered()
    }

    fn dim_command(&mut self, unit: u8, function: Function, steps: u8) -> bool {
        let Some(u) = UnitCode::new(unit) else {
            return false;
        };
        self.tx
            .send_command_dims(self.house, u, function, steps)
            .delivered()
    }
}

impl fmt::Debug for Remote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Remote")
            .field("house", &self.house)
            .field("last_unit", &self.last_unit)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Module, ModuleKind};
    use simnet::Sim;

    fn world() -> (Sim, Network) {
        let sim = Sim::new(1);
        let mut link = simnet::netkind::powerline();
        link.loss_prob = 0.0;
        (sim.clone(), Network::new(&sim, "powerline", link))
    }

    fn h(c: char) -> HouseCode {
        HouseCode::new(c).unwrap()
    }
    fn u(n: u8) -> UnitCode {
        UnitCode::new(n).unwrap()
    }

    #[test]
    fn buttons_drive_modules() {
        let (_sim, net) = world();
        let lamp = Module::plug_in(&net, "lamp", ModuleKind::Lamp, h('A'), u(2));
        let mut remote = Remote::new(&net, "remote", h('A'));
        assert!(remote.press(Button::On(2)));
        assert!(lamp.is_on());
        assert!(remote.press(Button::Dim(4)));
        assert_eq!(lamp.state().level, crate::module::MAX_DIM_STEPS - 4);
        assert!(remote.press(Button::Off(2)));
        assert!(!lamp.is_on());
    }

    #[test]
    fn dim_uses_last_addressed_unit() {
        let (_sim, net) = world();
        let lamp1 = Module::plug_in(&net, "lamp1", ModuleKind::Lamp, h('A'), u(1));
        let lamp2 = Module::plug_in(&net, "lamp2", ModuleKind::Lamp, h('A'), u(2));
        let mut remote = Remote::new(&net, "remote", h('A'));
        remote.press(Button::On(1));
        remote.press(Button::On(2));
        remote.press(Button::Dim(3));
        assert_eq!(lamp1.state().level, crate::module::MAX_DIM_STEPS);
        assert_eq!(lamp2.state().level, crate::module::MAX_DIM_STEPS - 3);
    }

    #[test]
    fn house_buttons() {
        let (_sim, net) = world();
        let lamp = Module::plug_in(&net, "lamp", ModuleKind::Lamp, h('A'), u(1));
        let fan = Module::plug_in(&net, "fan", ModuleKind::Appliance, h('A'), u(2));
        let mut remote = Remote::new(&net, "remote", h('A'));
        remote.press(Button::On(2));
        assert!(remote.press(Button::AllLightsOn));
        assert!(lamp.is_on());
        assert!(remote.press(Button::AllOff));
        assert!(!lamp.is_on());
        assert!(!fan.is_on());
    }

    #[test]
    fn invalid_unit_is_rejected_locally() {
        let (_sim, net) = world();
        let mut remote = Remote::new(&net, "remote", h('A'));
        assert!(!remote.press(Button::On(0)));
        assert!(!remote.press(Button::On(17)));
    }
}
