//! X10 protocol codes.
//!
//! X10 signalling uses a famously non-contiguous 4-bit code table for
//! house and unit codes (a hardware artefact of the original 1978
//! design), and a 4-bit function set. The tables below are the real ones
//! from the CM11A programming protocol (paper ref. \[15\]).

use std::fmt;

/// A house code, `A` through `P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HouseCode(char);

/// A unit code, `1` through `16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitCode(u8);

/// The X10 4-bit code table, indexed by house letter (A..P) or unit
/// number (1..16).
const CODE_TABLE: [u8; 16] = [
    0b0110, // A / 1
    0b1110, // B / 2
    0b0010, // C / 3
    0b1010, // D / 4
    0b0001, // E / 5
    0b1001, // F / 6
    0b0101, // G / 7
    0b1101, // H / 8
    0b0111, // I / 9
    0b1111, // J / 10
    0b0011, // K / 11
    0b1011, // L / 12
    0b0000, // M / 13
    0b1000, // N / 14
    0b0100, // O / 15
    0b1100, // P / 16
];

fn decode_nibble(code: u8) -> Option<usize> {
    CODE_TABLE.iter().position(|c| *c == code & 0x0F)
}

impl HouseCode {
    /// Creates a house code from a letter `A..=P` (case-insensitive).
    pub fn new(letter: char) -> Option<HouseCode> {
        let up = letter.to_ascii_uppercase();
        ('A'..='P').contains(&up).then_some(HouseCode(up))
    }

    /// The letter.
    pub fn letter(self) -> char {
        self.0
    }

    /// The 4-bit wire code.
    pub fn code(self) -> u8 {
        CODE_TABLE[(self.0 as u8 - b'A') as usize]
    }

    /// Inverse of [`HouseCode::code`].
    pub fn from_code(code: u8) -> Option<HouseCode> {
        decode_nibble(code).map(|i| HouseCode((b'A' + i as u8) as char))
    }
}

impl UnitCode {
    /// Creates a unit code from a number `1..=16`.
    pub fn new(unit: u8) -> Option<UnitCode> {
        (1..=16).contains(&unit).then_some(UnitCode(unit))
    }

    /// The unit number.
    pub fn number(self) -> u8 {
        self.0
    }

    /// The 4-bit wire code.
    pub fn code(self) -> u8 {
        CODE_TABLE[(self.0 - 1) as usize]
    }

    /// Inverse of [`UnitCode::code`].
    pub fn from_code(code: u8) -> Option<UnitCode> {
        decode_nibble(code).map(|i| UnitCode(i as u8 + 1))
    }
}

impl fmt::Display for HouseCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for UnitCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An X10 function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Function {
    /// All units in the house off.
    AllUnitsOff,
    /// All lamp modules on.
    AllLightsOn,
    /// Switch the addressed unit(s) on.
    On,
    /// Switch the addressed unit(s) off.
    Off,
    /// Dim the addressed lamp(s) one step.
    Dim,
    /// Brighten the addressed lamp(s) one step.
    Bright,
    /// All lamp modules off.
    AllLightsOff,
    /// Status request (two-way modules).
    StatusRequest,
    /// Status reply: on.
    StatusOn,
    /// Status reply: off.
    StatusOff,
}

impl Function {
    /// The 4-bit wire code.
    pub fn code(self) -> u8 {
        match self {
            Function::AllUnitsOff => 0b0000,
            Function::AllLightsOn => 0b0001,
            Function::On => 0b0010,
            Function::Off => 0b0011,
            Function::Dim => 0b0100,
            Function::Bright => 0b0101,
            Function::AllLightsOff => 0b0110,
            Function::StatusOn => 0b1101,
            Function::StatusOff => 0b1110,
            Function::StatusRequest => 0b1111,
        }
    }

    /// Inverse of [`Function::code`].
    pub fn from_code(code: u8) -> Option<Function> {
        match code & 0x0F {
            0b0000 => Some(Function::AllUnitsOff),
            0b0001 => Some(Function::AllLightsOn),
            0b0010 => Some(Function::On),
            0b0011 => Some(Function::Off),
            0b0100 => Some(Function::Dim),
            0b0101 => Some(Function::Bright),
            0b0110 => Some(Function::AllLightsOff),
            0b1101 => Some(Function::StatusOn),
            0b1110 => Some(Function::StatusOff),
            0b1111 => Some(Function::StatusRequest),
            _ => None,
        }
    }

    /// True if this function addresses the whole house rather than
    /// latched units.
    pub fn is_house_wide(self) -> bool {
        matches!(
            self,
            Function::AllUnitsOff | Function::AllLightsOn | Function::AllLightsOff
        )
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Function::AllUnitsOff => "AllUnitsOff",
            Function::AllLightsOn => "AllLightsOn",
            Function::On => "On",
            Function::Off => "Off",
            Function::Dim => "Dim",
            Function::Bright => "Bright",
            Function::AllLightsOff => "AllLightsOff",
            Function::StatusRequest => "StatusRequest",
            Function::StatusOn => "StatusOn",
            Function::StatusOff => "StatusOff",
        };
        f.write_str(s)
    }
}

/// A frame on the powerline: either an address selection or a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum X10Frame {
    /// Latch a unit for the following function.
    Address {
        /// House.
        house: HouseCode,
        /// Unit to latch.
        unit: UnitCode,
    },
    /// Apply a function to latched units (or house-wide).
    Function {
        /// House.
        house: HouseCode,
        /// Function.
        function: Function,
        /// Dim/bright step count (0..=22), meaningful for `Dim`/`Bright`.
        dims: u8,
    },
}

impl X10Frame {
    /// Serialises to the 2-byte powerline representation:
    /// `[flags, house<<4 | code]` where bit0 of flags marks a function
    /// frame and the upper bits carry the dim count.
    pub fn encode(self) -> [u8; 2] {
        match self {
            X10Frame::Address { house, unit } => [0x00, house.code() << 4 | unit.code()],
            X10Frame::Function {
                house,
                function,
                dims,
            } => [
                0x01 | (dims.min(22) << 3),
                house.code() << 4 | function.code(),
            ],
        }
    }

    /// Inverse of [`X10Frame::encode`].
    pub fn decode(data: &[u8]) -> Option<X10Frame> {
        if data.len() != 2 {
            return None;
        }
        let house = HouseCode::from_code(data[1] >> 4)?;
        if data[0] & 0x01 == 0 {
            Some(X10Frame::Address {
                house,
                unit: UnitCode::from_code(data[1])?,
            })
        } else {
            Some(X10Frame::Function {
                house,
                function: Function::from_code(data[1])?,
                dims: data[0] >> 3,
            })
        }
    }

    /// The house this frame belongs to.
    pub fn house(self) -> HouseCode {
        match self {
            X10Frame::Address { house, .. } | X10Frame::Function { house, .. } => house,
        }
    }
}

impl fmt::Display for X10Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            X10Frame::Address { house, unit } => write!(f, "{}{}", house.letter(), unit.number()),
            X10Frame::Function {
                house,
                function,
                dims,
            } => {
                if *dims > 0 {
                    write!(f, "{} {function}({dims})", house.letter())
                } else {
                    write!(f, "{} {function}", house.letter())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn house_codes_use_the_real_table() {
        // Spot checks against the CM11A protocol document.
        assert_eq!(HouseCode::new('A').unwrap().code(), 0b0110);
        assert_eq!(HouseCode::new('M').unwrap().code(), 0b0000);
        assert_eq!(HouseCode::new('P').unwrap().code(), 0b1100);
        assert_eq!(UnitCode::new(1).unwrap().code(), 0b0110);
        assert_eq!(UnitCode::new(16).unwrap().code(), 0b1100);
    }

    #[test]
    fn all_house_and_unit_codes_round_trip() {
        for letter in 'A'..='P' {
            let h = HouseCode::new(letter).unwrap();
            assert_eq!(HouseCode::from_code(h.code()), Some(h));
        }
        for n in 1..=16 {
            let u = UnitCode::new(n).unwrap();
            assert_eq!(UnitCode::from_code(u.code()), Some(u));
        }
    }

    #[test]
    fn invalid_codes_rejected() {
        assert!(HouseCode::new('Q').is_none());
        assert!(HouseCode::new('1').is_none());
        assert!(UnitCode::new(0).is_none());
        assert!(UnitCode::new(17).is_none());
        assert!(HouseCode::new('a').is_some(), "lowercase accepted");
    }

    #[test]
    fn functions_round_trip() {
        for f in [
            Function::AllUnitsOff,
            Function::AllLightsOn,
            Function::On,
            Function::Off,
            Function::Dim,
            Function::Bright,
            Function::AllLightsOff,
            Function::StatusRequest,
            Function::StatusOn,
            Function::StatusOff,
        ] {
            assert_eq!(Function::from_code(f.code()), Some(f));
        }
        assert_eq!(Function::from_code(0b0111), None); // extended code unsupported
    }

    #[test]
    fn frames_round_trip() {
        let a = X10Frame::Address {
            house: HouseCode::new('C').unwrap(),
            unit: UnitCode::new(7).unwrap(),
        };
        assert_eq!(X10Frame::decode(&a.encode()), Some(a));
        let f = X10Frame::Function {
            house: HouseCode::new('C').unwrap(),
            function: Function::Dim,
            dims: 11,
        };
        assert_eq!(X10Frame::decode(&f.encode()), Some(f));
        assert_eq!(X10Frame::decode(&[1, 2, 3]), None);
        assert_eq!(X10Frame::decode(&[0]), None);
    }

    #[test]
    fn house_wide_functions() {
        assert!(Function::AllLightsOn.is_house_wide());
        assert!(!Function::On.is_house_wide());
    }

    #[test]
    fn display_formats() {
        let h = HouseCode::new('A').unwrap();
        let u = UnitCode::new(3).unwrap();
        assert_eq!(X10Frame::Address { house: h, unit: u }.to_string(), "A3");
        assert_eq!(
            X10Frame::Function {
                house: h,
                function: Function::On,
                dims: 0
            }
            .to_string(),
            "A On"
        );
    }
}
