//! # x10 — an X10 powerline middleware simulation
//!
//! The humblest middleware the paper bridges: 1970s-era powerline
//! signalling with 4-bit house/unit codes, ~120 bit/s throughput, no
//! acknowledgements, and real noise. The prototype attaches to it via
//! the CM11A serial interface (paper ref. \[15\]), exactly as this crate's
//! [`Cm11a`] / [`Cm11aDriver`] pair does.
//!
//! * [`HouseCode`] / [`UnitCode`] / [`Function`] / [`X10Frame`] — the
//!   real (non-contiguous) X10 code tables.
//! * [`Transmitter`] / [`install_receiver`] — fire-and-forget broadcast
//!   signalling with address latching.
//! * [`Module`] — lamp and appliance modules.
//! * [`MotionSensor`] — the sensors of the §4.2 multimedia experiment.
//! * [`Remote`] — the handheld remote of Fig. 5.
//! * [`Cm11a`] / [`Cm11aDriver`] — the PC attachment the X10 PCM uses.
//!
//! ```
//! use simnet::{Sim, Network};
//! use x10::{Module, ModuleKind, Remote, Button, HouseCode, UnitCode};
//!
//! let sim = Sim::new(7);
//! let powerline = Network::powerline(&sim);
//! let lamp = Module::plug_in(&powerline, "lamp", ModuleKind::Lamp,
//!     HouseCode::new('A').unwrap(), UnitCode::new(1).unwrap());
//! let mut remote = Remote::new(&powerline, "remote", HouseCode::new('A').unwrap());
//! remote.press(Button::On(1));
//! // (On the default noisy powerline delivery is probabilistic;
//! // the deterministic seed above happens to deliver.)
//! assert!(lamp.is_on());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cm11a;
pub mod codec;
pub mod module;
pub mod powerline;
pub mod remote;
pub mod sensor;

pub use cm11a::{Cm11a, Cm11aDriver, Cm11aError};
pub use codec::{Function, HouseCode, UnitCode, X10Frame};
pub use module::{Module, ModuleKind, ModuleState, MAX_DIM_STEPS};
pub use powerline::{install_receiver, send_with_repeats, SendOutcome, Transmitter};
pub use remote::{Button, Remote};
pub use sensor::MotionSensor;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_house() -> impl Strategy<Value = HouseCode> {
        (0u8..16).prop_map(|i| HouseCode::new((b'A' + i) as char).unwrap())
    }

    fn arb_unit() -> impl Strategy<Value = UnitCode> {
        (1u8..=16).prop_map(|n| UnitCode::new(n).unwrap())
    }

    fn arb_function() -> impl Strategy<Value = Function> {
        prop_oneof![
            Just(Function::AllUnitsOff),
            Just(Function::AllLightsOn),
            Just(Function::On),
            Just(Function::Off),
            Just(Function::Dim),
            Just(Function::Bright),
            Just(Function::AllLightsOff),
            Just(Function::StatusRequest),
            Just(Function::StatusOn),
            Just(Function::StatusOff),
        ]
    }

    proptest! {
        #[test]
        fn frames_round_trip(house in arb_house(), unit in arb_unit(),
                             function in arb_function(), dims in 0u8..=22) {
            let a = X10Frame::Address { house, unit };
            prop_assert_eq!(X10Frame::decode(&a.encode()), Some(a));
            let f = X10Frame::Function { house, function, dims };
            prop_assert_eq!(X10Frame::decode(&f.encode()), Some(f));
        }

        #[test]
        fn decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..4)) {
            let _ = X10Frame::decode(&data);
        }

        #[test]
        fn code_table_is_a_bijection(a in 0u8..16, b in 0u8..16) {
            let ha = HouseCode::new((b'A' + a) as char).unwrap();
            let hb = HouseCode::new((b'A' + b) as char).unwrap();
            prop_assert_eq!(ha.code() == hb.code(), a == b);
        }

        #[test]
        fn lamp_level_stays_in_bounds(
            cmds in prop::collection::vec((any::<bool>(), 1u8..=22), 0..20),
        ) {
            let sim = simnet::Sim::new(1);
            let mut link = simnet::netkind::powerline();
            link.loss_prob = 0.0;
            let net = simnet::Network::new(&sim, "pl", link);
            let h = HouseCode::new('A').unwrap();
            let u = UnitCode::new(1).unwrap();
            let lamp = Module::plug_in(&net, "lamp", ModuleKind::Lamp, h, u);
            let tx = Transmitter::attach(&net, "ctl");
            for (brighten, steps) in cmds {
                let f = if brighten { Function::Bright } else { Function::Dim };
                tx.send_command_dims(h, u, f, steps);
                let level = lamp.state().level;
                prop_assert!(level <= MAX_DIM_STEPS);
            }
        }
    }
}
