//! # minixml — a minimal XML 1.0 subset
//!
//! The in-repo replacement for the XML stack the paper's prototype got
//! from Apache SOAP: enough of XML 1.0 to carry SOAP 1.1 envelopes,
//! WSDL-style service descriptions and UPnP device descriptions —
//! elements, attributes, character data, comments, CDATA, processing
//! instructions, namespace *prefixes* (treated lexically), and the five
//! predefined entities plus numeric character references.
//!
//! ```
//! use minixml::Element;
//!
//! let msg = Element::new("command")
//!     .attr("device", "vcr")
//!     .child(Element::new("action").text("record"));
//! let wire = msg.to_document();
//! let back = Element::parse(&wire).unwrap();
//! assert_eq!(back.find("action").unwrap().text_content(), "record");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod borrowed;
pub mod escape;
pub mod node;
pub mod parser;
pub mod writer;

pub use borrowed::{ElemRef, NodeRef};
pub use escape::{
    escape_attr, escape_attr_into, escape_text, escape_text_into, unescape, unescape_cow,
};
pub use node::{Element, XmlNode};
pub use parser::{parse, parse_ref, ErrorKind, ParseError};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_name() -> impl Strategy<Value = String> {
        "[a-zA-Z][a-zA-Z0-9_.-]{0,8}"
    }

    fn arb_text() -> impl Strategy<Value = String> {
        // Arbitrary printable text, including XML-special characters,
        // but non-empty after trimming (whitespace-only text is
        // insignificant and dropped by the parser).
        "[ -~]{1,20}".prop_filter("significant", |s| !s.trim().is_empty())
    }

    fn arb_element(depth: u32) -> BoxedStrategy<Element> {
        let leaf = (
            arb_name(),
            prop::collection::vec((arb_name(), arb_text()), 0..3),
        )
            .prop_map(|(name, attrs)| {
                let mut e = Element::new(name);
                // Attribute keys must be unique for round-trip equality.
                let mut seen = std::collections::HashSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        e.attrs.push((k, v));
                    }
                }
                e
            });
        if depth == 0 {
            return leaf.boxed();
        }
        (
            leaf,
            prop::collection::vec(
                prop_oneof![
                    arb_element(depth - 1).prop_map(XmlNode::Element),
                    arb_text().prop_map(|t| XmlNode::Text(t.trim().to_owned())),
                ],
                0..4,
            ),
        )
            .prop_map(|(mut e, children)| {
                // Adjacent text nodes merge on parse; keep them separated
                // by elements for structural round-trip equality. Also
                // drop text that trimmed to empty.
                let mut last_was_text = false;
                for c in children {
                    if let XmlNode::Text(t) = &c {
                        if t.is_empty() || last_was_text {
                            continue;
                        }
                        last_was_text = true;
                    } else {
                        last_was_text = false;
                    }
                    e.children.push(c);
                }
                e
            })
            .boxed()
    }

    proptest! {
        #[test]
        fn write_parse_round_trip(e in arb_element(3)) {
            let doc = e.to_document();
            let back = Element::parse(&doc).unwrap();
            prop_assert_eq!(back, e);
        }

        #[test]
        fn escape_unescape_round_trip(s in "[ -~]{0,64}") {
            prop_assert_eq!(unescape(&escape_text(&s)), s.clone());
            prop_assert_eq!(unescape(&escape_attr(&s)), s);
        }

        #[test]
        fn parser_never_panics(s in ".{0,256}") {
            let _ = parse(&s);
        }

        #[test]
        fn borrowed_parse_equals_owned_parse(e in arb_element(3)) {
            let doc = e.to_document();
            let borrowed = parse_ref(&doc).unwrap();
            prop_assert_eq!(borrowed.to_owned(), parse(&doc).unwrap());
        }

        #[test]
        fn borrowed_equals_owned_on_arbitrary_input(s in ".{0,256}") {
            match (parse(&s), parse_ref(&s)) {
                (Ok(o), Ok(b)) => prop_assert_eq!(o, b.to_owned()),
                (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
                (o, b) => prop_assert!(false, "tiers disagree: {:?} vs {:?}", o, b.map(|e| e.to_owned())),
            }
        }

        #[test]
        fn borrowed_equals_owned_with_escapes_cdata_comments(
            text in "[ -~]{1,20}",
            cdata in "[ -~]{0,20}",
            comment in "[ a-z]{0,12}",
        ) {
            // Keep the constructs well-formed: CDATA cannot contain its
            // own terminator, comments cannot contain "--".
            let cdata = cdata.replace("]]>", "]]");
            let comment = comment.replace("--", "-");
            let doc = format!(
                "<!-- {comment} --><r a=\"{}\">{}<![CDATA[{cdata}]]><b/></r>",
                escape_attr(&text),
                escape_text(&text),
            );
            let owned = parse(&doc).unwrap();
            let borrowed = parse_ref(&doc).unwrap();
            prop_assert_eq!(borrowed.to_owned(), owned);
        }

        #[test]
        fn pretty_and_compact_parse_identically(e in arb_element(2)) {
            // Pretty-printing only changes insignificant whitespace for
            // element-only trees; restrict to those.
            fn strip_text(e: &mut Element) {
                e.children.retain(|c| matches!(c, XmlNode::Element(_)));
                for c in &mut e.children {
                    if let XmlNode::Element(el) = c { strip_text(el); }
                }
            }
            let mut e = e;
            strip_text(&mut e);
            let compact = Element::parse(&e.to_xml()).unwrap();
            let pretty = Element::parse(&e.to_pretty()).unwrap();
            prop_assert_eq!(compact, pretty);
        }
    }
}
