//! A recursive-descent parser for the XML subset used by SOAP 1.1, WSDL
//! and UPnP device descriptions: elements, attributes, character data,
//! comments, CDATA sections, processing instructions and a DOCTYPE
//! prologue. No DTD expansion, no mixed external entities.
//!
//! The parser builds the borrowed tier ([`ElemRef`]) directly — names
//! are slices of the input and text is `Cow` that only allocates when
//! an entity escape fires. The owned [`parse`] is a thin
//! `to_owned()` on top.

use crate::borrowed::{ElemRef, NodeRef};
use crate::escape::unescape_cow;
use crate::node::Element;
use std::fmt;

/// What went wrong during a parse. Carried by value — no allocation on
/// the error path, so speculative parses stay free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Content after the document's root element.
    TrailingContent,
    /// A `<?...?>` section with no terminator.
    UnterminatedPi,
    /// A `<!--...-->` section with no terminator.
    UnterminatedComment,
    /// A `<!DOCTYPE ...>` declaration with no terminator.
    UnterminatedDoctype,
    /// A `<![CDATA[...]]>` section with no terminator.
    UnterminatedCdata,
    /// A tag or attribute name was expected.
    ExpectedName,
    /// A `<` opening a root element was expected.
    ExpectedElement,
    /// An attribute name was not followed by `=`.
    AttrMissingEq,
    /// An attribute value was not quoted.
    AttrValueUnquoted,
    /// An attribute value's closing quote is missing.
    UnterminatedAttrValue,
    /// A close tag named a different element than the open tag.
    MismatchedCloseTag,
    /// A close tag name was not followed by `>`.
    ExpectedCloseAngle,
    /// The input ended inside an element's content.
    UnexpectedEof,
}

impl ErrorKind {
    /// A static human-readable description.
    pub fn message(self) -> &'static str {
        match self {
            ErrorKind::TrailingContent => "trailing content after the root element",
            ErrorKind::UnterminatedPi => "unterminated processing instruction",
            ErrorKind::UnterminatedComment => "unterminated comment",
            ErrorKind::UnterminatedDoctype => "unterminated DOCTYPE",
            ErrorKind::UnterminatedCdata => "unterminated CDATA section",
            ErrorKind::ExpectedName => "expected a name",
            ErrorKind::ExpectedElement => "expected '<'",
            ErrorKind::AttrMissingEq => "attribute missing '='",
            ErrorKind::AttrValueUnquoted => "attribute value must be quoted",
            ErrorKind::UnterminatedAttrValue => "unterminated attribute value",
            ErrorKind::MismatchedCloseTag => "mismatched close tag",
            ErrorKind::ExpectedCloseAngle => "expected '>' after close tag name",
            ErrorKind::UnexpectedEof => "unexpected end of input inside an element",
        }
    }
}

/// A parse failure, with the byte offset where it happened.
///
/// `Copy` and allocation-free: callers that probe inputs speculatively
/// (is this XML or a binary frame?) pay nothing for the miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub at: usize,
    /// What went wrong.
    pub kind: ErrorKind,
}

impl ParseError {
    /// A static human-readable description of [`ParseError::kind`].
    pub fn message(&self) -> &'static str {
        self.kind.message()
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.at, self.message())
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete document (prologue + one root element) into the
/// owned tier.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    Ok(parse_ref(input)?.to_owned())
}

/// Parses a complete document into the borrowed tier: names are slices
/// of `input`, text is `Cow` that only owns when an entity fired.
pub fn parse_ref(input: &str) -> Result<ElemRef<'_>, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_prologue();
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos < p.input.len() {
        return Err(p.err(ErrorKind::TrailingContent));
    }
    Ok(root)
}

impl Element {
    /// Parses a document; inverse of [`Element::to_document`].
    pub fn parse(input: &str) -> Result<Element, ParseError> {
        parse(input)
    }
}

impl<'a> ElemRef<'a> {
    /// Parses a document without copying; inverse of
    /// [`Element::to_document`] up to ownership.
    pub fn parse(input: &'a str) -> Result<ElemRef<'a>, ParseError> {
        parse_ref(input)
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: ErrorKind) -> ParseError {
        ParseError { at: self.pos, kind }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn skip_until(&mut self, end: &str, what: ErrorKind) -> Result<(), ParseError> {
        match self.rest().find(end) {
            Some(i) => {
                self.bump(i + end.len());
                Ok(())
            }
            None => Err(self.err(what)),
        }
    }

    /// Skips declarations, comments, PIs and DOCTYPE before the root.
    /// An unterminated construct consumes the rest of the input (the
    /// subsequent "expected '<'" error reports the real problem).
    fn skip_prologue(&mut self) {
        loop {
            self.skip_ws();
            let result = if self.starts_with("<?") {
                self.skip_until("?>", ErrorKind::UnterminatedPi)
            } else if self.starts_with("<!--") {
                self.skip_until("-->", ErrorKind::UnterminatedComment)
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_until(">", ErrorKind::UnterminatedDoctype)
            } else {
                return;
            };
            if result.is_err() {
                self.pos = self.input.len();
                return;
            }
        }
    }

    /// Skips comments/PIs/whitespace after the root.
    fn skip_misc(&mut self) {
        self.skip_prologue();
    }

    fn parse_name(&mut self) -> Result<&'a str, ParseError> {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !is_name_char(*c))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err(ErrorKind::ExpectedName));
        }
        let name = &rest[..end];
        self.bump(end);
        Ok(name)
    }

    fn parse_element(&mut self) -> Result<ElemRef<'a>, ParseError> {
        if !self.starts_with("<") {
            return Err(self.err(ErrorKind::ExpectedElement));
        }
        self.bump(1);
        let name = self.parse_name()?;
        let mut el = ElemRef {
            name,
            attrs: Vec::new(),
            children: Vec::new(),
        };

        // Attributes.
        loop {
            self.skip_ws();
            if self.starts_with("/>") {
                self.bump(2);
                return Ok(el);
            }
            if self.starts_with(">") {
                self.bump(1);
                break;
            }
            let key = self.parse_name()?;
            self.skip_ws();
            if !self.starts_with("=") {
                return Err(self.err(ErrorKind::AttrMissingEq));
            }
            self.bump(1);
            self.skip_ws();
            let quote = match self.rest().chars().next() {
                Some(q @ ('"' | '\'')) => q,
                _ => return Err(self.err(ErrorKind::AttrValueUnquoted)),
            };
            self.bump(1);
            let rest = self.rest();
            let end = rest
                .find(quote)
                .ok_or_else(|| self.err(ErrorKind::UnterminatedAttrValue))?;
            let value = unescape_cow(&rest[..end]);
            self.bump(end + 1);
            el.attrs.push((key, value));
        }

        // Content until the matching close tag.
        loop {
            if self.starts_with("</") {
                self.bump(2);
                let close = self.parse_name()?;
                if close != el.name {
                    return Err(self.err(ErrorKind::MismatchedCloseTag));
                }
                self.skip_ws();
                if !self.starts_with(">") {
                    return Err(self.err(ErrorKind::ExpectedCloseAngle));
                }
                self.bump(1);
                // Whitespace-only text between child *elements* is
                // insignificant indentation; in a leaf element it is real
                // character data (e.g. a SOAP string value of " ").
                if el.children.iter().any(|c| matches!(c, NodeRef::Element(_))) {
                    el.children.retain(|c| match c {
                        NodeRef::Text(t) => !t.trim().is_empty(),
                        NodeRef::Element(_) => true,
                    });
                }
                return Ok(el);
            } else if self.starts_with("<!--") {
                self.skip_until("-->", ErrorKind::UnterminatedComment)?;
            } else if self.starts_with("<![CDATA[") {
                self.bump("<![CDATA[".len());
                let rest = self.rest();
                let end = rest
                    .find("]]>")
                    .ok_or_else(|| self.err(ErrorKind::UnterminatedCdata))?;
                el.children.push(NodeRef::Text(rest[..end].into()));
                self.bump(end + 3);
            } else if self.starts_with("<?") {
                self.skip_until("?>", ErrorKind::UnterminatedPi)?;
            } else if self.starts_with("<") {
                let child = self.parse_element()?;
                el.children.push(NodeRef::Element(child));
            } else if self.pos >= self.input.len() {
                return Err(self.err(ErrorKind::UnexpectedEof));
            } else {
                let rest = self.rest();
                let end = rest.find('<').unwrap_or(rest.len());
                let text = unescape_cow(&rest[..end]);
                // Kept for now; whitespace-only runs are filtered at the
                // close tag if this element turns out to be structural.
                if !text.is_empty() {
                    el.children.push(NodeRef::Text(text));
                }
                self.bump(end);
            }
        }
    }
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, ':' | '_' | '-' | '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"<?xml version="1.0"?><a k="v"><b>hi</b><c/></a>"#;
        let e = parse(doc).unwrap();
        assert_eq!(e.name, "a");
        assert_eq!(e.get_attr("k"), Some("v"));
        assert_eq!(e.find("b").unwrap().text_content(), "hi");
        assert!(e.find("c").unwrap().is_empty());
    }

    #[test]
    fn round_trips_writer_output() {
        let orig = Element::new("SOAP-ENV:Envelope")
            .attr(
                "xmlns:SOAP-ENV",
                "http://schemas.xmlsoap.org/soap/envelope/",
            )
            .child(
                Element::new("SOAP-ENV:Body").child(
                    Element::new("ns1:record")
                        .attr("xmlns:ns1", "urn:vcr")
                        .child(Element::new("channel").text("42"))
                        .child(Element::new("title").text("News & <Weather>")),
                ),
            );
        let parsed = parse(&orig.to_document()).unwrap();
        assert_eq!(parsed, orig);
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let e = parse(r#"<a t="&lt;x&gt;">&amp;&#65;</a>"#).unwrap();
        assert_eq!(e.get_attr("t"), Some("<x>"));
        assert_eq!(e.text_content(), "&A");
    }

    #[test]
    fn cdata_is_literal() {
        let e = parse("<a><![CDATA[<not & parsed>]]></a>").unwrap();
        assert_eq!(e.text_content(), "<not & parsed>");
    }

    #[test]
    fn comments_and_pis_are_skipped() {
        let e = parse("<!-- pre --><a><!-- in --><b/><?pi data?></a><!-- post -->").unwrap();
        assert_eq!(e.elements().count(), 1);
    }

    #[test]
    fn doctype_is_skipped() {
        let e = parse("<!DOCTYPE html><a/>").unwrap();
        assert_eq!(e.name, "a");
    }

    #[test]
    fn single_quoted_attrs() {
        let e = parse("<a k='v'/>").unwrap();
        assert_eq!(e.get_attr("k"), Some("v"));
    }

    #[test]
    fn insignificant_whitespace_dropped_significant_kept() {
        let e = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(e.children.len(), 1);
        let e = parse("<a> x <b/></a>").unwrap();
        assert_eq!(e.children.len(), 2);
        // In a *leaf* element, whitespace is character data (a SOAP
        // string value may legitimately be " ").
        let e = parse("<a> </a>").unwrap();
        assert_eq!(e.text_content(), " ");
        let e = parse("<r><a> </a><b/></r>").unwrap();
        assert_eq!(e.find("a").unwrap().text_content(), " ");
    }

    #[test]
    fn error_cases_report_position() {
        for bad in [
            "<a><b></a>",
            "<a",
            "<a k=v/>",
            "<a/><b/>",
            "<a>unclosed",
            "text only",
            r#"<a k="unterminated/>"#,
            "<?xml unterminated",
            "<!-- unterminated",
            "<!DOCTYPE unterminated",
            "<a><!-- unterminated</a>",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.at <= bad.len(), "offset in range for {bad:?}");
            assert!(!err.message().is_empty());
            assert!(err.to_string().contains("byte"));
        }
    }

    #[test]
    fn mismatched_close_tag_is_a_typed_error() {
        let err = parse("<outer><inner></wrong></outer>").unwrap_err();
        assert_eq!(err.kind, ErrorKind::MismatchedCloseTag);
        // Position points at the close name so the caller can still
        // recover both tag names from the input if it wants them.
        assert_eq!(err.at, "<outer><inner></".len() + "wrong".len());
    }

    #[test]
    fn borrowed_and_owned_parses_agree() {
        for doc in [
            r#"<?xml version="1.0"?><a k="v&amp;w"><b>hi &lt;there&gt;</b><c/></a>"#,
            "<a><![CDATA[<raw & bytes>]]>tail</a>",
            "<a>\n  <b/>\n</a>",
            "<a> mixed <b/> text </a>",
        ] {
            let owned = parse(doc).unwrap();
            let borrowed = parse_ref(doc).unwrap();
            assert_eq!(borrowed.to_owned(), owned, "{doc:?}");
        }
    }
}
