//! A recursive-descent parser for the XML subset used by SOAP 1.1, WSDL
//! and UPnP device descriptions: elements, attributes, character data,
//! comments, CDATA sections, processing instructions and a DOCTYPE
//! prologue. No DTD expansion, no mixed external entities.

use crate::escape::unescape;
use crate::node::{Element, XmlNode};
use std::fmt;

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete document (prologue + one root element).
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_prologue();
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos < p.input.len() {
        return Err(p.err("trailing content after the root element"));
    }
    Ok(root)
}

impl Element {
    /// Parses a document; inverse of [`Element::to_document`].
    pub fn parse(input: &str) -> Result<Element, ParseError> {
        parse(input)
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn skip_until(&mut self, end: &str, what: &str) -> Result<(), ParseError> {
        match self.rest().find(end) {
            Some(i) => {
                self.bump(i + end.len());
                Ok(())
            }
            None => Err(self.err(format!("unterminated {what}"))),
        }
    }

    /// Skips declarations, comments, PIs and DOCTYPE before the root.
    /// An unterminated construct consumes the rest of the input (the
    /// subsequent "expected '<'" error reports the real problem).
    fn skip_prologue(&mut self) {
        loop {
            self.skip_ws();
            let result = if self.starts_with("<?") {
                self.skip_until("?>", "processing instruction")
            } else if self.starts_with("<!--") {
                self.skip_until("-->", "comment")
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_until(">", "DOCTYPE")
            } else {
                return;
            };
            if result.is_err() {
                self.pos = self.input.len();
                return;
            }
        }
    }

    /// Skips comments/PIs/whitespace after the root.
    fn skip_misc(&mut self) {
        self.skip_prologue();
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !is_name_char(*c))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected a name"));
        }
        let name = rest[..end].to_owned();
        self.bump(end);
        Ok(name)
    }

    fn parse_element(&mut self) -> Result<Element, ParseError> {
        if !self.starts_with("<") {
            return Err(self.err("expected '<'"));
        }
        self.bump(1);
        let name = self.parse_name()?;
        let mut el = Element::new(name);

        // Attributes.
        loop {
            self.skip_ws();
            if self.starts_with("/>") {
                self.bump(2);
                return Ok(el);
            }
            if self.starts_with(">") {
                self.bump(1);
                break;
            }
            let key = self.parse_name()?;
            self.skip_ws();
            if !self.starts_with("=") {
                return Err(self.err(format!("attribute '{key}' missing '='")));
            }
            self.bump(1);
            self.skip_ws();
            let quote = match self.rest().chars().next() {
                Some(q @ ('"' | '\'')) => q,
                _ => return Err(self.err("attribute value must be quoted")),
            };
            self.bump(1);
            let rest = self.rest();
            let end = rest
                .find(quote)
                .ok_or_else(|| self.err("unterminated attribute value"))?;
            let value = unescape(&rest[..end]);
            self.bump(end + 1);
            el.attrs.push((key, value));
        }

        // Content until the matching close tag.
        loop {
            if self.starts_with("</") {
                self.bump(2);
                let close = self.parse_name()?;
                if close != el.name {
                    return Err(self.err(format!(
                        "mismatched close tag: expected </{}>, found </{close}>",
                        el.name
                    )));
                }
                self.skip_ws();
                if !self.starts_with(">") {
                    return Err(self.err("expected '>' after close tag name"));
                }
                self.bump(1);
                // Whitespace-only text between child *elements* is
                // insignificant indentation; in a leaf element it is real
                // character data (e.g. a SOAP string value of " ").
                if el.children.iter().any(|c| matches!(c, XmlNode::Element(_))) {
                    el.children.retain(|c| match c {
                        XmlNode::Text(t) => !t.trim().is_empty(),
                        XmlNode::Element(_) => true,
                    });
                }
                return Ok(el);
            } else if self.starts_with("<!--") {
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<![CDATA[") {
                self.bump("<![CDATA[".len());
                let rest = self.rest();
                let end = rest
                    .find("]]>")
                    .ok_or_else(|| self.err("unterminated CDATA section"))?;
                el.children.push(XmlNode::Text(rest[..end].to_owned()));
                self.bump(end + 3);
            } else if self.starts_with("<?") {
                self.skip_until("?>", "processing instruction")?;
            } else if self.starts_with("<") {
                let child = self.parse_element()?;
                el.children.push(XmlNode::Element(child));
            } else if self.pos >= self.input.len() {
                return Err(self.err(format!("unexpected end of input inside <{}>", el.name)));
            } else {
                let rest = self.rest();
                let end = rest.find('<').unwrap_or(rest.len());
                let text = unescape(&rest[..end]);
                // Kept for now; whitespace-only runs are filtered at the
                // close tag if this element turns out to be structural.
                if !text.is_empty() {
                    el.children.push(XmlNode::Text(text));
                }
                self.bump(end);
            }
        }
    }
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, ':' | '_' | '-' | '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"<?xml version="1.0"?><a k="v"><b>hi</b><c/></a>"#;
        let e = parse(doc).unwrap();
        assert_eq!(e.name, "a");
        assert_eq!(e.get_attr("k"), Some("v"));
        assert_eq!(e.find("b").unwrap().text_content(), "hi");
        assert!(e.find("c").unwrap().is_empty());
    }

    #[test]
    fn round_trips_writer_output() {
        let orig = Element::new("SOAP-ENV:Envelope")
            .attr(
                "xmlns:SOAP-ENV",
                "http://schemas.xmlsoap.org/soap/envelope/",
            )
            .child(
                Element::new("SOAP-ENV:Body").child(
                    Element::new("ns1:record")
                        .attr("xmlns:ns1", "urn:vcr")
                        .child(Element::new("channel").text("42"))
                        .child(Element::new("title").text("News & <Weather>")),
                ),
            );
        let parsed = parse(&orig.to_document()).unwrap();
        assert_eq!(parsed, orig);
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let e = parse(r#"<a t="&lt;x&gt;">&amp;&#65;</a>"#).unwrap();
        assert_eq!(e.get_attr("t"), Some("<x>"));
        assert_eq!(e.text_content(), "&A");
    }

    #[test]
    fn cdata_is_literal() {
        let e = parse("<a><![CDATA[<not & parsed>]]></a>").unwrap();
        assert_eq!(e.text_content(), "<not & parsed>");
    }

    #[test]
    fn comments_and_pis_are_skipped() {
        let e = parse("<!-- pre --><a><!-- in --><b/><?pi data?></a><!-- post -->").unwrap();
        assert_eq!(e.elements().count(), 1);
    }

    #[test]
    fn doctype_is_skipped() {
        let e = parse("<!DOCTYPE html><a/>").unwrap();
        assert_eq!(e.name, "a");
    }

    #[test]
    fn single_quoted_attrs() {
        let e = parse("<a k='v'/>").unwrap();
        assert_eq!(e.get_attr("k"), Some("v"));
    }

    #[test]
    fn insignificant_whitespace_dropped_significant_kept() {
        let e = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(e.children.len(), 1);
        let e = parse("<a> x <b/></a>").unwrap();
        assert_eq!(e.children.len(), 2);
        // In a *leaf* element, whitespace is character data (a SOAP
        // string value may legitimately be " ").
        let e = parse("<a> </a>").unwrap();
        assert_eq!(e.text_content(), " ");
        let e = parse("<r><a> </a><b/></r>").unwrap();
        assert_eq!(e.find("a").unwrap().text_content(), " ");
    }

    #[test]
    fn error_cases_report_position() {
        for bad in [
            "<a><b></a>",
            "<a",
            "<a k=v/>",
            "<a/><b/>",
            "<a>unclosed",
            "text only",
            r#"<a k="unterminated/>"#,
            "<?xml unterminated",
            "<!-- unterminated",
            "<!DOCTYPE unterminated",
            "<a><!-- unterminated</a>",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.at <= bad.len(), "offset in range for {bad:?}");
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn mismatched_close_tag_names_both_tags() {
        let err = parse("<outer><inner></wrong></outer>").unwrap_err();
        assert!(err.message.contains("inner"));
        assert!(err.message.contains("wrong"));
    }
}
