//! XML character escaping.

/// Escapes text content: `&`, `<`, `>`.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute values: text escapes plus `"` and `'`.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Decodes the five predefined XML entities plus decimal/hex character
/// references. Unknown entities are passed through verbatim (lenient, as
/// 2002-era SOAP stacks were).
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        match rest.find(';') {
            Some(semi) if semi <= 12 => {
                let entity = &rest[1..semi];
                let decoded = match entity {
                    "amp" => Some('&'),
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    _ => decode_char_ref(entity),
                };
                match decoded {
                    Some(c) => {
                        out.push(c);
                        rest = &rest[semi + 1..];
                    }
                    None => {
                        out.push('&');
                        rest = &rest[1..];
                    }
                }
            }
            _ => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

fn decode_char_ref(entity: &str) -> Option<char> {
    let num = entity.strip_prefix('#')?;
    let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        num.parse::<u32>().ok()?
    };
    char::from_u32(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_round_trips() {
        let raw = r#"a<b>&c"d'e"#;
        assert_eq!(unescape(&escape_text(raw)), raw);
        assert_eq!(escape_text("a&b"), "a&amp;b");
        assert_eq!(escape_text("<tag>"), "&lt;tag&gt;");
    }

    #[test]
    fn attr_escaping_round_trips() {
        let raw = r#"say "hi" & 'bye' <now>"#;
        assert_eq!(unescape(&escape_attr(raw)), raw);
        assert!(escape_attr(raw).contains("&quot;"));
        assert!(escape_attr(raw).contains("&apos;"));
    }

    #[test]
    fn char_references_decode() {
        assert_eq!(unescape("&#65;"), "A");
        assert_eq!(unescape("&#x41;"), "A");
        assert_eq!(unescape("&#x3042;"), "\u{3042}");
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(unescape("&nbsp;"), "&nbsp;");
        assert_eq!(unescape("a & b"), "a & b");
        assert_eq!(unescape("trailing &"), "trailing &");
    }

    #[test]
    fn bare_ampersand_before_long_run_is_literal() {
        // No semicolon within a plausible entity length.
        assert_eq!(
            unescape("&thisisnotanentityatall;x"),
            "&thisisnotanentityatall;x"
        );
    }
}
