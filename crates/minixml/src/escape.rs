//! XML character escaping.

use std::borrow::Cow;

/// Escapes text content: `&`, `<`, `>`.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_text_into(s, &mut out);
    out
}

/// [`escape_text`], written into the caller's buffer — the streaming
/// serialisers escape straight into the wire buffer instead of
/// allocating a `String` per text run.
pub fn escape_text_into(s: &str, out: &mut String) {
    let mut rest = s;
    while let Some(i) = rest.find(['&', '<', '>']) {
        out.push_str(&rest[..i]);
        match rest.as_bytes()[i] {
            b'&' => out.push_str("&amp;"),
            b'<' => out.push_str("&lt;"),
            _ => out.push_str("&gt;"),
        }
        rest = &rest[i + 1..];
    }
    out.push_str(rest);
}

/// Escapes attribute values: text escapes plus `"` and `'`.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_attr_into(s, &mut out);
    out
}

/// [`escape_attr`], written into the caller's buffer.
pub fn escape_attr_into(s: &str, out: &mut String) {
    let mut rest = s;
    while let Some(i) = rest.find(['&', '<', '>', '"', '\'']) {
        out.push_str(&rest[..i]);
        match rest.as_bytes()[i] {
            b'&' => out.push_str("&amp;"),
            b'<' => out.push_str("&lt;"),
            b'>' => out.push_str("&gt;"),
            b'"' => out.push_str("&quot;"),
            _ => out.push_str("&apos;"),
        }
        rest = &rest[i + 1..];
    }
    out.push_str(rest);
}

/// Decodes the five predefined XML entities plus decimal/hex character
/// references. Unknown entities are passed through verbatim (lenient, as
/// 2002-era SOAP stacks were).
pub fn unescape(s: &str) -> String {
    match unescape_cow(s) {
        Cow::Borrowed(b) => b.to_owned(),
        Cow::Owned(o) => o,
    }
}

/// [`unescape`], but borrows the input untouched when no `&` occurs —
/// the common case for SOAP payloads — and only allocates when an
/// entity actually has to be decoded.
pub fn unescape_cow(s: &str) -> Cow<'_, str> {
    if !s.contains('&') {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        match rest.find(';') {
            Some(semi) if semi <= 12 => {
                let entity = &rest[1..semi];
                let decoded = match entity {
                    "amp" => Some('&'),
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    _ => decode_char_ref(entity),
                };
                match decoded {
                    Some(c) => {
                        out.push(c);
                        rest = &rest[semi + 1..];
                    }
                    None => {
                        out.push('&');
                        rest = &rest[1..];
                    }
                }
            }
            _ => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    Cow::Owned(out)
}

fn decode_char_ref(entity: &str) -> Option<char> {
    let num = entity.strip_prefix('#')?;
    let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        num.parse::<u32>().ok()?
    };
    char::from_u32(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_round_trips() {
        let raw = r#"a<b>&c"d'e"#;
        assert_eq!(unescape(&escape_text(raw)), raw);
        assert_eq!(escape_text("a&b"), "a&amp;b");
        assert_eq!(escape_text("<tag>"), "&lt;tag&gt;");
    }

    #[test]
    fn attr_escaping_round_trips() {
        let raw = r#"say "hi" & 'bye' <now>"#;
        assert_eq!(unescape(&escape_attr(raw)), raw);
        assert!(escape_attr(raw).contains("&quot;"));
        assert!(escape_attr(raw).contains("&apos;"));
    }

    #[test]
    fn char_references_decode() {
        assert_eq!(unescape("&#65;"), "A");
        assert_eq!(unescape("&#x41;"), "A");
        assert_eq!(unescape("&#x3042;"), "\u{3042}");
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(unescape("&nbsp;"), "&nbsp;");
        assert_eq!(unescape("a & b"), "a & b");
        assert_eq!(unescape("trailing &"), "trailing &");
    }

    #[test]
    fn unescape_cow_borrows_when_clean() {
        assert!(matches!(unescape_cow("plain text"), Cow::Borrowed(_)));
        assert!(matches!(unescape_cow(""), Cow::Borrowed(_)));
        assert!(matches!(unescape_cow("a &amp; b"), Cow::Owned(_)));
        // A bare ampersand forces the scan but yields identical text.
        assert_eq!(unescape_cow("a & b"), "a & b");
    }

    #[test]
    fn bare_ampersand_before_long_run_is_literal() {
        // No semicolon within a plausible entity length.
        assert_eq!(
            unescape("&thisisnotanentityatall;x"),
            "&thisisnotanentityatall;x"
        );
    }
}
