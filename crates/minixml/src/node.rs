//! The element tree.

use std::fmt;

/// A child of an element: either a nested element or character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A nested element.
    Element(Element),
    /// Character data (already unescaped).
    Text(String),
}

/// An XML element with attributes and children.
///
/// Construction uses a fluent builder style:
///
/// ```
/// use minixml::Element;
/// let e = Element::new("service")
///     .attr("name", "vcr")
///     .child(Element::new("op").text("record"));
/// assert_eq!(e.to_xml(), r#"<service name="vcr"><op>record</op></service>"#);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name (may carry a namespace prefix like `SOAP-ENV:Body`).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

impl Element {
    /// Creates an empty element named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Appends a child element (builder style).
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Appends several child elements (builder style).
    pub fn children(mut self, children: impl IntoIterator<Item = Element>) -> Self {
        self.children
            .extend(children.into_iter().map(XmlNode::Element));
        self
    }

    /// Appends character data (builder style).
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Appends a child in place.
    pub fn push(&mut self, child: Element) {
        self.children.push(XmlNode::Element(child));
    }

    // ---- queries ----------------------------------------------------------

    /// The value of attribute `key`, if present.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The element's local name: the part after the namespace prefix.
    pub fn local_name(&self) -> &str {
        match self.name.split_once(':') {
            Some((_, local)) => local,
            None => &self.name,
        }
    }

    /// Child elements, in order.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// The first child element with the given *local* name.
    pub fn find(&self, local: &str) -> Option<&Element> {
        self.elements().find(|e| e.local_name() == local)
    }

    /// All child elements with the given local name.
    pub fn find_all<'a>(&'a self, local: &'a str) -> impl Iterator<Item = &'a Element> {
        self.elements().filter(move |e| e.local_name() == local)
    }

    /// Walks a path of local names, returning the first match at each step.
    pub fn find_path(&self, path: &[&str]) -> Option<&Element> {
        let mut cur = self;
        for p in path {
            cur = cur.find(p)?;
        }
        Some(cur)
    }

    /// The concatenated character data of this element (direct text
    /// children only).
    pub fn text_content(&self) -> String {
        let mut s = String::new();
        for n in &self.children {
            if let XmlNode::Text(t) = n {
                s.push_str(t);
            }
        }
        s
    }

    /// True if the element has neither attributes nor children.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty() && self.children.is_empty()
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("s:root")
            .attr("xmlns:s", "urn:x")
            .child(Element::new("a").text("one"))
            .child(Element::new("s:b").text("two"))
            .child(Element::new("a").text("three"))
    }

    #[test]
    fn builder_and_queries() {
        let e = sample();
        assert_eq!(e.local_name(), "root");
        assert_eq!(e.get_attr("xmlns:s"), Some("urn:x"));
        assert_eq!(e.get_attr("missing"), None);
        assert_eq!(e.elements().count(), 3);
        assert_eq!(e.find("b").unwrap().text_content(), "two");
        assert_eq!(e.find_all("a").count(), 2);
    }

    #[test]
    fn find_path_walks_nesting() {
        let e =
            Element::new("env").child(Element::new("body").child(Element::new("call").text("x")));
        assert_eq!(e.find_path(&["body", "call"]).unwrap().text_content(), "x");
        assert!(e.find_path(&["body", "nope"]).is_none());
    }

    #[test]
    fn text_content_concatenates_direct_text_only() {
        let e = Element::new("p")
            .text("a")
            .child(Element::new("i").text("HIDDEN"))
            .text("b");
        assert_eq!(e.text_content(), "ab");
    }

    #[test]
    fn local_name_strips_prefix() {
        assert_eq!(Element::new("SOAP-ENV:Body").local_name(), "Body");
        assert_eq!(Element::new("Body").local_name(), "Body");
    }

    #[test]
    fn emptiness() {
        assert!(Element::new("x").is_empty());
        assert!(!Element::new("x").attr("a", "1").is_empty());
        assert!(!Element::new("x").text("t").is_empty());
    }
}
