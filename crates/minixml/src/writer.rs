//! Serialising element trees to XML text.

use crate::escape::{escape_attr_into, escape_text, escape_text_into};
use crate::node::{Element, XmlNode};

impl Element {
    /// Serialises to compact XML (no insignificant whitespace).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// Serialises with an XML declaration prepended, as SOAP messages and
    /// UPnP device descriptions carry on the wire.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        write_compact(self, &mut out);
        out
    }

    /// Serialises with two-space indentation, for human-readable output
    /// (traces, examples, EXPERIMENTS.md snippets).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }
}

fn write_open_tag(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        escape_attr_into(v, out);
        out.push('"');
    }
}

fn write_compact(e: &Element, out: &mut String) {
    write_open_tag(e, out);
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            XmlNode::Element(child) => write_compact(child, out),
            XmlNode::Text(t) => escape_text_into(t, out),
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

fn write_pretty(e: &Element, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    write_open_tag(e, out);
    if e.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // Elements whose only children are text stay on one line.
    let text_only = e.children.iter().all(|c| matches!(c, XmlNode::Text(_)));
    if text_only {
        out.push('>');
        for c in &e.children {
            if let XmlNode::Text(t) = c {
                out.push_str(&escape_text(t));
            }
        }
        out.push_str("</");
        out.push_str(&e.name);
        out.push_str(">\n");
        return;
    }
    out.push_str(">\n");
    for c in &e.children {
        match c {
            XmlNode::Element(child) => write_pretty(child, depth + 1, out),
            XmlNode::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    out.push_str(&"  ".repeat(depth + 1));
                    out.push_str(&escape_text(t));
                    out.push('\n');
                }
            }
        }
    }
    out.push_str(&pad);
    out.push_str("</");
    out.push_str(&e.name);
    out.push_str(">\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output() {
        let e = Element::new("a")
            .attr("k", "v")
            .child(Element::new("b"))
            .child(Element::new("c").text("x & y"));
        assert_eq!(e.to_xml(), r#"<a k="v"><b/><c>x &amp; y</c></a>"#);
    }

    #[test]
    fn document_has_declaration() {
        let doc = Element::new("r").to_document();
        assert!(doc.starts_with("<?xml version=\"1.0\""));
        assert!(doc.ends_with("<r/>"));
    }

    #[test]
    fn attrs_are_escaped() {
        let e = Element::new("a").attr("q", r#"<"quoted">"#);
        assert_eq!(e.to_xml(), r#"<a q="&lt;&quot;quoted&quot;&gt;"/>"#);
    }

    #[test]
    fn pretty_output_indents_nested_elements() {
        let e = Element::new("root")
            .child(Element::new("leaf").text("v"))
            .child(Element::new("empty"));
        let p = e.to_pretty();
        assert_eq!(p, "<root>\n  <leaf>v</leaf>\n  <empty/>\n</root>\n");
    }
}
