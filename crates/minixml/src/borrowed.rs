//! The borrowed (zero-copy) element tier.
//!
//! [`ElemRef`] is the borrowed twin of [`Element`]: tag and attribute
//! names are `&str` slices of the input document, and character data is
//! `Cow<str>` that only owns a buffer when an entity escape actually
//! fired during the parse. A full parse of an escape-free document
//! allocates only the tree's `Vec` spines — no per-name, per-attribute
//! or per-text `String`s. The owned API sits on top as a plain
//! [`ElemRef::to_owned`].

use crate::node::{Element, XmlNode};
use std::borrow::Cow;

/// A child of a borrowed element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRef<'a> {
    /// A nested element.
    Element(ElemRef<'a>),
    /// Character data (already unescaped; borrowed unless an entity
    /// escape forced a decode).
    Text(Cow<'a, str>),
}

/// An XML element borrowed from the input document.
///
/// Mirrors the query API of [`Element`] (`find`, `find_path`,
/// `get_attr`, `text_content`, …) so unmarshal code can run over either
/// tier; [`crate::parse_ref`] produces it without copying names or
/// clean text out of the document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ElemRef<'a> {
    /// Tag name (may carry a namespace prefix like `SOAP-ENV:Body`).
    pub name: &'a str,
    /// Attributes in document order.
    pub attrs: Vec<(&'a str, Cow<'a, str>)>,
    /// Child nodes in document order.
    pub children: Vec<NodeRef<'a>>,
}

impl<'a> ElemRef<'a> {
    /// The value of attribute `key`, if present.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_ref())
    }

    /// The element's local name: the part after the namespace prefix.
    pub fn local_name(&self) -> &'a str {
        match self.name.split_once(':') {
            Some((_, local)) => local,
            None => self.name,
        }
    }

    /// Child elements, in order.
    pub fn elements(&self) -> impl Iterator<Item = &ElemRef<'a>> {
        self.children.iter().filter_map(|n| match n {
            NodeRef::Element(e) => Some(e),
            NodeRef::Text(_) => None,
        })
    }

    /// The first child element with the given *local* name.
    pub fn find(&self, local: &str) -> Option<&ElemRef<'a>> {
        self.elements().find(|e| e.local_name() == local)
    }

    /// All child elements with the given local name.
    pub fn find_all<'b>(&'b self, local: &'b str) -> impl Iterator<Item = &'b ElemRef<'a>> {
        self.elements().filter(move |e| e.local_name() == local)
    }

    /// Walks a path of local names, returning the first match at each step.
    pub fn find_path(&self, path: &[&str]) -> Option<&ElemRef<'a>> {
        let mut cur = self;
        for p in path {
            cur = cur.find(p)?;
        }
        Some(cur)
    }

    /// The concatenated character data of this element (direct text
    /// children only). Borrows when there is at most one text child —
    /// the overwhelmingly common shape for SOAP leaf values — and only
    /// concatenates into a fresh `String` otherwise.
    pub fn text_content(&self) -> Cow<'_, str> {
        let mut texts = self.children.iter().filter_map(|n| match n {
            NodeRef::Text(t) => Some(t),
            NodeRef::Element(_) => None,
        });
        let Some(first) = texts.next() else {
            return Cow::Borrowed("");
        };
        match texts.next() {
            None => Cow::Borrowed(first.as_ref()),
            Some(second) => {
                let mut s = String::with_capacity(first.len() + second.len());
                s.push_str(first);
                s.push_str(second);
                for t in texts {
                    s.push_str(t);
                }
                Cow::Owned(s)
            }
        }
    }

    /// True if the element has neither attributes nor children.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty() && self.children.is_empty()
    }

    /// Copies the borrowed tree into an owned [`Element`].
    pub fn to_owned(&self) -> Element {
        Element {
            name: self.name.to_owned(),
            attrs: self
                .attrs
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone().into_owned()))
                .collect(),
            children: self
                .children
                .iter()
                .map(|n| match n {
                    NodeRef::Element(e) => XmlNode::Element(e.to_owned()),
                    NodeRef::Text(t) => XmlNode::Text(t.clone().into_owned()),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_ref;
    use std::borrow::Cow;

    #[test]
    fn queries_mirror_the_owned_tier() {
        let doc = r#"<s:root xmlns:s="urn:x"><a>one</a><s:b>two</s:b><a>three</a></s:root>"#;
        let e = parse_ref(doc).unwrap();
        assert_eq!(e.local_name(), "root");
        assert_eq!(e.get_attr("xmlns:s"), Some("urn:x"));
        assert_eq!(e.get_attr("missing"), None);
        assert_eq!(e.elements().count(), 3);
        assert_eq!(e.find("b").unwrap().text_content(), "two");
        assert_eq!(e.find_all("a").count(), 2);
        assert_eq!(e.find_path(&["b"]).unwrap().text_content(), "two");
        assert!(!e.is_empty());
    }

    #[test]
    fn clean_text_and_names_are_borrowed() {
        let doc = "<a k=\"v\">plain</a>";
        let e = parse_ref(doc).unwrap();
        assert!(matches!(e.attrs[0].1, Cow::Borrowed(_)));
        assert!(matches!(e.text_content(), Cow::Borrowed(_)));
        // The name slice points into the document itself.
        let name_ptr = e.name.as_ptr() as usize;
        let doc_range = doc.as_ptr() as usize..doc.as_ptr() as usize + doc.len();
        assert!(doc_range.contains(&name_ptr));
    }

    #[test]
    fn escaped_text_is_owned_and_decoded() {
        let e = parse_ref("<a>x &amp; y</a>").unwrap();
        assert_eq!(e.text_content(), "x & y");
        // The decode forced the *node* to own its buffer; text_content
        // still hands out a borrow of that buffer.
        assert!(matches!(
            &e.children[0],
            crate::NodeRef::Text(Cow::Owned(_))
        ));
    }

    #[test]
    fn multiple_text_runs_concatenate() {
        let e = parse_ref("<a>one<b/>two</a>").unwrap();
        assert_eq!(e.text_content(), "onetwo");
    }

    #[test]
    fn to_owned_matches_owned_parse() {
        let doc = r#"<r a="1&amp;2"><x>t</x><![CDATA[<raw>]]></r>"#;
        let borrowed = parse_ref(doc).unwrap().to_owned();
        let owned = crate::parse(doc).unwrap();
        assert_eq!(borrowed, owned);
    }
}
