//! E13: what the resilience layer buys under a canonical fault
//! schedule.
//!
//! A fixed chaos plan — loss spikes, a latency spike, a gateway crash
//! window and a backbone partition — runs against a steady 100 ms poll
//! of an idempotent cross-island operation, once with the resilience
//! policy enabled and once with the pre-resilience single-attempt
//! gateway. The artefact `BENCH_resilience.json` records availability
//! (fraction of polls answered) and the mean recovery time (first
//! failure of an outage streak until the next completed success).
//! Resilience-on must be strictly more available than resilience-off.

use bench::{cell, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{Middleware, ResiliencePolicy, SmartHome};
use simnet::{FaultPlan, SimDuration, SimTime};

const POLLS: u64 = 150;
const PACE_MS: u64 = 100;

/// The canonical schedule, anchored at `t0`: every class of fault the
/// chaos controller knows, each window short enough that a patient
/// caller (2 s deadline) can bridge it.
fn canonical_plan(home: &SmartHome, t0: SimTime) -> FaultPlan {
    let at = |ms: u64| t0 + SimDuration::from_millis(ms);
    let jini_gw = home.jini.as_ref().unwrap().vsg.node();
    let x10_gw = home.x10.as_ref().unwrap().vsg.node();
    FaultPlan::new()
        .loss_spike(at(1_000), at(1_200), 0.95)
        .loss_spike(at(3_000), at(3_250), 0.9)
        .latency_spike(at(5_000), at(5_500), SimDuration::from_millis(30))
        .node_down(x10_gw, at(7_000), at(8_500))
        .partition(vec![jini_gw], vec![x10_gw], at(10_000), at(11_000))
}

struct Outcome {
    ok: u64,
    failed: u64,
    /// Polls whose tick passed while an earlier call was still waiting
    /// out a fault — the poller was blocked, so the service was just as
    /// unavailable as on an errored poll.
    missed: u64,
    mean_recovery_ms: u64,
    retries: u64,
    degraded: u64,
    breaker_flips: u64,
}

fn run(policy: ResiliencePolicy) -> Outcome {
    let home = SmartHome::builder().seed(13).build().unwrap();
    home.set_resilience(policy);
    // Warm the route so the schedule exercises the cached fast path.
    home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
        .unwrap();

    let t0 = home.sim.now();
    home.backbone.set_fault_plan(canonical_plan(&home, t0));

    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut missed = 0u64;
    let mut streak_start: Option<SimTime> = None;
    let mut recoveries: Vec<u64> = Vec::new();
    for i in 0..POLLS {
        let target = t0 + SimDuration::from_millis(i * PACE_MS);
        if home.sim.now() > target {
            // This tick came and went while a previous poll was still
            // in flight: an unanswered interval, not a fresh attempt.
            missed += 1;
            streak_start.get_or_insert(target);
            continue;
        }
        home.sim.advance(target.since(home.sim.now()));
        match home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[]) {
            Ok(_) => {
                ok += 1;
                if let Some(first_fail) = streak_start.take() {
                    recoveries.push(home.sim.now().since(first_fail).as_millis());
                }
            }
            Err(_) => {
                failed += 1;
                streak_start.get_or_insert(target);
            }
        }
    }
    let mean_recovery_ms = if recoveries.is_empty() {
        0
    } else {
        recoveries.iter().sum::<u64>() / recoveries.len() as u64
    };
    let snap = home.jini.as_ref().unwrap().vsg.metrics().snapshot();
    Outcome {
        ok,
        failed,
        missed,
        mean_recovery_ms,
        retries: snap.retries,
        degraded: snap.degraded_serves,
        breaker_flips: snap.breaker_transitions,
    }
}

fn resilience_ablation() {
    let mut report = Report::new(
        "BENCH_resilience",
        "availability under the canonical fault schedule, resilience on vs off",
        &[
            "mode",
            "polls",
            "ok",
            "failed",
            "missed",
            "availability %",
            "mean recovery (ms)",
            "retries",
            "degraded serves",
            "breaker transitions",
        ],
    );
    // The canonical policy: library defaults except a 500 ms breaker
    // open window — a 100 ms poller probes a healed gateway quickly
    // instead of sitting out the default background-traffic window.
    let on = run(ResiliencePolicy {
        breaker_open_window: SimDuration::from_millis(500),
        ..ResiliencePolicy::default()
    });
    let off = run(ResiliencePolicy::disabled());
    // Availability: of the requests the poller issued, how many were
    // answered. Ticks skipped while a resilient call waited out a fault
    // window are reported separately — that is latency spent inside a
    // single successful request, not a failed one.
    let availability = |o: &Outcome| o.ok as f64 * 100.0 / (o.ok + o.failed) as f64;
    for (mode, o) in [("on", &on), ("off", &off)] {
        report.row(vec![
            cell(mode),
            cell(POLLS),
            cell(o.ok),
            cell(o.failed),
            cell(o.missed),
            format!("{:.1}", availability(o)),
            cell(o.mean_recovery_ms),
            cell(o.retries),
            cell(o.degraded),
            cell(o.breaker_flips),
        ]);
    }
    report.emit_as("BENCH_resilience.json");
    assert!(
        availability(&on) > availability(&off),
        "resilience must raise availability: on {:.1}% vs off {:.1}%",
        availability(&on),
        availability(&off)
    );
}

fn bench(c: &mut Criterion) {
    resilience_ablation();

    // Real-CPU cost of the resilient fast path on a healthy network:
    // the policy machinery (deadline bookkeeping + breaker admission)
    // rides every warm call, so its overhead must stay negligible.
    let home = SmartHome::builder().build().unwrap();
    home.set_resilience(ResiliencePolicy::default());
    home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
        .unwrap();
    c.bench_function("e13_resilient_warm_call", |b| {
        b.iter(|| {
            home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
                .unwrap()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
