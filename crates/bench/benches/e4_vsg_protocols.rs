//! E4 (§3.1/§4.1 vs §5): the VSG protocol ablation.
//!
//! The prototype chose SOAP for simplicity; the paper lists its
//! advantages and §5 floats SIP. This bench quantifies the choice:
//! wire bytes and virtual latency per gateway call for SOAP vs a
//! compact binary RPC vs the SIP-like protocol, across payload sizes.
//! Expected shape: SOAP pays a large fixed envelope (~10× binary) that
//! amortises as payloads grow; SIP sits between; only SOAP pays TCP
//! handshakes.

use bench::{cell, fmt_us, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{CompactBinary, SipLike, Soap11, VsgProtocol, VsgRequest};
use simnet::{Network, Protocol, Sim};
use soap::Value;
use std::sync::Arc;

fn protocols() -> Vec<(&'static str, Arc<dyn VsgProtocol>, Protocol)> {
    vec![
        ("soap", Arc::new(Soap11::new()), Protocol::Http),
        ("binary", Arc::new(CompactBinary::new()), Protocol::Raw),
        ("sip", Arc::new(SipLike::new()), Protocol::Sip),
    ]
}

fn one_call(protocol: &Arc<dyn VsgProtocol>, wire: Protocol, payload_bytes: usize) -> (u64, u64) {
    let sim = Sim::new(1);
    let net = Network::ethernet(&sim);
    let server = protocol.bind(&net, "gw", Arc::new(|_, _| Ok(Value::Null)));
    let client = net.attach("c");
    let req = VsgRequest::new("svc", "put").arg("data", Value::Bytes(vec![0xAB; payload_bytes]));
    let t0 = sim.now();
    protocol.call(&net, client, server, &req).unwrap();
    let us = (sim.now() - t0).as_micros();
    let bytes = net.with_stats(|s| s.protocol(wire).bytes);
    (us, bytes)
}

fn simulated_ablation() {
    let mut report = Report::new(
        "E4",
        "VSG protocol ablation: one gateway call, varying payload",
        &[
            "payload",
            "soap bytes",
            "soap time",
            "binary bytes",
            "binary time",
            "sip bytes",
            "sip time",
            "soap/binary bytes",
        ],
    );
    for payload in [0usize, 16, 256, 1_024, 10_240] {
        let mut cells = vec![cell(payload)];
        let mut soap_bytes = 0;
        let mut bin_bytes = 1;
        for (name, protocol, wire) in protocols() {
            let (us, bytes) = one_call(&protocol, wire, payload);
            if name == "soap" {
                soap_bytes = bytes;
            }
            if name == "binary" {
                bin_bytes = bytes;
            }
            cells.push(cell(bytes));
            cells.push(fmt_us(us));
        }
        cells.push(format!("{:.1}x", soap_bytes as f64 / bin_bytes as f64));
        report.row(cells);
    }
    report.emit();

    // The qualitative §4.1 claims, checked as data.
    let (_, soap0) = one_call(
        &(Arc::new(Soap11::new()) as Arc<dyn VsgProtocol>),
        Protocol::Http,
        0,
    );
    let (_, bin0) = one_call(
        &(Arc::new(CompactBinary::new()) as Arc<dyn VsgProtocol>),
        Protocol::Raw,
        0,
    );
    assert!(
        soap0 > bin0 * 8,
        "SOAP fixed cost dwarfs binary ({soap0} vs {bin0})"
    );
}

fn bench(c: &mut Criterion) {
    simulated_ablation();

    // Real-CPU per protocol (the XML tax is real here too).
    for (name, protocol, _) in protocols() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = protocol.bind(&net, "gw", Arc::new(|_, _| Ok(Value::Null)));
        let client = net.attach("c");
        let req = VsgRequest::new("svc", "ping").arg("x", 1);
        c.bench_function(&format!("e4_call_{name}"), |b| {
            b.iter(|| protocol.call(&net, client, server, &req).unwrap())
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
