//! E5 (§1/§5): why 1:1 bridges don't scale.
//!
//! "It is not enough to develop a single bridge that connects two
//! specific middleware one to one." With pairwise bridges, connecting N
//! middleware costs N(N−1)/2 bridges (each with two converter halves);
//! with the framework it costs N PCMs. Expected shape: O(N²) vs O(N),
//! crossover immediately at N=3.
//!
//! The second table grounds the claim in this codebase: the *measured*
//! per-PCM component counts of the real four-island home.

use bench::{cell, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{ProtocolConversionManager, SmartHome};

fn simulated_scaling() {
    let mut report = Report::new(
        "E5",
        "connecting N middleware: pairwise bridges vs one-PCM-per-middleware",
        &[
            "N",
            "pairwise bridges",
            "bridge converter halves",
            "framework PCMs",
            "PCM proxy modules",
            "saving",
        ],
    );
    for n in 2u64..=8 {
        let bridges = n * (n - 1) / 2;
        let bridge_halves = bridges * 2;
        let pcms = n;
        let pcm_modules = n * 2; // one SP + one CP each
        report.row(vec![
            cell(n),
            cell(bridges),
            cell(bridge_halves),
            cell(pcms),
            cell(pcm_modules),
            format!("{:.1}x", bridge_halves as f64 / pcm_modules as f64),
        ]);
    }
    report.emit();

    // Ground truth from the built system: each island contributed
    // exactly one PCM, and every island reaches every other island.
    let home = SmartHome::builder().upnp(true).build().unwrap();
    let mut report = Report::new(
        "E5b",
        "the real five-island home: one PCM each, full connectivity",
        &[
            "island",
            "PCM",
            "services imported",
            "pairwise bridges this island would need",
        ],
    );
    let pcms: Vec<(&str, &dyn ProtocolConversionManager)> = vec![
        ("jini", &home.jini.as_ref().unwrap().pcm),
        ("havi", &home.havi.as_ref().unwrap().pcm),
        ("x10", &home.x10.as_ref().unwrap().pcm),
        ("mail", &home.mail.as_ref().unwrap().pcm),
        ("upnp", &home.upnp.as_ref().unwrap().pcm),
    ];
    let n = pcms.len();
    for (name, pcm) in &pcms {
        report.row(vec![
            cell(name),
            cell(pcm.middleware()),
            cell(pcm.imported().len()),
            cell(n - 1),
        ]);
    }
    report.emit();
}

fn bench(c: &mut Criterion) {
    simulated_scaling();

    // Real-CPU: what adding the Nth island costs (build homes of
    // increasing width).
    let mut group = c.benchmark_group("e5_build");
    group.sample_size(10);
    group.bench_function("two_islands", |b| {
        b.iter(|| {
            SmartHome::builder()
                .havi(false)
                .mail(false)
                .upnp(false)
                .build()
                .unwrap()
        })
    });
    group.bench_function("five_islands", |b| {
        b.iter(|| SmartHome::builder().upnp(true).build().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
