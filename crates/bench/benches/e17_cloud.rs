//! E17: the cloud bridge under WAN-grade hostility (DESIGN.md §14).
//!
//! A fleet of lazily-built homes pushes device registrations and state
//! notifications up a flaky WAN to per-home cloud-edge cells while the
//! item-1 workload generator plays a compressed day: a diurnal
//! activity curve, device churn, and the "everyone home at 6pm" flash
//! crowd. The canonical chaos schedule layers a loss spike, a long
//! partition, and a duplicate+reorder window (jittered per island) on
//! every home's WAN; downward commands are fired *during* the
//! duplicate window to stress the exactly-once machinery.
//!
//! The report asserts the tentpole contract:
//!
//!  * **duplicate-effect count = 0** in every cell — at-least-once
//!    delivery plus the home-side dedup window yields exactly-once
//!    application;
//!  * **delivered-notification ratio ≥ 99 % after heal** with
//!    store-and-forward on, and measurably lower with the outbox
//!    disabled (the ablation);
//!  * **`SIM_THREADS=1` ≡ `SIM_THREADS=4`** bit-for-bit on the
//!    deterministic cells (summary and fleet metrics snapshot).
//!
//! `BENCH_cloud.json` carries only virtual-time (deterministic) cells
//! so the bench gate can hold a band; wall-clock numbers (the 10k-home
//! lazy stand-up) go to stdout.

use bench::workload::{home_plan, install_cloud_plan, DiurnalProfile};
use bench::{cell, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{CloudConfig, CloudFleetSummary, HomeFleet, SmartHome};
use simnet::{FaultPlan, SimDuration, SimTime};
use std::time::Instant;

const PLAN_SEED: u64 = 0xE17;
const JITTER_SEED: u64 = 0xC10D;

fn minutes(m: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(m * 60)
}

/// The E17 workload: a 3-hour compressed day with the flash crowd in
/// hour 1, so the canonical chaos window overlaps it.
fn profile() -> DiurnalProfile {
    DiurnalProfile {
        base_per_hour: 30,
        churn_per_day: 4,
        flash_hour: 1,
        flash_burst: 25,
        flash_window: SimDuration::from_secs(10 * 60),
    }
}

/// The canonical WAN chaos schedule (minutes of virtual time): a loss
/// spike, a 20-minute partition, then duplicate+reorder laid over the
/// flash hour. Jittered ±60 s per island when installed.
fn canonical_chaos(home_node: simnet::NodeId, cloud_node: simnet::NodeId) -> FaultPlan {
    FaultPlan::new()
        .loss_spike(minutes(10), minutes(20), 0.10)
        .partition(vec![home_node], vec![cloud_node], minutes(30), minutes(50))
        .duplicate_spike(minutes(58), minutes(80), 0.30)
        .reorder_spike(minutes(58), minutes(80), SimDuration::from_millis(100))
}

struct CellRun {
    summary: CloudFleetSummary,
    /// Deterministic identity string: the summary plus the merged
    /// fleet metrics snapshot (all virtual-time cells).
    identity: String,
}

/// One fleet cell: `homes` lazy cloud homes, the E17 plan installed on
/// each, optional canonical chaos, commands fired mid-duplicate-window,
/// driven 3 h + 5 min of drain.
fn run_cell(homes: usize, threads: usize, cfg: CloudConfig, chaos: bool) -> CellRun {
    let fleet = HomeFleet::build_lazy(SmartHome::builder().threads(threads).cloud(cfg), homes)
        .expect("fleet builds");
    let p = profile();
    for (i, home) in fleet.homes().iter().enumerate() {
        let plan = home_plan(PLAN_SEED, i as u32, 3, &p);
        install_cloud_plan(home, &plan);
    }
    if chaos {
        let b = &fleet.home(0).cloud.as_ref().expect("cloud attached").bridge;
        // Every home's WAN attaches its nodes in the same order, so one
        // home's node ids address them all.
        let plan = canonical_chaos(b.home_node(), b.cloud_node());
        fleet.set_wan_fault_plan_jittered(&plan, JITTER_SEED, SimDuration::from_secs(60));
    }
    // Run into the duplicate+reorder window, then fire a non-idempotent
    // downward command at every home — at-least-once delivery must
    // still apply each exactly once.
    fleet.run_until(minutes(65));
    let backbone = fleet.cloud_backbone();
    let mut command_errors = 0u64;
    for i in 0..backbone.len() {
        if backbone
            .send_command(i, "hall-lamp", "switch", "on")
            .is_err()
        {
            command_errors += 1;
        }
    }
    // Heal and drain: 3 h of plan plus 5 quiet minutes.
    fleet.run_until(minutes(3 * 60 + 5));
    let summary = backbone.summary();
    let identity = format!(
        "{summary:?} command_errors={command_errors} fleet={}",
        fleet.fleet_snapshot().to_json()
    );
    CellRun { summary, identity }
}

fn report_row(report: &mut Report, scenario: &str, homes: usize, s: &CloudFleetSummary) {
    report.row(vec![
        scenario.into(),
        cell(homes),
        cell(s.notifications_raised),
        cell(s.notifications_delivered),
        format!("{:.2}", s.delivered_ratio * 100.0),
        cell(s.notifications_lost),
        cell(s.staleness_p50_us),
        cell(s.staleness_p99_us),
        cell(s.duplicate_effects),
        cell(s.commands_applied),
        cell(s.commands_deduped),
        cell(s.throttled),
        cell(s.reconnects),
    ]);
}

fn cloud_report() {
    let mut report = Report::new(
        "E17",
        "cloud bridge under WAN chaos: store-and-forward, epoch fencing, flash-crowd pushback",
        &[
            "scenario",
            "homes",
            "raised",
            "delivered",
            "delivered %",
            "lost",
            "staleness p50 us",
            "staleness p99 us",
            "duplicate effects",
            "cmds applied",
            "cmds deduped",
            "throttled",
            "reconnects",
        ],
    );

    const HOMES: usize = 100;

    // Canonical cell, twice: the thread count must not change a bit.
    let robust = run_cell(HOMES, 1, CloudConfig::default(), true);
    let robust_t4 = run_cell(HOMES, 4, CloudConfig::default(), true);
    assert_eq!(
        robust.identity, robust_t4.identity,
        "SIM_THREADS=1 and SIM_THREADS=4 must agree bit-for-bit"
    );
    let s = &robust.summary;
    assert_eq!(s.duplicate_effects, 0, "exactly-once violated");
    assert!(
        s.delivered_ratio >= 0.99,
        "delivered ratio {:.4} under canonical chaos must stay >= 99%",
        s.delivered_ratio
    );
    assert!(
        s.reconnects as usize >= 2 * HOMES,
        "partition forced re-handshakes"
    );
    assert!(
        s.commands_deduped > 0,
        "duplicate window exercised the dedup path"
    );
    report_row(&mut report, "WAN chaos, store-and-forward on", HOMES, s);

    // Ablation: same chaos, outbox disabled — every notification raised
    // while disconnected is gone, and the ratio shows it.
    let ablation = run_cell(
        HOMES,
        1,
        CloudConfig {
            store_and_forward: false,
            ..CloudConfig::default()
        },
        true,
    );
    let a = &ablation.summary;
    assert_eq!(a.duplicate_effects, 0);
    assert!(
        a.delivered_ratio < s.delivered_ratio - 0.01,
        "disabling store-and-forward must cost measurably: {:.4} vs {:.4}",
        a.delivered_ratio,
        s.delivered_ratio
    );
    report_row(&mut report, "WAN chaos, store-and-forward OFF", HOMES, a);

    // Flash crowd against a tight global budget: the cloud edge pushes
    // back with retry-after, homes back off, and everything still
    // arrives — later (staleness), never twice (duplicates).
    let throttled = run_cell(
        HOMES,
        1,
        CloudConfig {
            // 1 request/min/home fair share: well under the flash-hour
            // push rate, so the edge must push back.
            global_rate_per_min: 100,
            global_burst: 100,
            ..CloudConfig::default()
        },
        false,
    );
    let t = &throttled.summary;
    assert_eq!(t.duplicate_effects, 0);
    assert!(
        t.throttled > 0,
        "tight budget must push back during the flash"
    );
    assert!(
        t.delivered_ratio >= 0.99,
        "pushback delays, it must not lose"
    );
    report_row(&mut report, "flash crowd, tight admission budget", HOMES, t);

    report.emit_as("BENCH_cloud.json");

    // The 10k-home lazy stand-up: wall-clock only (host-dependent), so
    // it stays out of the gated artefact.
    let t0 = Instant::now();
    let fleet = HomeFleet::build_lazy(
        SmartHome::builder().threads(4).cloud(CloudConfig {
            drain_period: SimDuration::from_secs(1),
            ..CloudConfig::default()
        }),
        10_000,
    )
    .expect("10k-home fleet builds");
    let build_wall = t0.elapsed();
    assert_eq!(fleet.len(), 10_000);
    assert_eq!(fleet.materialized_count(), 0, "no island was built eagerly");
    let t0 = Instant::now();
    fleet.run_until(minutes(5));
    let drive_wall = t0.elapsed();
    let s10k = fleet.cloud_backbone().summary();
    assert_eq!(s10k.duplicate_effects, 0);
    assert!(
        s10k.reconnects >= 10_000,
        "every home handshakes within five minutes"
    );
    println!(
        "\n--- 10k-home lazy stand-up (wall-clock, not gated) ---\n\
         build: {:.2}s   drive 5 virtual minutes: {:.2}s   reconnects: {}   registered rosters: {}",
        build_wall.as_secs_f64(),
        drive_wall.as_secs_f64(),
        s10k.reconnects,
        fleet.cloud_backbone().cell(0).registered_devices().len(),
    );
}

fn bench(c: &mut Criterion) {
    cloud_report();

    // Real-CPU cost of one pump/drain cycle across a mid-size fleet.
    let mut group = c.benchmark_group("e17");
    group.sample_size(10);
    group.bench_function("cloud_fleet_advance_1s_100homes", |b| {
        let fleet = HomeFleet::build_lazy(
            SmartHome::builder()
                .threads(4)
                .cloud(CloudConfig::default()),
            100,
        )
        .unwrap();
        let p = profile();
        for (i, home) in fleet.homes().iter().enumerate() {
            install_cloud_plan(home, &home_plan(PLAN_SEED, i as u32, 3, &p));
        }
        b.iter(|| fleet.run_for(SimDuration::from_secs(1)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
