//! E3 (Fig. 4): the Jini ↔ X10 conversion transaction, decomposed.
//!
//! One `switch(on)` from an unmodified Jini client to a physical X10
//! lamp crosses: RMI marshal + Ethernet → Server Proxy → SOAP/HTTP over
//! the backbone → X10 PCM → CM11A serial handshakes → powerline frames.
//! Expected shape: the powerline dominates (hundreds of ms), SOAP is
//! milliseconds, RMI sub-millisecond — exactly why the paper's authors
//! could afford a "simple protocol" for the VSG.

use bench::{cell, fmt_us, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{Middleware, SmartHome};
use simnet::Protocol;
use soap::Value;

struct Stage {
    name: &'static str,
    virtual_us: u64,
    bytes: u64,
    frames: u64,
}

fn measure_stages() -> Vec<Stage> {
    let mut stages = Vec::new();

    // Stage A: the native RMI leg alone (Jini client -> laserdisc echo).
    {
        let home = SmartHome::builder().build().unwrap();
        let jini_net = &home.jini.as_ref().unwrap().net;
        let node = jini_net.attach("probe");
        let registrars = jini::discover(jini_net, node, "public");
        let client = jini::RegistrarClient::new(jini_net, node, registrars[0]);
        let item = client
            .lookup_one(&jini::ServiceTemplate::by_interface("LaserdiscPlayer"))
            .unwrap();
        let proxy = jini::RemoteProxy::new(jini_net, node, item.proxy);
        let t0 = home.sim.now();
        let b0 = jini_net.with_stats(|s| s.protocol(Protocol::Jini));
        proxy.invoke("status", &[]).unwrap();
        let b1 = jini_net.with_stats(|s| s.protocol(Protocol::Jini));
        stages.push(Stage {
            name: "RMI leg (Jini Ethernet)",
            virtual_us: (home.sim.now() - t0).as_micros(),
            bytes: b1.bytes - b0.bytes,
            frames: b1.frames - b0.frames,
        });
    }

    // Stage B: the SOAP gateway-to-gateway leg alone (warm route).
    {
        let home = SmartHome::builder().build().unwrap();
        home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .unwrap();
        let t0 = home.sim.now();
        let b0 = home.backbone.with_stats(|s| s.protocol(Protocol::Http));
        home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .unwrap();
        let b1 = home.backbone.with_stats(|s| s.protocol(Protocol::Http));
        stages.push(Stage {
            name: "SOAP leg (backbone HTTP)",
            virtual_us: (home.sim.now() - t0).as_micros(),
            bytes: b1.bytes - b0.bytes,
            frames: b1.frames - b0.frames,
        });
    }

    // Stage C: the CM11A + powerline leg alone.
    {
        let home = SmartHome::builder().build().unwrap();
        let x10 = home.x10.as_ref().unwrap();
        let t0 = home.sim.now();
        let s0 = x10.serial.with_stats(|s| s.protocol(Protocol::X10));
        let p0 = x10.powerline.with_stats(|s| s.protocol(Protocol::X10));
        // Drive the PCM's invoker directly through its own gateway
        // (local dispatch: no backbone traffic).
        x10.vsg
            .invoke(
                &home.sim,
                "hall-lamp",
                "switch",
                &[("on".into(), Value::Bool(true))],
            )
            .unwrap();
        let s1 = x10.serial.with_stats(|s| s.protocol(Protocol::X10));
        let p1 = x10.powerline.with_stats(|s| s.protocol(Protocol::X10));
        stages.push(Stage {
            name: "CM11A serial + powerline",
            virtual_us: (home.sim.now() - t0).as_micros(),
            bytes: (s1.bytes - s0.bytes) + (p1.bytes - p0.bytes),
            frames: (s1.frames - s0.frames) + (p1.frames - p0.frames),
        });
    }

    // Stage D: the full Fig. 4 path, end to end, from a real Jini client.
    {
        let home = SmartHome::builder().build().unwrap();
        let jini = home.jini.as_ref().unwrap();
        jini.pcm
            .export_remote(&jini.vsg.resolve("hall-lamp").unwrap())
            .unwrap();
        let jini_net = &jini.net;
        let node = jini_net.attach("fig4-client");
        let registrars = jini::discover(jini_net, node, "public");
        let client = jini::RegistrarClient::new(jini_net, node, registrars[0]);
        let item = client
            .lookup_one(&jini::ServiceTemplate::by_interface("Lamp"))
            .unwrap();
        let proxy = jini::RemoteProxy::new(jini_net, node, item.proxy);
        // Warm the gateway route, then measure.
        proxy.invoke("status", &[]).unwrap();
        let t0 = home.sim.now();
        proxy.invoke("switch", &[jini::JValue::Bool(true)]).unwrap();
        let total_us = (home.sim.now() - t0).as_micros();
        let x10 = home.x10.as_ref().unwrap();
        assert!(x10.hall_lamp.is_on(), "the physical lamp switched");
        stages.push(Stage {
            name: "FULL PATH (Fig. 4)",
            virtual_us: total_us,
            bytes: 0,
            frames: 0,
        });
    }
    stages
}

fn bench(c: &mut Criterion) {
    let stages = measure_stages();
    let full = stages.last().unwrap().virtual_us;
    let mut report = Report::new(
        "E3",
        "Fig. 4 Jini->X10 transaction breakdown (one switch command)",
        &["stage", "virtual time", "bytes", "frames", "% of full path"],
    );
    for s in &stages {
        report.row(vec![
            cell(s.name),
            fmt_us(s.virtual_us),
            cell(s.bytes),
            cell(s.frames),
            format!("{:.1}%", 100.0 * s.virtual_us as f64 / full as f64),
        ]);
    }
    report.emit();

    // Real-CPU cost of the full conversion path.
    let home = SmartHome::builder().build().unwrap();
    home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
        .unwrap();
    let mut group = c.benchmark_group("e3");
    group.sample_size(20);
    group.bench_function("full_jini_to_x10_switch", |b| {
        b.iter(|| {
            home.invoke_from(
                Middleware::Jini,
                "hall-lamp",
                "switch",
                &[("on".into(), Value::Bool(true))],
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
