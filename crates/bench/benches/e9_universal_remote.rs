//! E9 (Fig. 5): the Universal Remote Controller, replayed.
//!
//! A scripted session on the X10 handheld remote drives an X10 lamp, the
//! Jini laserdisc and the HAVi DV camera. Measured: per-command
//! end-to-end latency (button press to target state change) and the
//! command rate the remote can sustain. Expected shape: the powerline's
//! ~0.8 s/command floor dominates everything — the remote, not the
//! framework, is the bottleneck (which is why the demo in Fig. 5 felt
//! instantaneous to its user: human-scale, not network-scale, latency).

use bench::{cell, fmt_us, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::pcm::x10::Route;
use metaware::{house, unit, SmartHome};
use simnet::SimDuration;
use soap::Value;
use x10::{Button, Function};

fn routed_home() -> SmartHome {
    let home = SmartHome::builder().build().unwrap();
    let x10 = home.x10.as_ref().unwrap();
    for (btn, function, service, operation) in [
        (5, Function::On, "laserdisc", "play"),
        (5, Function::Off, "laserdisc", "stop"),
        (6, Function::On, "dv-camera", "record"),
        (6, Function::Off, "dv-camera", "stop"),
    ] {
        x10.pcm.add_route(Route {
            house: house('A'),
            unit: unit(btn),
            function,
            service: service.into(),
            operation: operation.into(),
            args: if operation == "play" {
                vec![("chapter".into(), Value::Int(1))]
            } else {
                vec![]
            },
        });
    }
    home
}

fn replay() {
    let home = routed_home();
    let x10 = home.x10.as_ref().unwrap();
    let _poll = x10.pcm.start_polling(SimDuration::from_millis(250));
    let mut remote = x10.remote();

    let mut report = Report::new(
        "E9",
        "Universal Remote Controller session replay (Fig. 5)",
        &[
            "button",
            "target",
            "middleware",
            "latency (press -> effect)",
        ],
    );

    // Button 1: native lamp.
    let t0 = home.sim.now();
    remote.press(Button::On(1));
    let native_us = (home.sim.now() - t0).as_micros();
    assert!(x10.hall_lamp.is_on());
    report.row(vec![
        cell("A1 ON"),
        cell("hall-lamp"),
        cell("x10 (native)"),
        fmt_us(native_us),
    ]);

    // Button 5: Jini laserdisc — effect lands on the next PCM poll.
    let t0 = home.sim.now();
    remote.press(Button::On(5));
    let mut waited = SimDuration::ZERO;
    while !home.jini.as_ref().unwrap().laserdisc.lock().playing {
        home.sim.run_for(SimDuration::from_millis(50));
        waited += SimDuration::from_millis(50);
        assert!(
            waited < SimDuration::from_secs(5),
            "laserdisc never started"
        );
    }
    let jini_us = (home.sim.now() - t0).as_micros();
    report.row(vec![
        cell("A5 ON"),
        cell("laserdisc"),
        cell("jini (bridged)"),
        fmt_us(jini_us),
    ]);

    // Button 6: HAVi camera.
    let t0 = home.sim.now();
    remote.press(Button::On(6));
    let cam = home.havi.as_ref().unwrap().camcorder.clone_state_probe();
    let mut waited = SimDuration::ZERO;
    while cam() != havi::TransportState::Recording {
        home.sim.run_for(SimDuration::from_millis(50));
        waited += SimDuration::from_millis(50);
        assert!(waited < SimDuration::from_secs(5), "camera never started");
    }
    let havi_us = (home.sim.now() - t0).as_micros();
    report.row(vec![
        cell("A6 ON"),
        cell("dv-camera"),
        cell("havi (bridged)"),
        fmt_us(havi_us),
    ]);

    // Sustained rate: a 10-command session.
    let t0 = home.sim.now();
    for i in 0..5 {
        remote.press(Button::On(if i % 2 == 0 { 5 } else { 6 }));
        remote.press(Button::Off(if i % 2 == 0 { 5 } else { 6 }));
    }
    home.sim.run_for(SimDuration::from_secs(1));
    let session = home.sim.now() - t0;
    let per_cmd = session.as_micros() / 10;
    report.row(vec![
        cell("10-cmd session"),
        cell("mixed"),
        cell("all"),
        format!("{} ({:.2} cmd/s)", fmt_us(per_cmd), 1e6 / per_cmd as f64),
    ]);
    report.emit();
}

// A tiny helper so the replay loop reads cleanly.
trait StateProbe {
    fn clone_state_probe(&self) -> Box<dyn Fn() -> havi::TransportState + '_>;
}

impl StateProbe for havi::Dcm {
    fn clone_state_probe(&self) -> Box<dyn Fn() -> havi::TransportState + '_> {
        Box::new(move || {
            self.fcm(havi::FcmKind::DvCamera)
                .map(|f| f.state().transport)
                .unwrap_or(havi::TransportState::Stopped)
        })
    }
}

fn bench(c: &mut Criterion) {
    replay();

    // Real-CPU: one full press-to-effect cycle for the bridged path.
    let mut group = c.benchmark_group("e9");
    group.sample_size(10);
    group.bench_function("press_route_invoke_cycle", |b| {
        let home = routed_home();
        let x10 = home.x10.as_ref().unwrap();
        let mut remote = x10.remote();
        b.iter(|| {
            remote.press(Button::On(5));
            x10.pcm.pump();
            remote.press(Button::Off(5));
            x10.pcm.pump();
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
