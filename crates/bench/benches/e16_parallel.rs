//! E16: conservative parallel execution of a home fleet (DESIGN.md §12).
//!
//! The fleet of independent homes is the embarrassing-parallel case
//! the conservative scheduler is built for: every home is one island,
//! no island ever sends a frame to another, so the lookahead window is
//! unbounded and worker threads never synchronise mid-run. This bench
//! checks the two promises the scheduler makes:
//!
//!  * **identity** — metrics snapshots and scheduler statistics are
//!    bit-for-bit identical at 1, 2 and 4 worker threads;
//!  * **speed** — wall-clock throughput scales with cores. The ≥ 2.5×
//!    assertion at 4 threads only fires when the host actually has
//!    ≥ 4 cores (CI containers often expose 1).
//!
//! A second, coupled topology (two islands exchanging pings over a
//! 5 ms link) exercises the windowed path: windows, events and
//! cross-island sends are deterministic and land in the report.
//!
//! `BENCH_parallel.json` carries only virtual-time (deterministic)
//! cells so the bench gate can hold a tight band; wall-clock numbers
//! go to stdout.

use bench::workload::Workload;
use bench::{cell, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{HomeFleet, SmartHome, Vsg};
use simnet::{ParRunStats, ParSim, Sim, SimDuration};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const HOMES: usize = 8;
const DRIVE_SECS: u64 = 10;
const CALL_PERIOD: SimDuration = SimDuration::from_millis(20);

struct FleetRun {
    stats: ParRunStats,
    invocations: u64,
    wall: Duration,
    snapshots: Vec<String>,
}

/// Arms one seeded call driver per home: every 20 ms of virtual time
/// the home plays the next call of its own workload stream.
fn arm_drivers(fleet: &HomeFleet, invocations: &Arc<AtomicU64>) {
    for (i, home) in fleet.homes().iter().enumerate() {
        let mut workload = Workload::new(1000 + i as u64);
        let home_gw: Vec<(metaware::Middleware, Vsg)> = [
            metaware::Middleware::Jini,
            metaware::Middleware::Havi,
            metaware::Middleware::X10,
            metaware::Middleware::Mail,
        ]
        .iter()
        .filter_map(|&mw| home.gateway(mw).cloned().map(|v| (mw, v)))
        .collect();
        let count = invocations.clone();
        home.sim.every(CALL_PERIOD, move |sim| {
            let call = workload.next_call();
            if let Some((_, vsg)) = home_gw.iter().find(|(mw, _)| *mw == call.from) {
                if vsg
                    .invoke(sim, call.service, call.operation, &call.args)
                    .is_ok()
                {
                    count.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }
}

/// Builds the fleet, drives `DRIVE_SECS` of virtual time, and returns
/// scheduler stats plus every gateway snapshot (island-tagged JSON).
fn run_fleet(threads: usize) -> FleetRun {
    let fleet = HomeFleet::build(SmartHome::builder().threads(threads), HOMES).unwrap();
    let invocations = Arc::new(AtomicU64::new(0));
    arm_drivers(&fleet, &invocations);
    let t0 = Instant::now();
    let stats = fleet.run_for(SimDuration::from_secs(DRIVE_SECS));
    let wall = t0.elapsed();
    FleetRun {
        stats,
        invocations: invocations.load(Ordering::Relaxed),
        wall,
        snapshots: fleet
            .metrics_snapshots()
            .iter()
            .map(|s| s.to_json())
            .collect(),
    }
}

/// Two coupled islands ping-ponging over a 5 ms link: the windowed,
/// deterministic-merge path. Returns the run stats.
fn run_coupled() -> ParRunStats {
    let mut par = ParSim::new(2);
    let a = par.add_island(Sim::with_island(7, 0));
    let b = par.add_island(Sim::with_island(7, 1));
    par.couple(a, b, SimDuration::from_millis(5));
    let to_b = par.courier(a);
    let to_a = par.courier(b);
    // Island A fires a local tick every 1 ms and relays every 10th
    // tick to B; B echoes straight back.
    let tick = Arc::new(AtomicU64::new(0));
    let t = tick.clone();
    par.islands()[a].every(SimDuration::from_millis(1), move |_| {
        t.fetch_add(1, Ordering::Relaxed);
    });
    for k in 0..20u64 {
        let to_a = to_a.clone();
        to_b.send(b, SimDuration::from_millis(5 + k), move |sim: &Sim| {
            to_a.send(a, SimDuration::from_millis(5), |_| {});
            let _ = sim.now();
        });
    }
    par.run_until(simnet::SimTime::ZERO + SimDuration::from_secs(1))
}

fn parallel_report() {
    let runs: Vec<(usize, FleetRun)> = [1usize, 2, 4].iter().map(|&t| (t, run_fleet(t))).collect();

    // Identity: every deterministic artefact is independent of the
    // worker thread count.
    let (_, first) = &runs[0];
    for (threads, run) in &runs[1..] {
        assert_eq!(
            first.snapshots, run.snapshots,
            "metrics snapshots must be bit-for-bit identical at {threads} threads"
        );
        assert_eq!(
            (
                first.stats.windows,
                first.stats.events,
                first.stats.cross_sends
            ),
            (run.stats.windows, run.stats.events, run.stats.cross_sends),
            "scheduler statistics must be identical at {threads} threads"
        );
        assert_eq!(first.invocations, run.invocations);
    }

    let mut report = Report::new(
        "E16",
        "conservative parallel fleet, threads swept 1/2/4: deterministic cells (wall-clock on stdout)",
        &[
            "topology",
            "islands",
            "windows",
            "events",
            "cross-island sends",
            "invocations",
            "inv/virtual-sec",
        ],
    );
    report.row(vec![
        "independent homes".into(),
        cell(HOMES),
        cell(first.stats.windows),
        cell(first.stats.events),
        cell(first.stats.cross_sends),
        cell(first.invocations),
        format!("{:.1}", first.invocations as f64 / DRIVE_SECS as f64),
    ]);
    let coupled = run_coupled();
    report.row(vec![
        "coupled ping-pong (5ms lookahead)".into(),
        cell(2),
        cell(coupled.windows),
        cell(coupled.events),
        cell(coupled.cross_sends),
        cell(0),
        cell("0.0"),
    ]);
    report.emit_as("BENCH_parallel.json");

    // Wall-clock scaling — printed, never gated: it depends on the
    // host. The speedup assertion needs real cores to mean anything.
    println!("\n--- wall-clock scaling ({HOMES} homes, {DRIVE_SECS}s virtual) ---");
    let wall1 = runs[0].1.wall.as_secs_f64();
    for (threads, run) in &runs {
        let wall = run.wall.as_secs_f64();
        println!(
            "threads={threads}: {:.0} invokes/sec wall, speedup {:.2}x",
            run.invocations as f64 / wall,
            wall1 / wall
        );
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        let wall4 = runs[2].1.wall.as_secs_f64();
        let speedup = wall1 / wall4;
        assert!(
            speedup >= 2.5,
            "4 threads must give >= 2.5x on independent homes (got {speedup:.2}x)"
        );
    } else {
        println!("[speedup assertion skipped: host exposes {cores} core(s)]");
    }
}

fn bench(c: &mut Criterion) {
    parallel_report();

    // Real-CPU cost of one parallel barrier cycle: a small fleet
    // advanced 100 ms per iteration.
    let mut group = c.benchmark_group("e16");
    group.sample_size(10);
    group.bench_function("fleet_advance_100ms_2homes", |b| {
        let fleet = HomeFleet::build(SmartHome::builder().threads(2), 2).unwrap();
        let invocations = Arc::new(AtomicU64::new(0));
        arm_drivers(&fleet, &invocations);
        b.iter(|| fleet.run_for(SimDuration::from_millis(100)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
