//! E8 (§3.3): Virtual Service Repository performance.
//!
//! Publish and inquiry costs as the federation grows. Expected shape:
//! publish and exact-resolve are flat (one SOAP round trip plus an
//! index probe); wildcard finds grow with the result set (bigger
//! replies). With the registry's name/category indexes, records
//! scanned tracks result sizes instead of growing with the registry —
//! the building-scale deployment the paper gestures at is now a lookup
//! away, not a linear scan (`BENCH_hotpath.json` has the ablation).

use bench::{cell, fmt_us, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{catalog, Middleware, VirtualService, Vsr, VsrClient};
use simnet::{Network, Sim};

fn populated(n: usize) -> (Sim, Network, Vsr, VsrClient) {
    let sim = Sim::new(1);
    let net = Network::ethernet(&sim);
    let vsr = Vsr::start(&net);
    let node = net.attach("pcm");
    let client = VsrClient::new(&net, node, vsr.node());
    for i in 0..n {
        client
            .publish(&VirtualService::new(
                format!("svc-{i:04}"),
                catalog::lamp(),
                Middleware::X10,
                "x10-gw",
            ))
            .unwrap();
    }
    (sim, net, vsr, client)
}

fn simulated_scaling() {
    let mut report = Report::new(
        "E8",
        "VSR operations vs registry size (virtual time per op)",
        &[
            "services",
            "publish",
            "resolve",
            "find '%' (all)",
            "find 'svc-00%'",
            "records scanned",
        ],
    );
    for n in [1usize, 10, 50, 200, 500] {
        let (sim, _net, vsr, client) = populated(n);

        let t0 = sim.now();
        client
            .publish(&VirtualService::new(
                "probe",
                catalog::lamp(),
                Middleware::X10,
                "x10-gw",
            ))
            .unwrap();
        let publish_us = (sim.now() - t0).as_micros();

        let t0 = sim.now();
        client.resolve("svc-0000").unwrap();
        let resolve_us = (sim.now() - t0).as_micros();

        let t0 = sim.now();
        let all = client.find("%", None).unwrap();
        let find_all_us = (sim.now() - t0).as_micros();
        assert_eq!(all.len(), n + 1);

        let t0 = sim.now();
        client.find("svc-00%", None).unwrap();
        let find_some_us = (sim.now() - t0).as_micros();

        report.row(vec![
            cell(n),
            fmt_us(publish_us),
            fmt_us(resolve_us),
            fmt_us(find_all_us),
            fmt_us(find_some_us),
            cell(vsr.registry_stats().records_scanned),
        ]);
    }
    report.emit();
}

fn bench(c: &mut Criterion) {
    simulated_scaling();

    // Real-CPU at a realistic home scale and at building scale.
    for n in [10usize, 500] {
        let (_sim, _net, _vsr, client) = populated(n);
        c.bench_function(&format!("e8_resolve_n{n}"), |b| {
            b.iter(|| client.resolve("svc-0000").unwrap())
        });
        c.bench_function(&format!("e8_find_all_n{n}"), |b| {
            b.iter(|| client.find("%", None).unwrap())
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
