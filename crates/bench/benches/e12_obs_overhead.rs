//! E12-obs: what observability costs.
//!
//! The tracing layer promises zero allocation overhead while disabled
//! (the default) — the warm remote-call hot path must stay within noise
//! of the pre-tracing build. Enabled, the costs are explicit and
//! bounded: span records on each gateway plus the trace-context header
//! riding the wire. This ablation measures both sides and writes the
//! artefact `BENCH_obs.json`.

use bench::{cell, fmt_us, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{Middleware, SmartHome};
use std::time::Instant;

fn obs_overhead_ablation() {
    let mut report = Report::new(
        "BENCH_obs",
        "observability overhead: warm cross-island call, tracing off vs on",
        &[
            "mode",
            "sim time/call",
            "backbone bytes/call",
            "wall clock/call",
            "spans/call",
        ],
    );
    let calls = 200u64;
    for traced in [false, true] {
        let home = SmartHome::builder().build().unwrap();
        home.set_tracing(traced);
        // Warm the route cache so every measured call rides the fast path.
        home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .unwrap();
        home.take_spans();

        let t0 = home.sim.now();
        let b0 = home.backbone.with_stats(|s| s.total().bytes);
        let wall0 = Instant::now();
        for _ in 0..calls {
            home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
                .unwrap();
        }
        let wall_ns = wall0.elapsed().as_nanos() as u64 / calls;
        let sim_us = (home.sim.now() - t0).as_micros() / calls;
        let bytes = (home.backbone.with_stats(|s| s.total().bytes) - b0) / calls;
        let spans = home.take_spans().len() as u64 / calls;
        report.row(vec![
            cell(if traced { "traced" } else { "untraced" }),
            fmt_us(sim_us),
            cell(bytes),
            format!("{wall_ns}ns"),
            cell(spans),
        ]);
    }
    report.emit_as("BENCH_obs.json");
}

fn bench(c: &mut Criterion) {
    obs_overhead_ablation();

    // Real-CPU: the same warm call under Criterion, both modes.
    for traced in [false, true] {
        let home = SmartHome::builder().build().unwrap();
        home.set_tracing(traced);
        home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .unwrap();
        let name = if traced {
            "e12_obs_traced_call"
        } else {
            "e12_obs_untraced_call"
        };
        c.bench_function(name, |b| {
            b.iter(|| {
                home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
                    .unwrap()
            })
        });
        // Keep span storage bounded across Criterion's many iterations.
        home.take_spans();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
