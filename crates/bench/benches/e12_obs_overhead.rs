//! E12-obs: what observability costs.
//!
//! The tracing layer promises zero allocation overhead while disabled
//! (the default) — the warm remote-call hot path must stay within noise
//! of the pre-tracing build. Enabled, the costs are explicit and
//! bounded: span records on each gateway plus the trace-context header
//! riding the wire; head sampling then bounds what the flight recorder
//! *retains* without touching the wire at all. The last two rows pit
//! the mergeable sketch against exact nearest-rank quantiles over the
//! same samples. All JSON cells are deterministic (virtual time, byte
//! counts, kept-trace counts, quantiles); wall clock goes to stdout
//! only, so `bench_gate.py` never sees scheduler noise.

use bench::{cell, fmt_us, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{HistSketch, Middleware, SamplePolicy, SmartHome};
use std::time::Instant;

fn obs_overhead_ablation() {
    let mut report = Report::new(
        "BENCH_obs",
        "observability overhead: warm cross-island call, tracing off/on/sampled; sketch vs exact",
        &[
            "mode",
            "sim time/call",
            "backbone bytes/call",
            "traces kept",
            "p50 us",
            "p99 us",
        ],
    );
    let calls = 200u64;
    // (head rate per 10k or None=tracing off, row label)
    let modes: [(Option<u32>, &str); 3] = [
        (None, "untraced"),
        (Some(10_000), "traced"),
        (Some(100), "sampled-1%"),
    ];
    let mut exact_latencies: Vec<u64> = Vec::new();
    for (head, label) in modes {
        let home = SmartHome::builder().build().unwrap();
        home.set_tracing(head.is_some());
        if let Some(per_10k) = head {
            home.set_sampling(SamplePolicy {
                head_per_10k: per_10k,
                top_slow: 4,
                capacity: 1024,
            });
        }
        // Warm the route cache so every measured call rides the fast path.
        home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .unwrap();
        home.take_spans();

        let t0 = home.sim.now();
        let b0 = home.backbone.with_stats(|s| s.total().bytes);
        let m0 = home.merged_snapshot().registry.latency;
        let wall0 = Instant::now();
        for _ in 0..calls {
            let c0 = home.sim.now();
            home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
                .unwrap();
            if label == "traced" {
                exact_latencies.push((home.sim.now() - c0).as_micros());
            }
        }
        let wall_ns = wall0.elapsed().as_nanos() as u64 / calls;
        let sim_us = (home.sim.now() - t0).as_micros() / calls;
        let bytes = (home.backbone.with_stats(|s| s.total().bytes) - b0) / calls;
        home.harvest_traces();
        let kept = home.drain_flight().len() as u64;
        // Quantiles come straight off the always-on latency sketch
        // (the warm-up call is in there too — same service, same
        // bucket, quantiles unmoved).
        let sketch = home.merged_snapshot().registry.latency;
        assert_eq!(sketch.count - m0.count, calls, "one sample per call");
        report.row(vec![
            cell(label),
            fmt_us(sim_us),
            cell(bytes),
            cell(kept),
            cell(sketch.quantile_us(0.5)),
            cell(sketch.quantile_us(0.99)),
        ]);
        println!("e12 {label}: {wall_ns}ns wall/call (not gated)");
    }

    // Sketch vs exact over the identical sample set: the sketch's
    // nearest-rank answer may only round up within its bucket.
    exact_latencies.sort_unstable();
    let exact_q = |q: f64| {
        let rank = ((q * exact_latencies.len() as f64).ceil() as usize).max(1);
        exact_latencies[rank - 1]
    };
    let mut sketch = HistSketch::new();
    for &us in &exact_latencies {
        sketch.record(us);
    }
    for (label, p50, p99) in [
        ("exact", exact_q(0.5), exact_q(0.99)),
        ("sketch", sketch.quantile_us(0.5), sketch.quantile_us(0.99)),
    ] {
        report.row(vec![
            cell(label),
            cell("-"),
            cell("-"),
            cell("-"),
            cell(p50),
            cell(p99),
        ]);
    }
    assert!(sketch.quantile_us(0.99) >= exact_q(0.99));
    assert!(sketch.quantile_us(0.99) <= exact_q(0.99).saturating_mul(2).max(1));
    report.emit_as("BENCH_obs.json");
}

fn bench(c: &mut Criterion) {
    obs_overhead_ablation();

    // Real-CPU: the same warm call under Criterion, both modes.
    for traced in [false, true] {
        let home = SmartHome::builder().build().unwrap();
        home.set_tracing(traced);
        home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .unwrap();
        let name = if traced {
            "e12_obs_traced_call"
        } else {
            "e12_obs_untraced_call"
        };
        c.bench_function(name, |b| {
            b.iter(|| {
                home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
                    .unwrap()
            })
        });
        // Keep span storage bounded across Criterion's many iterations.
        home.take_spans();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
