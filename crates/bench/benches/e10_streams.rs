//! E10 (§4.2 / §6): "we can't integrate multimedia streaming".
//!
//! A DV stream needs ~30 Mbit/s with one packet every 125 µs. Native
//! HAVi carries it on reserved isochronous channels. Carrying the same
//! bytes through the SOAP VSG means one HTTP round trip per chunk — this
//! bench measures the achievable throughput and per-chunk latency of
//! that bridge and shows why the paper punts streams to "another Meta
//! middleware" (§6). Expected shape: native meets the deadline with
//! zero late packets; the SOAP bridge misses required throughput by an
//! order of magnitude even with large chunks.

use bench::{cell, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use havi::{StreamManager, DV_BYTES_PER_CYCLE};
use metaware::{CompactBinary, Soap11, VsgProtocol, VsgRequest};
use simnet::{Network, NodeId, Sim, SimDuration};
use soap::Value;
use std::sync::Arc;

fn native_stream() -> (f64, u64, u64) {
    let sim = Sim::new(1);
    let bus = Network::ieee1394(&sim);
    let smgr = StreamManager::new(&bus);
    let conn = smgr
        .connect(
            havi::Seid::new(NodeId(1), 1),
            havi::Seid::new(NodeId(2), 1),
            DV_BYTES_PER_CYCLE,
        )
        .unwrap();
    let report = smgr.pump(&sim, &conn, SimDuration::from_secs(5));
    let mbps = report.bytes as f64 * 8.0 / 5.0 / 1e6;
    (mbps, report.late_packets, report.max_jitter_us)
}

/// Pushes `total_bytes` of stream data through a VSG protocol in
/// `chunk`-byte calls, as fast as the protocol allows. Returns
/// (achieved Mbit/s, per-chunk latency us).
fn bridged_stream(protocol: Arc<dyn VsgProtocol>, chunk: usize, total_bytes: usize) -> (f64, u64) {
    let sim = Sim::new(1);
    let net = Network::ethernet(&sim);
    let server = protocol.bind(&net, "sink-gw", Arc::new(|_, _| Ok(Value::Null)));
    let client = net.attach("source-gw");
    let chunks = total_bytes / chunk;
    let t0 = sim.now();
    let mut per_chunk = 0u64;
    for i in 0..chunks {
        let c0 = sim.now();
        let req = VsgRequest::new("stream-sink", "put")
            .arg("seq", i as i64)
            .arg("data", Value::Bytes(vec![0xAA; chunk]));
        protocol.call(&net, client, server, &req).unwrap();
        per_chunk = (sim.now() - c0).as_micros();
    }
    let elapsed = (sim.now() - t0).as_secs_f64();
    let mbps = total_bytes as f64 * 8.0 / elapsed / 1e6;
    (mbps, per_chunk)
}

fn simulated_comparison() {
    let mut report = Report::new(
        "E10",
        "DV stream (needs 30.7 Mbit/s, 125us cadence): native vs VSG bridge",
        &[
            "carrier",
            "chunk",
            "achieved Mbit/s",
            "per-chunk latency",
            "meets DV rate?",
        ],
    );
    let required_mbps = DV_BYTES_PER_CYCLE as f64 * 8.0 / 125e-6 / 1e6;

    let (mbps, late, jitter) = native_stream();
    report.row(vec![
        "HAVi isochronous".into(),
        cell(DV_BYTES_PER_CYCLE),
        format!("{mbps:.1}"),
        format!("jitter<= {jitter}us, late={late}"),
        cell(mbps >= required_mbps),
    ]);

    for chunk in [480usize, 4_800, 48_000] {
        let (mbps, lat) = bridged_stream(Arc::new(Soap11::new()), chunk, 480_000);
        report.row(vec![
            "SOAP VSG bridge".into(),
            cell(chunk),
            format!("{mbps:.2}"),
            bench::fmt_us(lat),
            cell(mbps >= required_mbps),
        ]);
    }
    // Even the binary protocol (no XML, no TCP handshake) on 100 Mbit
    // Ethernet: closer, but without reservation there is no jitter bound.
    let (mbps, lat) = bridged_stream(Arc::new(CompactBinary::new()), 4_800, 480_000);
    report.row(vec![
        "binary VSG bridge".into(),
        cell(4_800),
        format!("{mbps:.2}"),
        bench::fmt_us(lat),
        format!("{} (no jitter bound)", mbps >= required_mbps),
    ]);
    report.emit();

    println!(
        "(required: {required_mbps:.1} Mbit/s gross DV rate; §6: \"another Meta\n\
         middleware should be developed for … multimedia services\")"
    );
}

fn bench(c: &mut Criterion) {
    simulated_comparison();

    let mut group = c.benchmark_group("e10");
    group.sample_size(10);
    group.bench_function("native_iso_1s", |b| {
        let sim = Sim::new(1);
        let bus = Network::ieee1394(&sim);
        let smgr = StreamManager::new(&bus);
        let conn = smgr
            .connect(
                havi::Seid::new(NodeId(1), 1),
                havi::Seid::new(NodeId(2), 1),
                DV_BYTES_PER_CYCLE,
            )
            .unwrap();
        b.iter(|| smgr.pump(&sim, &conn, SimDuration::from_secs(1)))
    });
    group.bench_function("soap_chunk_4800B", |b| {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let protocol = Soap11::new();
        let server = VsgProtocol::bind(&protocol, &net, "sink", Arc::new(|_, _| Ok(Value::Null)));
        let client = net.attach("src");
        let req = VsgRequest::new("sink", "put").arg("data", Value::Bytes(vec![0xAA; 4_800]));
        b.iter(|| VsgProtocol::call(&protocol, &net, client, server, &req).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
