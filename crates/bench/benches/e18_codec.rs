//! E18: zero-copy codec stack — three-codec wire-format ablation at
//! fleet load (DESIGN.md §15).
//!
//! The paper's §4 weighs SOAP against alternative wire formats on
//! qualitative grounds; this bench quantifies the trade on the same
//! gateway stack by swapping only the VSG codec: SOAP 1.1 (the
//! prototype), the SIP-like text protocol, and the compact binary
//! format, all driven by one seeded fleet-style workload.
//!
//! Measured per codec, all deterministic:
//!
//!  * **single-call mix** — a 256-call seeded trace against the
//!    standard home: wire bytes/op, heap allocs/op (counted by a
//!    wrapping global allocator in this harness — the production stack
//!    carries no counting), and virtual-time p50/p99;
//!  * **batch train** — a 32-member invocation batch between two
//!    gateways: bytes and allocs per member;
//!  * **stream decode** — the binary codec's length-prefixed streaming
//!    mode: the decoder's peak buffer must stay at or below one frame;
//!  * **fleet identity** — a 4-home fleet with per-home call drivers
//!    and periodic fan-out bursts, run at 1 and 2 worker threads:
//!    metrics snapshots, scheduler statistics, invocation counts and
//!    backbone bytes must be bit-for-bit identical (every codec, not
//!    just the default).
//!
//! Threshold assertions (exercised by `-- --test`, ci.sh's smoke gate):
//!
//!  * warm-path SOAP allocs/op must be >= 3x down from the
//!    pre-zero-copy stack ([`PRE_ZERO_COPY_SOAP_ALLOCS_PER_OP`]);
//!  * the binary codec must move fewer wire bytes/op than SOAP;
//!  * the streaming decoder's peak buffer must be <= 1x the frame.
//!
//! Emits `BENCH_codec.json`.

use bench::workload::{replay, Workload};
use bench::{cell, fmt_us, percentile, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::protocol::binval;
use metaware::{
    catalog, BatchCall, BatchItem, BatchPolicy, CompactBinary, HomeFleet, Middleware, SipLike,
    SmartHome, Soap11, VirtualService, Vsg, VsgProtocol, Vsr,
};
use simnet::{Network, ParRunStats, Sim, SimDuration};
use soap::Value;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts heap allocations so the report can state allocs/op. Only the
/// bench harness pays this; the codec stack itself is unchanged.
struct CountingAlloc;
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Warm-path allocs/op of the SOAP codec on this exact workload (seed
/// 42, 32-call warm-up, 256 measured calls, release profile), measured
/// at the commit before the zero-copy rework. The tentpole bar is a
/// >= 3x reduction against this number.
const PRE_ZERO_COPY_SOAP_ALLOCS_PER_OP: f64 = 207.4;

const TRACE_CALLS: usize = 256;
const BATCH_MEMBERS: usize = 32;
const FLEET_HOMES: usize = 4;
const FLEET_SECS: u64 = 3;

fn codecs() -> Vec<(&'static str, Arc<dyn VsgProtocol>)> {
    vec![
        ("soap", Arc::new(Soap11::new())),
        ("sip", Arc::new(SipLike::new())),
        ("binary", Arc::new(CompactBinary::new())),
    ]
}

struct MixRun {
    bytes_per_op: f64,
    allocs_per_op: f64,
    p50: u64,
    p99: u64,
}

/// Replays the seeded call trace against a standard home running on
/// `protocol`, measuring backbone bytes, allocations and virtual-time
/// latency per call.
fn run_mix(protocol: Arc<dyn VsgProtocol>) -> MixRun {
    let home = SmartHome::builder().protocol(protocol).build().unwrap();
    let mut w = Workload::new(42);
    replay(&home, &w.trace(32));
    let trace = w.trace(TRACE_CALLS);
    let b0 = home.backbone.with_stats(|s| s.total().bytes);
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let lat = replay(&home, &trace);
    let da = ALLOCS.load(Ordering::Relaxed) - a0;
    let db = home.backbone.with_stats(|s| s.total().bytes) - b0;
    MixRun {
        bytes_per_op: db as f64 / TRACE_CALLS as f64,
        allocs_per_op: da as f64 / TRACE_CALLS as f64,
        p50: percentile(&lat, 50.0),
        p99: percentile(&lat, 99.0),
    }
}

/// A two-gateway world with one warm exported service on `protocol`.
fn batch_world(protocol: Arc<dyn VsgProtocol>) -> (Sim, Network, Vsg) {
    let sim = Sim::new(7);
    let net = Network::ethernet(&sim);
    let vsr = Vsr::start(&net);
    let server = Vsg::start(&net, "gw-server", protocol.clone(), vsr.node()).unwrap();
    let caller = Vsg::start(&net, "gw-caller", protocol, vsr.node()).unwrap();
    server
        .export(
            VirtualService::new("bench-lamp", catalog::lamp(), Middleware::X10, "gw-server"),
            |_: &Sim, _: &str, _: &[(String, Value)]| Ok(Value::Bool(true)),
        )
        .unwrap();
    caller.invoke(&sim, "bench-lamp", "status", &[]).unwrap();
    (sim, net, caller)
}

/// One warm 32-member batch train: (bytes/member, allocs/member).
fn run_batch(protocol: Arc<dyn VsgProtocol>) -> (f64, f64) {
    let (sim, net, caller) = batch_world(protocol);
    caller.set_batching(BatchPolicy {
        max_batch: BATCH_MEMBERS,
        ..BatchPolicy::default()
    });
    let items: Vec<BatchItem> = (0..BATCH_MEMBERS)
        .map(|_| BatchItem::Call(BatchCall::new("bench-lamp", "status")))
        .collect();
    caller.invoke_batch(&sim, &items); // warm the batch path
    let b0 = net.with_stats(|s| s.total().bytes);
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let results = caller.invoke_batch(&sim, &items);
    let da = ALLOCS.load(Ordering::Relaxed) - a0;
    let db = net.with_stats(|s| s.total().bytes) - b0;
    assert!(
        results.iter().all(|r| r == &Ok(Value::Bool(true))),
        "every member of the train succeeds"
    );
    (
        db as f64 / BATCH_MEMBERS as f64,
        da as f64 / BATCH_MEMBERS as f64,
    )
}

/// Streams a 64-item binary batch frame through [`binval::StreamDecoder`]
/// in small chunks and returns peak-buffer / frame-length. The decoder
/// must never buffer more than one frame (the streaming-mode promise).
fn run_stream_decode() -> f64 {
    let items: Vec<Value> = (0..64)
        .map(|i| {
            Value::Record(vec![
                ("i".into(), Value::Int(i)),
                ("pad".into(), Value::Str("x".repeat(64))),
            ])
        })
        .collect();
    let mut frame = Vec::new();
    binval::encode_frame_into(&items, &mut frame);
    let mut dec = binval::StreamDecoder::new();
    let mut got = 0usize;
    for chunk in frame.chunks(48) {
        dec.push(chunk);
        while dec.next_item().is_some() {
            got += 1;
        }
    }
    assert_eq!(got, items.len(), "streamed decode recovers every item");
    assert!(dec.finished() && !dec.is_malformed());
    assert!(
        dec.peak_buffer() <= frame.len(),
        "streaming peak buffer {} exceeds one frame {}",
        dec.peak_buffer(),
        frame.len()
    );
    dec.peak_buffer() as f64 / frame.len() as f64
}

struct FleetRun {
    stats: ParRunStats,
    invocations: u64,
    bytes: u64,
    snapshots: Vec<String>,
}

/// Builds a fleet on `protocol`, arms per-home seeded call drivers plus
/// a periodic 8-member fan-out burst, and drives `FLEET_SECS` of
/// virtual time.
fn run_fleet(protocol: &Arc<dyn VsgProtocol>, threads: usize) -> FleetRun {
    let fleet = HomeFleet::build(
        SmartHome::builder()
            .protocol(protocol.clone())
            .threads(threads),
        FLEET_HOMES,
    )
    .unwrap();
    let invocations = Arc::new(AtomicU64::new(0));
    for (i, home) in fleet.homes().iter().enumerate() {
        let mut workload = Workload::new(1000 + i as u64);
        let home_gw: Vec<(Middleware, Vsg)> = [
            Middleware::Jini,
            Middleware::Havi,
            Middleware::X10,
            Middleware::Mail,
        ]
        .iter()
        .filter_map(|&mw| home.gateway(mw).cloned().map(|v| (mw, v)))
        .collect();
        let count = invocations.clone();
        home.sim.every(SimDuration::from_millis(20), move |sim| {
            let call = workload.next_call();
            if let Some((_, vsg)) = home_gw.iter().find(|(mw, _)| *mw == call.from) {
                if vsg
                    .invoke(sim, call.service, call.operation, &call.args)
                    .is_ok()
                {
                    count.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        // Fan-out burst: every 500 ms one gateway fires an 8-member
        // batch train (the codec's batch frame under fleet load).
        if let Some(vsg) = home.gateway(Middleware::Jini).cloned() {
            vsg.set_batching(BatchPolicy {
                max_batch: 8,
                ..BatchPolicy::default()
            });
            let count = invocations.clone();
            home.sim.every(SimDuration::from_millis(500), move |sim| {
                let items: Vec<BatchItem> = (0..8)
                    .map(|_| BatchItem::Call(BatchCall::new("hall-lamp", "status")))
                    .collect();
                let ok = vsg
                    .invoke_batch(sim, &items)
                    .iter()
                    .filter(|r| r.is_ok())
                    .count();
                count.fetch_add(ok as u64, Ordering::Relaxed);
            });
        }
    }
    let stats = fleet.run_for(SimDuration::from_secs(FLEET_SECS));
    FleetRun {
        stats,
        invocations: invocations.load(Ordering::Relaxed),
        bytes: fleet
            .homes()
            .iter()
            .map(|h| h.backbone.with_stats(|s| s.total().bytes))
            .sum(),
        snapshots: fleet
            .metrics_snapshots()
            .iter()
            .map(|s| s.to_json())
            .collect(),
    }
}

fn codec_report() {
    let mut report = Report::new(
        "E18",
        "three-codec wire ablation: 256-call mix, 32-member batch, stream decode, 4-home fleet",
        &["codec", "workload", "bytes/op", "allocs/op", "p50", "p99"],
    );

    let mut soap_mix_bytes = 0.0;
    let mut soap_mix_allocs = 0.0;
    let mut binary_mix_bytes = f64::MAX;
    for (name, protocol) in codecs() {
        let mix = run_mix(protocol.clone());
        report.row(vec![
            cell(name),
            format!("single-call mix ({TRACE_CALLS})"),
            format!("{:.1}", mix.bytes_per_op),
            format!("{:.1}", mix.allocs_per_op),
            fmt_us(mix.p50),
            fmt_us(mix.p99),
        ]);
        if name == "soap" {
            soap_mix_bytes = mix.bytes_per_op;
            soap_mix_allocs = mix.allocs_per_op;
        }
        if name == "binary" {
            binary_mix_bytes = mix.bytes_per_op;
        }
        let (batch_bytes, batch_allocs) = run_batch(protocol);
        report.row(vec![
            cell(name),
            format!("batch train ({BATCH_MEMBERS} members)"),
            format!("{batch_bytes:.1}"),
            format!("{batch_allocs:.1}"),
            cell("-"),
            cell("-"),
        ]);
    }

    // The tentpole bar: the zero-copy stack must hold SOAP's warm path
    // at >= 3x fewer allocations than the pre-rework stack.
    assert!(
        soap_mix_allocs * 3.0 <= PRE_ZERO_COPY_SOAP_ALLOCS_PER_OP,
        "soap warm allocs/op must be >= 3x down from {PRE_ZERO_COPY_SOAP_ALLOCS_PER_OP} \
         (got {soap_mix_allocs:.1})"
    );
    assert!(
        binary_mix_bytes < soap_mix_bytes,
        "binary codec must move fewer wire bytes/op than SOAP \
         ({binary_mix_bytes:.1} vs {soap_mix_bytes:.1})"
    );

    let peak_ratio = run_stream_decode();
    report.row(vec![
        "binary".into(),
        "stream decode peak-buffer/frame".into(),
        format!("{peak_ratio:.3}"),
        cell("-"),
        cell("-"),
        cell("-"),
    ]);

    // Fleet identity: every codec must stay deterministic under the
    // conservative parallel scheduler.
    for (name, protocol) in codecs() {
        let t1 = run_fleet(&protocol, 1);
        let t2 = run_fleet(&protocol, 2);
        assert_eq!(
            t1.snapshots, t2.snapshots,
            "{name}: metrics snapshots must be identical at 1 vs 2 threads"
        );
        assert_eq!(
            (t1.stats.windows, t1.stats.events, t1.stats.cross_sends),
            (t2.stats.windows, t2.stats.events, t2.stats.cross_sends),
            "{name}: scheduler statistics must be identical at 1 vs 2 threads"
        );
        assert_eq!(t1.invocations, t2.invocations, "{name}: invocation counts");
        assert_eq!(t1.bytes, t2.bytes, "{name}: backbone bytes");
        report.row(vec![
            cell(name),
            format!("fleet {FLEET_HOMES} homes x {FLEET_SECS}s (1==2 threads)"),
            format!("{:.1}", t1.bytes as f64 / t1.invocations.max(1) as f64),
            cell(t1.invocations),
            cell(t1.stats.windows),
            cell(t1.stats.events),
        ]);
    }

    report.emit_as("BENCH_codec.json");
}

fn bench(c: &mut Criterion) {
    codec_report();

    // Real-CPU cost of one warm single call per codec.
    let mut group = c.benchmark_group("e18");
    group.sample_size(20);
    for (name, protocol) in codecs() {
        let (sim, _net, caller) = batch_world(protocol);
        group.bench_function(&format!("invoke_warm_{name}"), |b| {
            b.iter(|| caller.invoke(&sim, "bench-lamp", "status", &[]).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
