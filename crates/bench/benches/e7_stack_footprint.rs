//! E7 (§4.2): "a TCP stack is large and complex. This can be an issue in
//! small devices or appliances with stringent memory and processing
//! requirements."
//!
//! Two tables: the footprint of each protocol stack, and which device
//! classes can host which stacks. Expected shape: the full SOAP stack
//! fits only set-top-box-class hardware; X10 modules can host nothing
//! but X10; SIP/UDP reaches one class further down than TCP/HTTP —
//! the quantified §5 argument.
//!
//! The third table adds a *dynamic* footprint: the per-command wire
//! bytes a device's network interface must buffer, measured from the
//! simulation.

use bench::{cell, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::footprint::{DEVICE_CLASSES, STACKS};
use metaware::{Middleware, SmartHome};
use simnet::Protocol;
use soap::Value;

fn static_tables() {
    let mut report = Report::new(
        "E7",
        "protocol stack footprints (2002-era figures)",
        &["stack", "code bytes", "RAM bytes"],
    );
    for s in STACKS {
        report.row(vec![cell(s.name), cell(s.code_bytes), cell(s.ram_bytes)]);
    }
    report.emit();

    let mut headers = vec!["device class (code/RAM)"];
    headers.extend(STACKS.iter().map(|s| s.name));
    let mut report = Report::new("E7b", "which devices can host which stacks", &headers);
    for d in DEVICE_CLASSES {
        let mut cells = vec![format!("{} ({}/{})", d.name, d.code_budget, d.ram_budget)];
        for s in &STACKS {
            cells.push(if d.can_host(s) {
                "yes".into()
            } else {
                "-".into()
            });
        }
        report.row(cells);
    }
    report.emit();
}

fn dynamic_table() {
    // Wire bytes per logical command at each device's attachment point.
    let home = SmartHome::builder().build().unwrap();
    let x10 = home.x10.as_ref().unwrap();
    home.invoke_from(
        Middleware::Jini,
        "hall-lamp",
        "switch",
        &[("on".into(), Value::Bool(true))],
    )
    .unwrap();
    let b_http0 = home
        .backbone
        .with_stats(|s| s.protocol(Protocol::Http).bytes);
    let b_pl0 = x10
        .powerline
        .with_stats(|s| s.protocol(Protocol::X10).bytes);
    home.invoke_from(
        Middleware::Jini,
        "hall-lamp",
        "switch",
        &[("on".into(), Value::Bool(false))],
    )
    .unwrap();
    let soap_bytes = home
        .backbone
        .with_stats(|s| s.protocol(Protocol::Http).bytes)
        - b_http0;
    let x10_bytes = x10
        .powerline
        .with_stats(|s| s.protocol(Protocol::X10).bytes)
        - b_pl0;

    let mut report = Report::new(
        "E7c",
        "dynamic footprint: wire bytes one 'lamp off' must traverse",
        &["attachment point", "bytes/command", "vs X10"],
    );
    report.row(vec![
        "gateway (SOAP/HTTP)".into(),
        cell(soap_bytes),
        format!("{:.0}x", soap_bytes as f64 / x10_bytes.max(1) as f64),
    ]);
    report.row(vec![
        "lamp module (powerline)".into(),
        cell(x10_bytes),
        "1x".into(),
    ]);
    report.emit();
}

fn bench(c: &mut Criterion) {
    static_tables();
    dynamic_table();

    // Real-CPU: the hosting check is trivially cheap, but registering it
    // keeps the harness uniform.
    c.bench_function("e7_feasibility_matrix", |b| {
        b.iter(|| {
            let mut fits = 0u32;
            for d in DEVICE_CLASSES {
                for s in &STACKS {
                    if d.can_host(s) {
                        fits += 1;
                    }
                }
            }
            fits
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
