//! E1 (Fig. 1 / §3): transparent any-to-any access.
//!
//! For every client-island × service pair, the end-to-end invocation
//! latency (virtual time) and backbone bytes, with the native
//! same-island call as the baseline. Expected shape: every pair works;
//! crossing the VSG adds a SOAP round trip (~ms); X10-backed services
//! are dominated by the powerline regardless of caller.

use bench::{cell, fmt_us, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{Middleware, SmartHome};
use soap::Value;

type Probe = (&'static str, &'static str, Vec<(String, Value)>);

fn probes() -> Vec<Probe> {
    vec![
        ("laserdisc", "status", vec![]),
        ("dv-camera", "status", vec![]),
        ("hall-lamp", "status", vec![]),
        (
            "mailer",
            "unread",
            vec![("mailbox".into(), Value::Str("x@y".into()))],
        ),
    ]
}

fn simulated_matrix() {
    let mut report = Report::new(
        "E1",
        "cross-middleware invocation latency (rows: client island; cols: target service)",
        &[
            "client",
            "laserdisc(jini)",
            "dv-camera(havi)",
            "hall-lamp(x10)",
            "mailer(inet)",
            "bytes/call",
        ],
    );
    for client in [
        Middleware::Jini,
        Middleware::Havi,
        Middleware::X10,
        Middleware::Mail,
    ] {
        let home = SmartHome::builder().build().unwrap();
        let mut cells = vec![cell(client)];
        let mut total_bytes = 0u64;
        for (service, op, args) in probes() {
            // Warm the route (VSR resolution is measured by E8, not here).
            home.invoke_from(client, service, op, &args).unwrap();
            let t0 = home.sim.now();
            let b0 = home.backbone.with_stats(|s| s.total().bytes);
            home.invoke_from(client, service, op, &args).unwrap();
            let dt = (home.sim.now() - t0).as_micros();
            total_bytes += home.backbone.with_stats(|s| s.total().bytes) - b0;
            cells.push(fmt_us(dt));
        }
        cells.push(cell(total_bytes / 4));
        report.row(cells);
    }

    // Baseline: native, no framework — a Jini client calling the
    // laserdisc over plain RMI on its own island.
    {
        let home = SmartHome::builder().build().unwrap();
        let jini_net = &home.jini.as_ref().unwrap().net;
        let node = jini_net.attach("native-client");
        let registrars = jini::discover(jini_net, node, "public");
        let client = jini::RegistrarClient::new(jini_net, node, registrars[0]);
        let item = client
            .lookup_one(&jini::ServiceTemplate::by_interface("LaserdiscPlayer"))
            .unwrap();
        let proxy = jini::RemoteProxy::new(jini_net, node, item.proxy);
        let t0 = home.sim.now();
        proxy.invoke("status", &[]).unwrap();
        let dt = (home.sim.now() - t0).as_micros();
        report.row(vec![
            cell("native-jini"),
            fmt_us(dt),
            cell("-"),
            cell("-"),
            cell("-"),
            cell(0),
        ]);
    }
    report.emit();
}

fn bench(c: &mut Criterion) {
    simulated_matrix();

    // Real-CPU cost of one warm cross-island call (Jini -> X10 status).
    let home = SmartHome::builder().build().unwrap();
    home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
        .unwrap();
    c.bench_function("e1_cross_call_jini_to_x10", |b| {
        b.iter(|| {
            home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
                .unwrap()
        })
    });

    // And the full home construction cost.
    let mut group = c.benchmark_group("e1_setup");
    group.sample_size(10);
    group.bench_function("build_full_home", |b| {
        b.iter(|| SmartHome::builder().build().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
