//! E2 (Fig. 2 / §4.1): automatic proxy generation.
//!
//! Generation cost scales with interface size (the Javassist load-time
//! cost), and the generated proxy's per-call dispatch overhead is
//! negligible next to any network hop. Expected shape: generation is
//! milliseconds per class and amortises after a handful of calls.

use bench::{cell, fmt_us, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{generate, MetaError, OpSig, ProxyGenCost, ServiceInterface, TypeTag};
use simnet::Sim;
use soap::Value;
use std::sync::Arc;

fn iface_with(methods: usize, params_per_method: usize) -> ServiceInterface {
    let mut iface = ServiceInterface::new(format!("Synth{methods}x{params_per_method}"));
    for m in 0..methods {
        let mut op = OpSig::new(format!("op{m}"));
        for p in 0..params_per_method {
            op = op.param(format!("p{p}"), TypeTag::Int);
        }
        iface = iface.op(op.returns(TypeTag::Int));
    }
    iface
}

fn echo_target() -> metaware::ProxyTarget {
    Arc::new(|_, _, args| Ok(Value::Int(args.len() as i64)))
}

fn simulated_generation_cost() {
    let mut report = Report::new(
        "E2",
        "proxy auto-generation cost vs interface size (virtual time)",
        &[
            "methods",
            "params/method",
            "generation",
            "per-call dispatch",
            "gen cost in SOAP-RTs",
        ],
    );
    for (methods, params) in [(1, 0), (4, 2), (8, 2), (16, 4), (32, 8)] {
        let sim = Sim::new(1);
        let iface = iface_with(methods, params);
        let t0 = sim.now();
        let proxy = generate(&sim, ProxyGenCost::default(), &iface, echo_target());
        let gen_cost = (sim.now() - t0).as_micros();

        let args: Vec<(String, Value)> = (0..params)
            .map(|p| (format!("p{p}"), Value::Int(1)))
            .collect();
        let t0 = sim.now();
        proxy.dispatch(&sim, "op0", &args).unwrap();
        let call_cost = (sim.now() - t0).as_micros().max(1);

        // Express the one-time generation cost in units of one warm SOAP
        // gateway round trip (~2.3 ms, from E1).
        let soap_rt = 2_336u64;
        report.row(vec![
            cell(methods),
            cell(params),
            fmt_us(gen_cost),
            fmt_us(call_cost),
            format!("{:.1}", gen_cost as f64 / soap_rt as f64),
        ]);
    }
    report.emit();
}

fn bench(c: &mut Criterion) {
    simulated_generation_cost();

    // Real-CPU: generation itself.
    let sim = Sim::new(1);
    let iface = iface_with(16, 4);
    c.bench_function("e2_generate_16x4", |b| {
        b.iter(|| generate(&sim, ProxyGenCost::free(), &iface, echo_target()))
    });

    // Real-CPU: generated dispatch vs a hand-written proxy doing the
    // same validation inline (the ablation: what does the generated
    // indirection cost?).
    let proxy = generate(&sim, ProxyGenCost::free(), &iface, echo_target());
    let args: Vec<(String, Value)> = (0..4).map(|p| (format!("p{p}"), Value::Int(1))).collect();
    c.bench_function("e2_generated_dispatch", |b| {
        b.iter(|| proxy.dispatch(&sim, "op7", &args).unwrap())
    });

    let hand_sig = iface.find("op7").unwrap().clone();
    let hand_target = echo_target();
    c.bench_function("e2_handwritten_dispatch", |b| {
        b.iter(|| -> Result<Value, MetaError> {
            hand_sig.check_args(&args)?;
            hand_target(&sim, "op7", &args)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
