//! E12: a day in the life of the federation.
//!
//! Not a paper figure — the capacity check the paper's one-room demo
//! never needed: a seeded, home-plausible mix of cross-island reads and
//! writes replayed through the framework, reporting latency percentiles
//! per call class. Expected shape: reads/writes that stay on their
//! island or cross only the backbone sit at sub-3ms; anything touching
//! the powerline pays ~0.8s; nothing fails.

use bench::workload::{replay, Workload};
use bench::{cell, fmt_us, percentile, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::SmartHome;

const CALLS: usize = 400;

fn saturation_table() {
    let home = SmartHome::builder().build().unwrap();
    let mut gen = Workload::new(0x1CDC_2002);
    let trace = gen.trace(CALLS);
    let latencies = replay(&home, &trace);

    // Group latencies by target service.
    let mut by_service: std::collections::BTreeMap<&str, Vec<u64>> = Default::default();
    for (call, lat) in trace.iter().zip(&latencies) {
        by_service.entry(call.service).or_default().push(*lat);
    }

    let mut report = Report::new(
        "E12",
        &format!("{CALLS}-call mixed workload: latency percentiles by service"),
        &["service", "calls", "p50", "p99", "max"],
    );
    for (service, lats) in &by_service {
        report.row(vec![
            cell(service),
            cell(lats.len()),
            fmt_us(percentile(lats, 50.0)),
            fmt_us(percentile(lats, 99.0)),
            fmt_us(*lats.iter().max().unwrap()),
        ]);
    }
    report.row(vec![
        "ALL".into(),
        cell(latencies.len()),
        fmt_us(percentile(&latencies, 50.0)),
        fmt_us(percentile(&latencies, 99.0)),
        fmt_us(*latencies.iter().max().unwrap()),
    ]);
    report.emit();
    println!(
        "virtual time for the whole session: {} ({:.2} calls/s sustained)",
        home.sim.now(),
        CALLS as f64 / home.sim.now().as_secs_f64()
    );
}

fn bench(c: &mut Criterion) {
    saturation_table();

    // Real-CPU throughput of the replay engine.
    let mut group = c.benchmark_group("e12");
    group.sample_size(10);
    group.bench_function("replay_100_calls", |b| {
        b.iter_with_setup(
            || {
                let home = SmartHome::builder().build().unwrap();
                let trace = Workload::new(7).trace(100);
                (home, trace)
            },
            |(home, trace)| replay(&home, &trace),
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
