//! E19: composite pipelines as first-class VSG citizens (DESIGN.md §16).
//!
//! A k-step pipeline over stage services spread round-robin across
//! three islands is run two ways from a fourth, service-less client
//! gateway: **engine** (the pipeline is registered in the VSR and the
//! island hosting the first hop drives every step) and
//! **client-driven** (the client invokes each step itself). The claim
//! under test is the composition tentpole:
//!
//!  * **round trips** — the 8-step cross-island composite costs the
//!    client ≤ 2 round trips where the client-driven run costs 8;
//!  * **saga under chaos** — with the island hosting stage 2 down,
//!    a depth-4 pipeline never double-executes a non-idempotent step
//!    (`double exec = 0`) and runs every expected compensator exactly
//!    once (`comps run == comps expected`);
//!  * **thread identity** — a 2-home fleet driving composites through
//!    a loss spike fingerprints bit-for-bit at 1 and 4 worker threads
//!    (`SIM_THREADS=1 ≡ SIM_THREADS=4`).
//!
//! `BENCH_compose.json` carries only virtual-time (deterministic)
//! cells so the bench gate can hold a band; Criterion measures the
//! real CPU cost of one engine run at depth 8.

use bench::{cell, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{
    Binding, CompositeSpec, HomeFleet, Layer, Middleware, OpSig, ResiliencePolicy,
    ServiceInterface, SmartHome, Soap11, StepSpec, TypeTag, VirtualService, Vsg, VsgProtocol, Vsr,
};
use parking_lot::Mutex;
use simnet::{FaultPlan, Network, Sim, SimDuration};
use soap::Value;
use std::sync::Arc;

const MAX_STAGES: usize = 8;
const ISLANDS: usize = 3;
const DEPTHS: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 0xE19;

struct PipeWorld {
    sim: Sim,
    net: Network,
    /// The service-less gateway the measured client calls from.
    client: Vsg,
    /// Island gateways; `islands[i % ISLANDS]` hosts `stage-i`.
    islands: Vec<Vsg>,
    /// Forward executions of the non-idempotent `fire`, per stage.
    fired: Arc<Mutex<Vec<u64>>>,
    /// Compensator executions of `unfire`, per stage.
    unfired: Arc<Mutex<Vec<u64>>>,
}

fn stage_interface() -> ServiceInterface {
    ServiceInterface::new("Stage")
        .op(OpSig::new("fire")
            .param("x", TypeTag::Int)
            .returns(TypeTag::Int))
        .op(OpSig::new("unfire"))
        .op(OpSig::new("probe").returns(TypeTag::Bool).idempotent())
}

fn build_world() -> PipeWorld {
    let sim = Sim::new(SEED);
    let net = Network::ethernet(&sim);
    let vsr = Vsr::start(&net);
    let protocol: Arc<dyn VsgProtocol> = Arc::new(Soap11::new());
    let islands: Vec<Vsg> = (0..ISLANDS)
        .map(|i| {
            Vsg::start(&net, &format!("island-{i}"), protocol.clone(), vsr.node())
                .expect("island gateway starts")
        })
        .collect();
    let client = Vsg::start(&net, "client-gw", protocol, vsr.node()).expect("client starts");

    let fired = Arc::new(Mutex::new(vec![0u64; MAX_STAGES]));
    let unfired = Arc::new(Mutex::new(vec![0u64; MAX_STAGES]));
    for i in 0..MAX_STAGES {
        let (f, u) = (fired.clone(), unfired.clone());
        let gw = &islands[i % ISLANDS];
        gw.export(
            VirtualService::new(
                format!("stage-{i}"),
                stage_interface(),
                Middleware::Jini,
                gw.name(),
            ),
            move |_: &Sim, op: &str, args: &[(String, Value)]| match op {
                "fire" => {
                    f.lock()[i] += 1;
                    let x = args
                        .iter()
                        .find(|(k, _)| k == "x")
                        .and_then(|(_, v)| v.as_int())
                        .unwrap_or(0);
                    Ok(Value::Int(x + 1))
                }
                "unfire" => {
                    u.lock()[i] += 1;
                    Ok(Value::Null)
                }
                _ => Ok(Value::Bool(true)),
            },
        )
        .expect("stage exports");
    }
    PipeWorld {
        sim,
        net,
        client,
        islands,
        fired,
        unfired,
    }
}

/// The depth-k pipeline: stage 0 fires on a literal, each later stage
/// on the previous stage's output, every stage compensated by `unfire`.
fn pipe_spec(depth: usize) -> CompositeSpec {
    let mut spec = CompositeSpec::new(format!("pipe-{depth}"));
    for i in 0..depth {
        let binding = if i == 0 {
            Binding::Literal(Value::Int(0))
        } else {
            Binding::Step(i - 1)
        };
        spec = spec.step(
            StepSpec::new(format!("stage-{i}"), "fire")
                .arg("x", binding)
                .compensate("unfire", vec![]),
        );
    }
    spec
}

/// Warms every route the cell will use, so the measured deltas are
/// steady-state wire traffic, not first-call VSR resolution.
fn warm_routes(world: &PipeWorld, depth: usize, engine: bool) {
    for i in 0..depth {
        world
            .client
            .invoke(&world.sim, &format!("stage-{i}"), "probe", &[])
            .expect("warm client route");
        if engine {
            world.islands[0]
                .invoke(&world.sim, &format!("stage-{i}"), "probe", &[])
                .expect("warm host route");
        }
    }
    if engine {
        world
            .client
            .invoke(&world.sim, &format!("pipe-{depth}"), "run", &[])
            .expect("warm composite route");
    }
}

struct CellMeasure {
    client_rts: u64,
    backbone_frames: u64,
    backbone_bytes: u64,
    virtual_us: u64,
}

fn measure(world: &PipeWorld, run: impl FnOnce()) -> CellMeasure {
    let rt0 = world
        .client
        .metrics_snapshot()
        .registry
        .layer(Layer::Wire)
        .count;
    let (f0, b0) = world
        .net
        .with_stats(|s| (s.total().frames, s.total().bytes));
    let t0 = world.sim.now();
    run();
    let rt1 = world
        .client
        .metrics_snapshot()
        .registry
        .layer(Layer::Wire)
        .count;
    let (f1, b1) = world
        .net
        .with_stats(|s| (s.total().frames, s.total().bytes));
    CellMeasure {
        client_rts: rt1 - rt0,
        backbone_frames: f1 - f0,
        backbone_bytes: b1 - b0,
        virtual_us: (world.sim.now() - t0).as_micros(),
    }
}

fn row(
    report: &mut Report,
    scenario: &str,
    depth: usize,
    m: &CellMeasure,
    double_exec: u64,
    comps_run: u64,
    comps_expected: u64,
) {
    report.row(vec![
        scenario.into(),
        cell(depth),
        cell(m.client_rts),
        cell(m.backbone_frames),
        cell(m.backbone_bytes),
        cell(m.virtual_us),
        cell(double_exec),
        cell(comps_run),
        cell(comps_expected),
    ]);
}

/// One engine cell: fresh world, pipeline registered on the island
/// hosting stage 0, one measured client call.
fn engine_cell(depth: usize) -> (CellMeasure, PipeWorld) {
    let world = build_world();
    world.islands[0]
        .register_composite(pipe_spec(depth))
        .expect("composite registers");
    warm_routes(&world, depth, true);
    let m = measure(&world, || {
        let out = world
            .client
            .invoke(&world.sim, &format!("pipe-{depth}"), "run", &[])
            .expect("engine pipeline succeeds");
        assert_eq!(out, Value::Int(depth as i64), "stage outputs chain");
    });
    (m, world)
}

/// One client-driven cell: the client invokes each stage itself,
/// threading the output through like the engine would.
fn client_cell(depth: usize) -> (CellMeasure, PipeWorld) {
    let world = build_world();
    warm_routes(&world, depth, false);
    let m = measure(&world, || {
        let mut x = Value::Int(0);
        for i in 0..depth {
            x = world
                .client
                .invoke(
                    &world.sim,
                    &format!("stage-{i}"),
                    "fire",
                    &[("x".into(), x)],
                )
                .expect("client-driven step succeeds");
        }
        assert_eq!(x, Value::Int(depth as i64), "stage outputs chain");
    });
    (m, world)
}

/// The chaos cell: depth 4, the island hosting stage 2 is down for the
/// whole schedule, five pipeline runs. Every run must execute stages 0
/// and 1 exactly once, never reach stage 2 or 3, and unwind stages 1
/// and 0 exactly once each.
fn chaos_cell(report: &mut Report) {
    const RUNS: u64 = 5;
    const DEPTH: usize = 4;
    let world = build_world();
    world.islands[0]
        .register_composite(pipe_spec(DEPTH))
        .expect("composite registers");
    // The entry hop must outlive the composite's whole budget plus the
    // unwind, so only the engine's own deadline shapes the outcome.
    world.client.set_resilience(ResiliencePolicy {
        deadline: SimDuration::from_secs(30),
        ..ResiliencePolicy::default()
    });
    warm_routes(&world, DEPTH, true);
    let fired0 = world.fired.lock().clone();
    let unfired0 = world.unfired.lock().clone();
    let reg0 = world.islands[0].metrics_snapshot().registry;

    let t0 = world.sim.now();
    // stage-2 lives on island-2: dead for the entire schedule.
    world.net.set_fault_plan(FaultPlan::new().node_down(
        world.islands[2].node(),
        t0,
        t0 + SimDuration::from_secs(600),
    ));
    let mut double_exec = 0u64;
    let m = measure(&world, || {
        for _ in 0..RUNS {
            let before = world.fired.lock().clone();
            world
                .client
                .invoke(&world.sim, "pipe-4", "run", &[])
                .expect_err("pipeline cannot cross the dead island");
            let after = world.fired.lock().clone();
            for i in 0..MAX_STAGES {
                if after[i] - before[i] > 1 {
                    double_exec += 1;
                }
            }
            world.sim.advance(SimDuration::from_millis(100));
        }
    });
    world.net.clear_fault_plan();

    let fired: Vec<u64> = world
        .fired
        .lock()
        .iter()
        .zip(&fired0)
        .map(|(a, b)| a - b)
        .collect();
    let unfired: Vec<u64> = world
        .unfired
        .lock()
        .iter()
        .zip(&unfired0)
        .map(|(a, b)| a - b)
        .collect();
    assert_eq!(double_exec, 0, "a non-idempotent stage executed twice");
    assert_eq!(
        &fired[..4],
        &[RUNS, RUNS, 0, 0],
        "stages 0,1 ran, 2,3 never"
    );
    assert_eq!(&unfired[..4], &[RUNS, RUNS, 0, 0], "stages 1,0 unwound");

    let reg = world.islands[0].metrics_snapshot().registry;
    let comps_run = reg.compose_compensations - reg0.compose_compensations;
    let comps_expected = 2 * RUNS; // two compensated stages per failed run
    assert_eq!(comps_run, comps_expected, "every expected compensator ran");
    assert_eq!(
        reg.compose_compensation_failures, reg0.compose_compensation_failures,
        "no compensator failed"
    );
    assert_eq!(reg.compose_failures - reg0.compose_failures, RUNS);
    row(
        report,
        "engine, stage-2 island down",
        DEPTH,
        &m,
        double_exec,
        comps_run,
        comps_expected,
    );
}

/// Fingerprint of a 2-home fleet driving composites through a loss
/// spike at a given worker-thread count. Any difference between thread
/// counts is a determinism bug.
fn fleet_fingerprint(threads: usize) -> (Vec<String>, Vec<String>, Vec<String>) {
    let fleet = HomeFleet::build(SmartHome::builder().seed(SEED).threads(threads), 2)
        .expect("fleet builds");
    for home in fleet.homes() {
        home.gateway(Middleware::Havi)
            .expect("havi island")
            .register_composite(
                CompositeSpec::new("scene")
                    .step(StepSpec::new("hall-motion", "state"))
                    .step(
                        StepSpec::new("laserdisc", "play")
                            .arg("chapter", Binding::Literal(Value::Int(7)))
                            .compensate("stop", vec![]),
                    )
                    .step(
                        StepSpec::new("tv-display", "show")
                            .arg("text", Binding::Literal(Value::Str("scene".into()))),
                    ),
            )
            .expect("composite registers");
        // Warm the entry route before the chaos window opens.
        home.invoke_from(Middleware::Jini, "scene", "run", &[])
            .expect("calm run succeeds");
    }
    let t0 = fleet.home(0).sim.now();
    let plan = FaultPlan::new().loss_spike(
        t0 + SimDuration::from_millis(50),
        t0 + SimDuration::from_millis(700),
        0.8,
    );
    fleet.set_fault_plan_jittered(&plan, SEED, SimDuration::from_millis(150));

    let mut outcomes = Vec::new();
    for home in fleet.homes() {
        for i in 0..4u64 {
            let target = t0 + SimDuration::from_millis(i * 250);
            if home.sim.now() < target {
                home.sim.advance(target.since(home.sim.now()));
            }
            let r = home.invoke_from(Middleware::Jini, "scene", "run", &[]);
            outcomes.push(format!("{:?}", r.map_err(|e| e.to_string())));
        }
    }
    fleet.run_for(SimDuration::from_secs(3));
    (
        outcomes,
        fleet
            .homes()
            .iter()
            .map(|h| h.sim.now().to_string())
            .collect(),
        fleet
            .metrics_snapshots()
            .iter()
            .map(|s| s.to_json())
            .collect(),
    )
}

fn compose_report() {
    let mut report = Report::new(
        "E19",
        "composite pipelines: engine vs client-driven round trips, saga chaos, thread identity",
        &[
            "scenario",
            "depth",
            "client RTs",
            "backbone frames",
            "backbone bytes",
            "virtual us",
            "double exec",
            "comps run",
            "comps expected",
        ],
    );

    for depth in DEPTHS {
        let (engine, _) = engine_cell(depth);
        let (client, _) = client_cell(depth);
        assert_eq!(
            client.client_rts, depth as u64,
            "client-driven depth {depth} costs one round trip per step"
        );
        assert!(
            engine.client_rts <= 2,
            "engine depth {depth} cost the client {} round trips (> 2)",
            engine.client_rts
        );
        row(&mut report, "engine", depth, &engine, 0, 0, 0);
        row(&mut report, "client-driven", depth, &client, 0, 0, 0);
    }

    chaos_cell(&mut report);

    let sequential = fleet_fingerprint(1);
    let parallel = fleet_fingerprint(4);
    assert_eq!(
        sequential, parallel,
        "SIM_THREADS=1 and SIM_THREADS=4 must agree bit-for-bit"
    );
    report.row(vec![
        "threads 1 == threads 4".into(),
        cell(3),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);

    report.emit_as("BENCH_compose.json");
}

fn bench(c: &mut Criterion) {
    compose_report();

    // Real-CPU cost of one depth-8 engine run (route caches warm).
    let mut group = c.benchmark_group("e19");
    group.sample_size(20);
    group.bench_function("engine_pipeline_depth8", |b| {
        let world = build_world();
        world.islands[0]
            .register_composite(pipe_spec(8))
            .expect("composite registers");
        warm_routes(&world, 8, true);
        b.iter(|| {
            world
                .client
                .invoke(&world.sim, "pipe-8", "run", &[])
                .expect("engine pipeline succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
