//! E15: the federated VSR at scale (DESIGN.md §11).
//!
//! The paper's repository is one process; ours can be a sharded,
//! replicated federation. This bench measures what that buys and what
//! it costs:
//!
//!  * **repository throughput vs cluster shape** — publishes/sec and
//!    resolves/sec at (1 replica, 1 shard), (2, 4) and (4, 8).
//!    Replication taxes writes (eager push per backup); reads must
//!    stay a single round trip regardless of shape;
//!  * **availability under primary-crash chaos** — a gateway polling
//!    an invoke (route cache cleared per poll, degraded stale-serving
//!    off) while the service's shard primary crashes for two 10-second
//!    windows out of 60. Replication on must hold ≥ 99%; a single
//!    replica under the same schedule must not.
//!
//! The threshold assertions live inside the report functions so
//! `cargo bench --bench e15_vsr_scale -- --test` (ci.sh's smoke gate)
//! exercises them.
//!
//! Emits `BENCH_vsr_scale.json`.

use bench::{cell, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{
    catalog, FederationConfig, Middleware, ResiliencePolicy, Soap11, VirtualService, Vsg,
    VsgProtocol, Vsr, VsrClient,
};
use simnet::{FaultPlan, Network, Sim, SimDuration};
use soap::Value;
use std::sync::Arc;

const SERVICES: usize = 48;
const RESOLVES: usize = 192;

fn service(name: &str, gateway: &str) -> VirtualService {
    VirtualService::new(name, catalog::lamp(), Middleware::X10, gateway)
}

fn cluster(seed: u64, shards: u32, replicas: usize) -> (Sim, Network, Vsr, VsrClient) {
    let sim = Sim::new(seed);
    let net = Network::ethernet(&sim);
    let vsr = Vsr::start_federated(
        &net,
        &FederationConfig {
            shards,
            replicas,
            replication: 2,
            ..FederationConfig::default()
        },
    );
    let node = net.attach("pcm");
    let client = VsrClient::new(&net, node, vsr.node());
    (sim, net, vsr, client)
}

struct ShapeRun {
    publishes_per_sec: f64,
    resolves_per_sec: f64,
    lag_after_sync: u64,
}

/// Publishes `SERVICES` services then resolves round-robin, measuring
/// both against virtual time.
fn run_shape(shards: u32, replicas: usize) -> ShapeRun {
    let (sim, _net, vsr, client) = cluster(13, shards, replicas);
    let names: Vec<String> = (0..SERVICES).map(|i| format!("svc-{i:02}")).collect();

    let t0 = sim.now();
    for name in &names {
        client.publish(&service(name, "x10-gw")).unwrap();
    }
    let publish_dt = sim.now().since(t0);

    let t1 = sim.now();
    for i in 0..RESOLVES {
        client.resolve(&names[i % names.len()]).unwrap();
    }
    let resolve_dt = sim.now().since(t1);

    ShapeRun {
        publishes_per_sec: SERVICES as f64 / publish_dt.as_secs_f64(),
        resolves_per_sec: RESOLVES as f64 / resolve_dt.as_secs_f64(),
        lag_after_sync: {
            vsr.sync_now();
            vsr.replication_lag()
        },
    }
}

/// A gateway pair on a federated cluster, polling one invoke per 500ms
/// for 60s while the service's shard primary is crashed for two
/// 10-second windows. Degraded stale-route serving is disabled and the
/// route cache cleared per poll, so every poll needs a live resolve —
/// the measurement isolates what replication buys. Returns the success
/// ratio.
fn availability_under_primary_crash(replicas: usize) -> f64 {
    let (sim, net, vsr, _client) = cluster(42, 4, replicas);
    let protocol: Arc<dyn VsgProtocol> = Arc::new(Soap11::new());
    let server = Vsg::start(&net, "gw-server", protocol.clone(), vsr.node()).unwrap();
    let caller = Vsg::start(&net, "gw-caller", protocol, vsr.node()).unwrap();
    server
        .export(
            service("chaos-lamp", "gw-server"),
            |_: &Sim, op: &str, _: &[(String, Value)]| match op {
                "status" => Ok(Value::Bool(true)),
                _ => Ok(Value::Null),
            },
        )
        .unwrap();
    caller.set_resilience(ResiliencePolicy {
        degraded_reads: false,
        ..ResiliencePolicy::default()
    });

    let t0 = sim.now();
    let primary = vsr.primary_for("chaos-lamp");
    let at = |s: u64| t0 + SimDuration::from_secs(s);
    net.set_fault_plan(
        FaultPlan::new()
            .node_down(primary, at(10), at(20))
            .node_down(primary, at(30), at(40)),
    );
    let step = SimDuration::from_millis(500);
    let total_steps = 120u32; // 60 s
    let mut ok = 0u32;
    for _ in 0..total_steps {
        sim.advance(step);
        caller.clear_route_cache();
        if caller.invoke(&sim, "chaos-lamp", "status", &[]).is_ok() {
            ok += 1;
        }
    }
    net.clear_fault_plan();
    f64::from(ok) / f64::from(total_steps)
}

fn scale_report() {
    let mut report = Report::new(
        "E15",
        "federated VSR: throughput vs cluster shape, availability under primary crashes",
        &["workload", "cluster", "value", "unit"],
    );

    let mut base_resolves = 0.0;
    let mut wide_resolves = 0.0;
    for (replicas, shards) in [(1usize, 1u32), (2, 4), (4, 8)] {
        let run = run_shape(shards, replicas);
        let label = format!("{replicas}r/{shards}s");
        report.row(vec![
            "publish".into(),
            label.clone(),
            format!("{:.0}", run.publishes_per_sec),
            "publishes/sec".into(),
        ]);
        report.row(vec![
            "resolve".into(),
            label.clone(),
            format!("{:.0}", run.resolves_per_sec),
            "resolves/sec".into(),
        ]);
        report.row(vec![
            "replication lag after sync".into(),
            label,
            cell(run.lag_after_sync),
            "entries".into(),
        ]);
        assert_eq!(
            run.lag_after_sync, 0,
            "anti-entropy must converge a quiet cluster ({replicas}r/{shards}s)"
        );
        if replicas == 1 {
            base_resolves = run.resolves_per_sec;
        }
        if replicas == 4 {
            wide_resolves = run.resolves_per_sec;
        }
    }
    assert!(
        wide_resolves >= 0.5 * base_resolves,
        "sharding must not crater reads: {wide_resolves:.0}/sec vs {base_resolves:.0}/sec single-node"
    );

    let replicated = availability_under_primary_crash(3);
    let single = availability_under_primary_crash(1);
    report.row(vec![
        "invoke availability, primary crashed 20s/60s".into(),
        "3r/4s".into(),
        format!("{:.1}", replicated * 100.0),
        "%".into(),
    ]);
    report.row(vec![
        "invoke availability, primary crashed 20s/60s".into(),
        "1r/4s".into(),
        format!("{:.1}", single * 100.0),
        "%".into(),
    ]);
    assert!(
        replicated >= 0.99,
        "replication must hold >= 99% invoke availability through primary crashes, got {:.1}%",
        replicated * 100.0
    );
    assert!(
        single < 0.99,
        "a single replica must not mask its own crash windows, got {:.1}%",
        single * 100.0
    );
    assert!(
        replicated > single,
        "replication must strictly improve availability"
    );

    report.emit_as("BENCH_vsr_scale.json");
}

fn bench(c: &mut Criterion) {
    scale_report();

    let mut group = c.benchmark_group("e15_vsr_scale");
    group.sample_size(10);
    group.bench_function("resolve_3r8s", |b| {
        let (_sim, _net, _vsr, client) = cluster(13, 8, 3);
        client.publish(&service("bench-lamp", "x10-gw")).unwrap();
        b.iter(|| client.resolve("bench-lamp").unwrap())
    });
    group.bench_function("publish_3r8s", |b| {
        let (_sim, _net, _vsr, client) = cluster(13, 8, 3);
        let svc = service("bench-lamp", "x10-gw");
        b.iter(|| client.publish(&svc).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
