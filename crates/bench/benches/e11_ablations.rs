//! E11: ablations of the framework's own design decisions (DESIGN.md §6).
//!
//! Not a paper figure — these isolate the costs of choices this
//! implementation makes so readers can separate "the paper's
//! architecture" from "this codebase's engineering":
//!
//!  * **route cache** — without it every remote call pays two extra SOAP
//!    round trips to the VSR (resolve + gateway_node);
//!  * **hot-path overhaul** (`BENCH_hotpath.json`) — the record-level
//!    resolution cache and the registry's name/category indexes, each
//!    against the pre-overhaul behaviour;
//!  * **the Java tax** — the prototype's 2002 JVM XML costs vs a free
//!    CPU model (isolates wire from CPU);
//!  * **X10 blind repeats** — the PCM's only reliability tool on an
//!    unacknowledged medium: delivery probability vs repeats vs noise.

use bench::{cell, fmt_us, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{
    catalog, Middleware, SmartHome, Soap11, VirtualService, Vsg, VsgProtocol, VsgRequest, Vsr,
};
use simnet::{LinkModel, Network, Sim};
use soap::{CpuModel, TcpModel, Value};
use std::sync::Arc;

fn route_cache_ablation() {
    let mut report = Report::new(
        "E11a",
        "route cache: one warm remote call vs re-resolving every call",
        &[
            "mode",
            "latency/call",
            "VSR inquiries/call",
            "backbone bytes/call",
        ],
    );
    for cached in [true, false] {
        let home = SmartHome::builder().build().unwrap();
        let gw = home.jini.as_ref().unwrap().vsg.clone();
        // Warm everything once.
        gw.invoke(&home.sim, "hall-lamp", "status", &[]).unwrap();
        let calls = 10u64;
        let t0 = home.sim.now();
        let inq0 = home.vsr.registry_stats().inquiries;
        let b0 = home.backbone.with_stats(|s| s.total().bytes);
        for _ in 0..calls {
            if !cached {
                gw.clear_route_cache();
            }
            gw.invoke(&home.sim, "hall-lamp", "status", &[]).unwrap();
        }
        let dt = (home.sim.now() - t0).as_micros() / calls;
        let inq = (home.vsr.registry_stats().inquiries - inq0) / calls;
        let bytes = (home.backbone.with_stats(|s| s.total().bytes) - b0) / calls;
        report.row(vec![
            cell(if cached {
                "cached route"
            } else {
                "resolve every call"
            }),
            fmt_us(dt),
            cell(inq),
            cell(bytes),
        ]);
    }
    report.emit();
}

/// The PR's before/after artefact: resolution-cache on/off over repeat
/// remote invocations, and indexed-vs-scan registry inquiry at 1000
/// services. "off"/"scan" rows reproduce the pre-overhaul hot path.
fn hotpath_ablation() {
    let mut report = Report::new(
        "BENCH_hotpath",
        "hot-path overhaul: resolution cache and registry indexes, before vs after",
        &[
            "ablation",
            "mode",
            "sim time/op",
            "VSR inquiries/op",
            "records scanned/op",
        ],
    );

    // (a) Record-level resolution cache: warm repeat invocations vs
    // clearing the cache before every call (the "before" behaviour of
    // a gateway that re-resolves each time).
    for cached in [false, true] {
        let home = SmartHome::builder().build().unwrap();
        let gw = home.jini.as_ref().unwrap().vsg.clone();
        gw.invoke(&home.sim, "hall-lamp", "status", &[]).unwrap();
        let calls = 20u64;
        let t0 = home.sim.now();
        let inq0 = home.vsr.registry_stats().inquiries;
        let scan0 = home.vsr.registry_stats().records_scanned;
        for _ in 0..calls {
            if !cached {
                gw.clear_route_cache();
            }
            gw.invoke(&home.sim, "hall-lamp", "status", &[]).unwrap();
        }
        let stats = home.vsr.registry_stats();
        report.row(vec![
            cell("resolution cache"),
            cell(if cached {
                "after (warm cache)"
            } else {
                "before (resolve every call)"
            }),
            fmt_us((home.sim.now() - t0).as_micros() / calls),
            cell((stats.inquiries - inq0) / calls),
            cell((stats.records_scanned - scan0) / calls),
        ]);
    }

    // (b) Index-backed registry inquiry at 1000 services: exact-name
    // resolves with the name/category indexes vs the full scan the
    // registry used to do. Indexes are maintained either way, so the
    // toggle compares lookup paths over identical state.
    let sim = Sim::new(1);
    let net = Network::ethernet(&sim);
    let vsr = Vsr::start(&net);
    let gw = Vsg::start(&net, "x10-gw", Arc::new(Soap11::new()), vsr.node()).unwrap();
    for i in 0..1000 {
        gw.export(
            VirtualService::new(
                format!("svc-{i:04}"),
                catalog::lamp(),
                Middleware::X10,
                "x10-gw",
            ),
            |_: &Sim, _: &str, _: &[(String, Value)]| Ok(Value::Null),
        )
        .unwrap();
    }
    for indexed in [false, true] {
        vsr.set_indexing(indexed);
        let resolves = 20u64;
        let t0 = sim.now();
        let inq0 = vsr.registry_stats().inquiries;
        let scan0 = vsr.registry_stats().records_scanned;
        for i in 0..resolves {
            // Distinct names so the gateway's cache plays no part.
            gw.resolve(&format!("svc-{:04}", i * 37)).unwrap();
        }
        let stats = vsr.registry_stats();
        report.row(vec![
            cell("registry @1000 svcs"),
            cell(if indexed {
                "after (indexed)"
            } else {
                "before (full scan)"
            }),
            fmt_us((sim.now() - t0).as_micros() / resolves),
            cell((stats.inquiries - inq0) / resolves),
            cell((stats.records_scanned - scan0) / resolves),
        ]);
    }

    report.emit_as("BENCH_hotpath.json");
}

fn java_tax_ablation() {
    let mut report = Report::new(
        "E11b",
        "the 2002 Java tax: SOAP call with JVM-era XML costs vs free CPU",
        &["cpu model", "latency/call", "of which wire (free-CPU)"],
    );
    let mut wire_only = 0;
    for (name, cpu) in [
        ("free", CpuModel::free()),
        ("jvm-2002", CpuModel::default()),
    ] {
        let protocol = Soap11::with_models(cpu, TcpModel::default());
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = VsgProtocol::bind(&protocol, &net, "gw", Arc::new(|_, _| Ok(Value::Null)));
        let client = net.attach("c");
        let req = VsgRequest::new("svc", "ping").arg("x", 1);
        let t0 = sim.now();
        VsgProtocol::call(&protocol, &net, client, server, &req).unwrap();
        let dt = (sim.now() - t0).as_micros();
        if name == "free" {
            wire_only = dt;
        }
        report.row(vec![
            cell(name),
            fmt_us(dt),
            format!("{:.0}%", 100.0 * wire_only as f64 / dt as f64),
        ]);
    }
    report.emit();
}

fn x10_repeat_ablation() {
    let mut report = Report::new(
        "E11c",
        "X10 blind repeats vs powerline noise: delivery rate over 200 commands",
        &[
            "loss prob",
            "1 repeat",
            "2 repeats",
            "3 repeats",
            "4 repeats",
        ],
    );
    for loss in [0.02f64, 0.05, 0.10, 0.20] {
        let mut cells = vec![format!("{:.0}%", loss * 100.0)];
        for repeats in 1u32..=4 {
            let sim = Sim::new(42 + repeats as u64);
            let link = LinkModel {
                loss_prob: loss,
                ..simnet::netkind::powerline()
            };
            let net = Network::new(&sim, "powerline", link);
            let tx = x10::Transmitter::attach(&net, "pcm");
            let _rx = net.attach("lamp");
            let h = metaware::house('A');
            let u = metaware::unit(1);
            let mut delivered = 0;
            let trials = 200;
            for _ in 0..trials {
                if x10::send_with_repeats(&tx, h, u, x10::Function::On, repeats) {
                    delivered += 1;
                }
            }
            cells.push(format!("{:.1}%", 100.0 * delivered as f64 / trials as f64));
        }
        report.row(cells);
    }
    report.emit();
}

/// The per-gateway observability snapshot (`Vsg::metrics_snapshot`):
/// counters + latency histogram + cache stats after a mixed workload.
/// The raw merged-JSON snapshots land in
/// `target/bench-results/e11_metrics_snapshot.json`.
fn metrics_snapshot_report() {
    let mut report = Report::new(
        "E11d",
        "per-gateway metrics registry after a mixed cross-island workload",
        &[
            "gateway",
            "invocations",
            "errors",
            "mean latency",
            "cache hit ratio",
        ],
    );
    let home = SmartHome::builder().build().unwrap();
    for _ in 0..5 {
        home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .unwrap();
        home.invoke_from(Middleware::Havi, "fridge", "temperature", &[])
            .unwrap();
        home.invoke_from(Middleware::X10, "living-room-vcr", "stop", &[])
            .unwrap();
    }
    // One deliberate failure so the error-kind counters show up.
    let _ = home.invoke_from(Middleware::Jini, "no-such-service", "ping", &[]);

    let snapshots = home.metrics_snapshots();
    for snap in &snapshots {
        report.row(vec![
            cell(&snap.gateway),
            cell(snap.registry.invocations),
            cell(snap.registry.errors.iter().map(|(_, n)| n).sum::<u64>()),
            fmt_us(snap.registry.latency.mean_us() as u64),
            format!("{:.0}%", 100.0 * snap.cache.hit_ratio()),
        ]);
    }
    report.emit();

    let json = format!(
        "[\n{}\n]",
        snapshots
            .iter()
            .map(|s| s.to_json())
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let dir = std::path::PathBuf::from("target/bench-results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("e11_metrics_snapshot.json");
    let _ = std::fs::write(&path, json);
    println!("[written {}]", path.display());
}

fn bench(c: &mut Criterion) {
    route_cache_ablation();
    hotpath_ablation();
    java_tax_ablation();
    x10_repeat_ablation();
    metrics_snapshot_report();

    // Real-CPU: the cached vs uncached remote call.
    let home = SmartHome::builder().build().unwrap();
    let gw = home.jini.as_ref().unwrap().vsg.clone();
    gw.invoke(&home.sim, "hall-lamp", "status", &[]).unwrap();
    c.bench_function("e11_cached_remote_call", |b| {
        b.iter(|| gw.invoke(&home.sim, "hall-lamp", "status", &[]).unwrap())
    });
    c.bench_function("e11_uncached_remote_call", |b| {
        b.iter(|| {
            gw.clear_route_cache();
            gw.invoke(&home.sim, "hall-lamp", "status", &[]).unwrap()
        })
    });

    // Real-CPU: argument type checking in isolation.
    let sig = metaware::OpSig::new("record")
        .param("channel", metaware::TypeTag::Int)
        .param("title", metaware::TypeTag::Str);
    let args = vec![
        ("channel".to_owned(), Value::Int(42)),
        ("title".to_owned(), Value::Str("News".into())),
    ];
    c.bench_function("e11_type_check", |b| {
        b.iter(|| sig.check_args(&args).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
