//! E6 (§4.2 / §5): the asynchronous-notification problem.
//!
//! "HTTP is inherently a client/server protocol, which does not map well
//! to asynchronous notification scenarios." We deliver the same X10
//! motion event to the HAVi island three ways and measure delivery
//! latency and carrier cost:
//!
//!  * HTTP polling at several periods (what the SOAP prototype can do),
//!  * SIP-like push (what §5 proposes),
//!  * the native path inside one island (lower bound).
//!
//! Expected shape: poll latency ≈ period/2 with idle traffic growing as
//! 1/period; push latency ≈ the PCM's local sampling delay with exactly
//! one message per event.

use bench::{cell, fmt_us, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{PollingBridge, SipPublisher, SipSubscriber, SmartHome};
use parking_lot::Mutex;
use simnet::SimDuration;
use soap::Value;
use std::sync::Arc;

const EVENTS: usize = 8;
const GAP: SimDuration = SimDuration::from_secs(30);

/// Runs one strategy over `EVENTS` motion triggers; returns
/// (mean latency us, carrier messages, idle messages/hour).
fn run_polling(period: SimDuration) -> (u64, u64, u64) {
    let home = SmartHome::builder().build().unwrap();
    let havi_gw = home.havi.as_ref().unwrap().vsg.clone();
    let deliveries: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let d2 = deliveries.clone();
    let bridge = PollingBridge::start(&havi_gw, "hall-motion", period, move |sim, e| {
        if e.field("active") == Some(&Value::Bool(true)) {
            d2.lock().push(sim.now().as_micros());
        }
    });

    let mut latencies = Vec::new();
    for _ in 0..EVENTS {
        home.sim.run_for(GAP);
        let fired = home.sim.now().as_micros();
        home.x10.as_ref().unwrap().motion.trigger();
        home.sim.run_for(period + SimDuration::from_secs(1));
        if let Some(at) = deliveries.lock().last() {
            latencies.push(at.saturating_sub(fired));
        }
        deliveries.lock().clear();
    }
    let stats = bridge.stats();
    bridge.stop();
    let mean = latencies.iter().sum::<u64>() / latencies.len().max(1) as u64;
    let hours = home.sim.now().as_secs_f64() / 3_600.0;
    let idle_per_hour = ((stats.carrier_messages - stats.events_delivered) as f64 / hours) as u64;
    (mean, stats.carrier_messages, idle_per_hour)
}

fn run_push(sampling: SimDuration) -> (u64, u64) {
    let home = SmartHome::builder().build().unwrap();
    let x10 = home.x10.as_ref().unwrap();
    let havi_gw = home.havi.as_ref().unwrap().vsg.clone();
    let publisher = SipPublisher::new(&home.backbone, x10.vsg.node());
    publisher.subscribe(havi_gw.node(), "%");
    let p2 = publisher.clone();
    x10.pcm.set_sensor_hook(move |_, svc, e| p2.publish(svc, e));
    let _pump = x10.pcm.start_polling(sampling);

    let deliveries: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let d2 = deliveries.clone();
    let _sub = SipSubscriber::install(&home.backbone, havi_gw.node(), move |sim, _, e| {
        if e.field("active") == Some(&Value::Bool(true)) {
            d2.lock().push(sim.now().as_micros());
        }
    });

    let mut latencies = Vec::new();
    for _ in 0..EVENTS {
        home.sim.run_for(GAP);
        let fired = home.sim.now().as_micros();
        x10.motion.trigger();
        home.sim.run_for(SimDuration::from_secs(2));
        if let Some(at) = deliveries.lock().last() {
            latencies.push(at.saturating_sub(fired));
        }
        deliveries.lock().clear();
    }
    let mean = latencies.iter().sum::<u64>() / latencies.len().max(1) as u64;
    (mean, publisher.stats().carrier_messages)
}

/// Native lower bound: an X10 receiver on the same powerline.
fn run_native() -> u64 {
    let home = SmartHome::builder().build().unwrap();
    let x10 = home.x10.as_ref().unwrap();
    let watcher = x10.powerline.attach("native-watcher");
    let seen: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
    let s2 = seen.clone();
    x10::install_receiver(
        &x10.powerline,
        watcher,
        metaware::house('C'),
        move |sim, f, _, _| {
            if f == x10::Function::On {
                s2.lock().get_or_insert(sim.now().as_micros());
            }
        },
    );
    let fired = home.sim.now().as_micros();
    x10.motion.trigger();
    let delivered_at = *seen.lock();
    delivered_at
        .expect("native receiver heard the sensor")
        .saturating_sub(fired)
}

fn bench(c: &mut Criterion) {
    let mut report = Report::new(
        "E6",
        "motion-sensor -> HAVi camera event delivery (8 events, 30s apart)",
        &["strategy", "mean latency", "carrier msgs", "idle msgs/hour"],
    );
    for period_s in [1u64, 2, 5, 10, 30] {
        let (mean, carriers, idle_rate) = run_polling(SimDuration::from_secs(period_s));
        report.row(vec![
            format!("HTTP poll @{period_s}s"),
            fmt_us(mean),
            cell(carriers),
            cell(idle_rate),
        ]);
    }
    let (mean, carriers) = run_push(SimDuration::from_millis(100));
    report.row(vec![
        "SIP push (100ms sampling)".into(),
        fmt_us(mean),
        cell(carriers),
        cell(0),
    ]);
    let native = run_native();
    report.row(vec![
        "native X10 receiver".into(),
        fmt_us(native),
        cell(0),
        cell(0),
    ]);
    report.emit();

    // Real-CPU cost: one poll cycle vs one push.
    let mut group = c.benchmark_group("e6");
    group.sample_size(20);
    group.bench_function("poll_cycle_soap", |b| {
        let home = SmartHome::builder().build().unwrap();
        let gw = home.havi.as_ref().unwrap().vsg.clone();
        gw.invoke(&home.sim, "hall-motion", "drain_events", &[])
            .unwrap();
        b.iter(|| {
            gw.invoke(&home.sim, "hall-motion", "drain_events", &[])
                .unwrap()
        })
    });
    group.bench_function("push_notify_sip", |b| {
        let home = SmartHome::builder().build().unwrap();
        let x10 = home.x10.as_ref().unwrap();
        let havi_gw = home.havi.as_ref().unwrap().vsg.clone();
        let publisher = SipPublisher::new(&home.backbone, x10.vsg.node());
        publisher.subscribe(havi_gw.node(), "%");
        let _sub = SipSubscriber::install(&home.backbone, havi_gw.node(), |_, _, _| {});
        b.iter(|| publisher.publish("hall-motion", &Value::Bool(true)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
