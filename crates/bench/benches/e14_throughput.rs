//! E14: throughput of the multiplexed VSG wire (DESIGN.md §9).
//!
//! The paper's gateways pay one carrier frame per event per subscriber
//! and one TCP setup per invocation. This bench measures what the
//! batched, pipelined wire buys:
//!
//!  * **event fan-out** at 1/8/64 subscribers — events/sec and wire
//!    bytes per delivered event, coalesced vs one-NOTIFY-per-event;
//!  * **invocation trains** — calls/sec over the multiplexed wire
//!    (persistent connection + batch frames) vs connect-per-call;
//!  * **idle latency** — a lone call on an otherwise quiet wire must
//!    not queue behind a batch deadline: p50 within 10% of unbatched.
//!
//! The threshold assertions live inside the report functions so
//! `cargo bench --bench e14_throughput -- --test` (ci.sh's smoke gate)
//! exercises them: batched events/sec must be ≥ 3× unbatched at
//! fan-out 64, wire bytes/event ≤ 0.5×, and idle p50 within 10%.
//!
//! Emits `BENCH_throughput.json`.

use bench::{cell, fmt_us, percentile, Report};
use criterion::{criterion_group, criterion_main, Criterion};
use metaware::{
    catalog, BatchCall, BatchItem, BatchPolicy, Middleware, SipPublisher, SipSubscriber, Soap11,
    VirtualService, Vsg, VsgProtocol, Vsr,
};
use simnet::{Network, Sim, SimDuration};
use soap::Value;
use std::sync::Arc;

const EVENTS: u64 = 256;
const CALLS: u64 = 128;

struct EventRun {
    events_per_sec: f64,
    bytes_per_event: f64,
    frames: u64,
}

/// Publishes `EVENTS` events to `fanout` SIP subscribers and measures
/// delivered-notification throughput against virtual time.
fn run_events(fanout: usize, batched: bool) -> EventRun {
    let sim = Sim::new(7);
    let net = Network::ethernet(&sim);
    let source = net.attach("publisher");
    let mut publisher = SipPublisher::new(&net, source);
    if batched {
        // A large idle threshold keeps the publisher in its loaded
        // (coalescing) regime: the frame sends themselves advance
        // virtual time, which would otherwise look like idle gaps.
        publisher = publisher.with_batching(BatchPolicy {
            max_batch: 32,
            idle_threshold: SimDuration::from_secs(3600),
            ..BatchPolicy::default()
        });
    }
    let mut subs = Vec::new();
    for i in 0..fanout {
        let node = net.attach(format!("sink-{i}"));
        subs.push(SipSubscriber::install(&net, node, |_, _, _| {}));
        publisher.subscribe(node, "%");
    }

    let t0 = sim.now();
    let b0 = net.with_stats(|s| s.total().bytes);
    let f0 = net.with_stats(|s| s.total().frames);
    for e in 0..EVENTS {
        publisher.publish("hall-motion", &Value::Int(e as i64));
    }
    publisher.flush();
    let dt = sim.now().since(t0);
    let bytes = net.with_stats(|s| s.total().bytes) - b0;
    let frames = net.with_stats(|s| s.total().frames) - f0;

    let delivered = publisher.stats().events_delivered;
    assert_eq!(delivered, EVENTS * fanout as u64, "lossless fan-out");
    assert_eq!(
        subs.iter().map(|s| s.received()).sum::<u64>(),
        delivered,
        "every counted delivery reached a subscriber"
    );
    EventRun {
        events_per_sec: delivered as f64 / dt.as_secs_f64(),
        bytes_per_event: bytes as f64 / delivered as f64,
        frames,
    }
}

/// A two-gateway SOAP world with one warm exported service.
fn invocation_world(multiplexed: bool) -> (Sim, Network, Vsg) {
    let sim = Sim::new(7);
    let net = Network::ethernet(&sim);
    let vsr = Vsr::start(&net);
    let protocol: Arc<dyn VsgProtocol> = if multiplexed {
        Arc::new(Soap11::multiplexed())
    } else {
        Arc::new(Soap11::new())
    };
    let server = Vsg::start(&net, "gw-server", protocol.clone(), vsr.node()).unwrap();
    let caller = Vsg::start(&net, "gw-caller", protocol, vsr.node()).unwrap();
    server
        .export(
            VirtualService::new("bench-lamp", catalog::lamp(), Middleware::X10, "gw-server"),
            |_: &Sim, _: &str, _: &[(String, Value)]| Ok(Value::Bool(true)),
        )
        .unwrap();
    caller.invoke(&sim, "bench-lamp", "status", &[]).unwrap();
    (sim, net, caller)
}

/// Pushes a train of `CALLS` invocations through one gateway pair:
/// batch frames over a persistent connection vs connect-per-call.
fn run_invocations(batched: bool) -> (f64, f64) {
    let (sim, net, caller) = invocation_world(batched);
    caller.set_batching(if batched {
        BatchPolicy {
            max_batch: 32,
            ..BatchPolicy::default()
        }
    } else {
        BatchPolicy::disabled()
    });
    let items: Vec<BatchItem> = (0..CALLS)
        .map(|_| BatchItem::Call(BatchCall::new("bench-lamp", "status")))
        .collect();
    let t0 = sim.now();
    let b0 = net.with_stats(|s| s.total().bytes);
    let results = caller.invoke_batch(&sim, &items);
    let dt = sim.now().since(t0);
    let bytes = net.with_stats(|s| s.total().bytes) - b0;
    assert!(
        results.iter().all(|r| r == &Ok(Value::Bool(true))),
        "every member of the train succeeds"
    );
    (CALLS as f64 / dt.as_secs_f64(), bytes as f64 / CALLS as f64)
}

/// p50 latency of a lone call on a quiet wire (50ms gaps, so every
/// call takes the batched path's idle branch).
fn idle_latency_p50(batched: bool) -> u64 {
    let (sim, _net, caller) = invocation_world(batched);
    caller.set_batching(if batched {
        BatchPolicy::default()
    } else {
        BatchPolicy::disabled()
    });
    let mut samples = Vec::new();
    for _ in 0..9 {
        sim.advance(SimDuration::from_millis(50));
        let t0 = sim.now();
        let r = caller.invoke_batch(
            &sim,
            &[BatchItem::Call(BatchCall::new("bench-lamp", "status"))],
        );
        assert_eq!(r, vec![Ok(Value::Bool(true))]);
        samples.push(sim.now().since(t0).as_micros());
    }
    percentile(&samples, 50.0)
}

fn throughput_report() {
    let mut report = Report::new(
        "E14",
        "multiplexed wire throughput: batched vs unbatched (256 events, 128-call train)",
        &[
            "workload",
            "mode",
            "throughput/sec",
            "wire bytes/unit",
            "frames",
        ],
    );

    let mut speedup_at_64 = 0.0;
    let mut byte_ratio_at_64 = 0.0;
    for fanout in [1usize, 8, 64] {
        let un = run_events(fanout, false);
        let ba = run_events(fanout, true);
        for (mode, r) in [("unbatched", &un), ("batched", &ba)] {
            report.row(vec![
                format!("events fan-out {fanout}"),
                cell(mode),
                format!("{:.0}", r.events_per_sec),
                format!("{:.1}", r.bytes_per_event),
                cell(r.frames),
            ]);
        }
        if fanout == 64 {
            speedup_at_64 = ba.events_per_sec / un.events_per_sec;
            byte_ratio_at_64 = ba.bytes_per_event / un.bytes_per_event;
        }
    }
    assert!(
        speedup_at_64 >= 3.0,
        "batched events/sec must be >= 3x unbatched at fan-out 64, got {speedup_at_64:.2}x"
    );
    assert!(
        byte_ratio_at_64 <= 0.5,
        "batched wire bytes/event must be <= 0.5x unbatched at fan-out 64, got {byte_ratio_at_64:.2}x"
    );

    let (un_cps, un_bpc) = run_invocations(false);
    let (ba_cps, ba_bpc) = run_invocations(true);
    report.row(vec![
        "invocation train".into(),
        "connect-per-call".into(),
        format!("{un_cps:.0}"),
        format!("{un_bpc:.1}"),
        cell("-"),
    ]);
    report.row(vec![
        "invocation train".into(),
        "multiplexed+batched".into(),
        format!("{ba_cps:.0}"),
        format!("{ba_bpc:.1}"),
        cell("-"),
    ]);
    assert!(
        ba_cps > un_cps,
        "the multiplexed wire must not be slower for invocation trains: {ba_cps:.0} vs {un_cps:.0}"
    );

    let un_p50 = idle_latency_p50(false);
    let ba_p50 = idle_latency_p50(true);
    report.row(vec![
        "idle single call".into(),
        "unbatched".into(),
        cell("-"),
        cell("-"),
        fmt_us(un_p50),
    ]);
    report.row(vec![
        "idle single call".into(),
        "batched (idle path)".into(),
        cell("-"),
        cell("-"),
        fmt_us(ba_p50),
    ]);
    assert!(
        ba_p50 as f64 <= un_p50 as f64 * 1.1,
        "idle p50 must stay within 10% of unbatched: {ba_p50}us vs {un_p50}us"
    );

    report.emit_as("BENCH_throughput.json");
}

fn bench(c: &mut Criterion) {
    throughput_report();

    // Real-CPU cost of the coalescing fan-out: publish+flush one full
    // frame to 8 subscribers, and one 16-member invocation batch.
    let mut group = c.benchmark_group("e14");
    group.sample_size(20);
    group.bench_function("publish_batched_fanout8", |b| {
        let sim = Sim::new(7);
        let net = Network::ethernet(&sim);
        let source = net.attach("publisher");
        let publisher = SipPublisher::new(&net, source).with_batching(BatchPolicy {
            max_batch: 16,
            ..BatchPolicy::default()
        });
        let mut subs = Vec::new();
        for i in 0..8 {
            let node = net.attach(format!("sink-{i}"));
            subs.push(SipSubscriber::install(&net, node, |_, _, _| {}));
            publisher.subscribe(node, "%");
        }
        b.iter(|| {
            for e in 0..16i64 {
                publisher.publish("hall-motion", &Value::Int(e));
            }
            publisher.flush();
        })
    });
    group.bench_function("invoke_batch16", |b| {
        let (sim, _net, caller) = invocation_world(true);
        let items: Vec<BatchItem> = (0..16)
            .map(|_| BatchItem::Call(BatchCall::new("bench-lamp", "status")))
            .collect();
        b.iter(|| caller.invoke_batch(&sim, &items))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
