//! Shared harness for the experiment benches (E1–E10).
//!
//! Each bench regenerates one figure/claim of the paper's evaluation:
//! it prints the simulated-metric table the experiment is about (these
//! are deterministic — byte counts and virtual-time latencies), records
//! it as JSON under `target/bench-results/`, and then lets Criterion
//! measure the real CPU cost of the simulated scenario.

pub mod workload;

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// One experiment report: a named table.
#[derive(Debug)]
pub struct Report {
    /// Experiment id, e.g. `"E1"`.
    pub id: String,
    /// What the experiment shows.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Report {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row of displayable cells.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width matches headers");
        self.rows.push(cells);
    }

    /// Prints the table and writes the JSON artefact as
    /// `<id, lowercased>.json`.
    pub fn emit(&self) {
        self.emit_as(&format!("{}.json", self.id.to_lowercase()));
    }

    /// Prints the table and writes the JSON artefact under an explicit
    /// file name (for artefacts whose exact name is part of a spec).
    pub fn emit_as(&self, filename: &str) {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        println!("\n=== {} — {} ===", self.id, self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for r in &self.rows {
            println!("{}", fmt_row(r));
        }

        let dir = PathBuf::from("target/bench-results");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(filename);
        let _ = fs::write(&path, self.to_json());
        println!("[written {}]", path.display());
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str(&format!(
            "  \"headers\": {},\n",
            json_str_array(&self.headers, "")
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!("    {}{}\n", json_str_array(row, ""), sep));
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String], _indent: &str) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(", "))
}

/// Formats a cell.
pub fn cell(v: impl Display) -> String {
    v.to_string()
}

/// The `p`-th percentile of a sample set (nearest-rank; `samples` need
/// not be sorted).
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Formats microseconds as adaptive ms/us.
pub fn fmt_us(us: u64) -> String {
    if us >= 10_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_emits_without_panicking() {
        let mut r = Report::new("E0", "smoke", &["a", "b"]);
        r.row(vec![cell(1), cell("x")]);
        r.row(vec![cell(22), fmt_us(1_500)]);
        r.emit();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn fmt_us_is_adaptive() {
        assert_eq!(fmt_us(900), "900us");
        assert_eq!(fmt_us(12_345), "12.3ms");
    }

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
    }
}
