//! Seeded workload generation for the saturation experiment (E12) and
//! the cloud-fleet experiment (E17).
//!
//! Generates reproducible streams of cross-island invocations against
//! the standard smart home — a day in the life of the federation — and,
//! for fleets, per-home *event plans* on virtual time: a diurnal
//! activity curve, device churn, and the "everyone home at 6pm" flash
//! crowd. Plans are a pure function of `(seed, island)`, so fleet
//! results never depend on worker threads.

use metaware::{Middleware, SmartHome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{SimDuration, SimTime};
use soap::Value;

/// One scripted invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    /// Which island's gateway issues it.
    pub from: Middleware,
    /// Target service.
    pub service: &'static str,
    /// Target operation.
    pub operation: &'static str,
    /// Arguments.
    pub args: Vec<(String, Value)>,
}

const ISLANDS: [Middleware; 4] = [
    Middleware::Jini,
    Middleware::Havi,
    Middleware::X10,
    Middleware::Mail,
];

/// A seeded generator of home-plausible calls.
#[derive(Debug)]
pub struct Workload {
    rng: StdRng,
}

impl Workload {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Workload {
        Workload {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next call: a weighted mix of reads (status checks, the bulk of
    /// home traffic) and writes (switches, transports, tuning).
    pub fn next_call(&mut self) -> Call {
        let from = ISLANDS[self.rng.gen_range(0..ISLANDS.len())];
        let dice = self.rng.gen_range(0..100);
        let (service, operation, args): (&str, &str, Vec<(String, Value)>) = match dice {
            0..=29 => ("hall-lamp", "status", vec![]),
            30..=44 => (
                "hall-lamp",
                "switch",
                vec![("on".into(), Value::Bool(self.rng.gen()))],
            ),
            45..=59 => ("laserdisc", "status", vec![]),
            60..=69 => ("dv-camera", "status", vec![]),
            70..=79 => ("fridge", "temperature", vec![]),
            80..=86 => (
                "tv-tuner",
                "set_channel",
                vec![("channel".into(), Value::Int(self.rng.gen_range(1..100)))],
            ),
            87..=93 => ("living-room-vcr", "status", vec![]),
            _ => (
                "desk-lamp",
                "dim",
                vec![("steps".into(), Value::Int(self.rng.gen_range(1..5)))],
            ),
        };
        Call {
            from,
            service,
            operation,
            args,
        }
    }

    /// Generates a trace of `n` calls.
    pub fn trace(&mut self, n: usize) -> Vec<Call> {
        (0..n).map(|_| self.next_call()).collect()
    }
}

/// Replays a trace against a home, returning per-call virtual latencies
/// in microseconds. Panics on any invocation error (the standard home
/// serves every generated call).
pub fn replay(home: &SmartHome, trace: &[Call]) -> Vec<u64> {
    trace
        .iter()
        .map(|call| {
            let t0 = home.sim.now();
            home.invoke_from(call.from, call.service, call.operation, &call.args)
                .unwrap_or_else(|e| {
                    panic!("{} -> {}.{}: {e}", call.from, call.service, call.operation)
                });
            (home.sim.now() - t0).as_micros()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// fleet workload: diurnal curve, churn, and the 6pm flash (E17)
// ---------------------------------------------------------------------------

/// Relative home activity per hour of day: quiet overnight, a morning
/// bump, a daytime plateau, and the evening peak when everyone is home.
const DIURNAL_CURVE: [f64; 24] = [
    0.2, 0.1, 0.1, 0.1, 0.1, 0.2, 0.6, 1.0, 0.8, 0.5, 0.4, 0.5, //
    0.6, 0.5, 0.4, 0.5, 0.8, 1.4, 2.0, 1.8, 1.5, 1.2, 0.8, 0.4,
];

/// The devices a fleet home's cloud bridge reports on.
const FLEET_DEVICES: [&str; 6] = [
    "hall-lamp",
    "desk-lamp",
    "fan",
    "aircon",
    "fridge",
    "tv-tuner",
];

/// Shape of the E17 fleet workload.
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    /// Baseline state notifications per home per hour (scaled by the
    /// diurnal curve).
    pub base_per_hour: u32,
    /// Device leave/join pairs per home per day (churn).
    pub churn_per_day: u32,
    /// Hour of day (0–23) of the flash crowd.
    pub flash_hour: u32,
    /// Extra notifications every home raises during the flash.
    pub flash_burst: u32,
    /// How long the flash lasts, from the top of the hour.
    pub flash_window: SimDuration,
}

impl Default for DiurnalProfile {
    fn default() -> DiurnalProfile {
        DiurnalProfile {
            base_per_hour: 12,
            churn_per_day: 4,
            flash_hour: 18,
            flash_burst: 20,
            flash_window: SimDuration::from_secs(10 * 60),
        }
    }
}

/// One thing a fleet home does to its cloud bridge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEvent {
    /// A device state notification.
    Notify {
        /// Device name.
        device: &'static str,
        /// New state payload.
        payload: String,
    },
    /// A device leaves (churn).
    Leave {
        /// Device name.
        device: &'static str,
    },
    /// A device rejoins (churn).
    Join {
        /// Device name.
        device: &'static str,
    },
}

/// A [`FleetEvent`] pinned to a virtual instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// When the home raises it.
    pub at: SimTime,
    /// What it raises.
    pub event: FleetEvent,
}

/// Generates one home's event plan for `hours` of virtual time —
/// deterministic in `(seed, island)` and sorted by time. Churn pairs a
/// `Leave` with a `Join` five virtual minutes later; every flash-hour
/// occurrence adds `flash_burst` notifications inside `flash_window`.
pub fn home_plan(seed: u64, island: u32, hours: u32, profile: &DiurnalProfile) -> Vec<TimedEvent> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (u64::from(island).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    let mut plan = Vec::new();
    let hour_us = 3_600_000_000u64;
    for h in 0..hours {
        let start = u64::from(h) * hour_us;
        let weight = DIURNAL_CURVE[(h % 24) as usize];
        let expected = f64::from(profile.base_per_hour) * weight;
        let mut n = expected.floor() as u32;
        if rng.gen_bool((expected - f64::from(n)).clamp(0.0, 1.0)) {
            n += 1;
        }
        for _ in 0..n {
            let device = FLEET_DEVICES[rng.gen_range(0..FLEET_DEVICES.len())];
            plan.push(TimedEvent {
                at: SimTime::from_micros(start + rng.gen_range(0..hour_us)),
                event: FleetEvent::Notify {
                    device,
                    payload: format!("s{}", rng.gen_range(0..1000)),
                },
            });
        }
        if h % 24 == profile.flash_hour {
            // Everyone home at 6pm: a burst at the top of the hour.
            let window = profile.flash_window.as_micros().max(1);
            for _ in 0..profile.flash_burst {
                let device = FLEET_DEVICES[rng.gen_range(0..FLEET_DEVICES.len())];
                plan.push(TimedEvent {
                    at: SimTime::from_micros(start + rng.gen_range(0..window)),
                    event: FleetEvent::Notify {
                        device,
                        payload: format!("f{}", rng.gen_range(0..1000)),
                    },
                });
            }
        }
    }
    // Churn: leave/join pairs spread over the whole span.
    let span_us = u64::from(hours) * hour_us;
    let churn_events = u64::from(profile.churn_per_day) * u64::from(hours) / 24;
    for _ in 0..churn_events {
        let device = FLEET_DEVICES[rng.gen_range(0..FLEET_DEVICES.len())];
        let at = rng.gen_range(0..span_us);
        plan.push(TimedEvent {
            at: SimTime::from_micros(at),
            event: FleetEvent::Leave { device },
        });
        plan.push(TimedEvent {
            at: SimTime::from_micros(at.saturating_add(5 * 60_000_000)),
            event: FleetEvent::Join { device },
        });
    }
    plan.sort_by_key(|e| e.at);
    plan
}

/// Schedules a plan onto a home's cloud bridge: each event fires at its
/// virtual instant when the home's event loop is pumped. Shed or
/// dropped notifications are *not* retried — losing them under pressure
/// is part of what E17 measures. Panics if the home has no cloud
/// bridge. Call before running the fleet; events already in the past
/// fire on the next pump.
pub fn install_cloud_plan(home: &SmartHome, plan: &[TimedEvent]) {
    let bridge = home
        .cloud
        .as_ref()
        .expect("home has a cloud bridge")
        .bridge
        .clone();
    let now = home.sim.now();
    for te in plan {
        let delay = te.at - now;
        let bridge = bridge.clone();
        let event = te.event.clone();
        home.sim.schedule_in(delay, move |_| match &event {
            FleetEvent::Notify { device, payload } => {
                let _ = bridge.notify_state(device, payload);
            }
            FleetEvent::Leave { device } => {
                let _ = bridge.unregister_device(device);
            }
            FleetEvent::Join { device } => {
                let _ = bridge.register_device(device);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan_and_islands_decorrelate() {
        let p = DiurnalProfile::default();
        let a = home_plan(5, 0, 24, &p);
        let b = home_plan(5, 0, 24, &p);
        assert_eq!(a, b);
        let c = home_plan(5, 1, 24, &p);
        assert_ne!(a, c, "islands draw from distinct streams");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
    }

    #[test]
    fn flash_hour_is_the_densest_hour() {
        let p = DiurnalProfile::default();
        let plan = home_plan(11, 3, 24, &p);
        let hour_of = |t: SimTime| (t.as_micros() / 3_600_000_000) as u32 % 24;
        let mut per_hour = [0u32; 24];
        for e in &plan {
            if matches!(e.event, FleetEvent::Notify { .. }) {
                per_hour[hour_of(e.at) as usize] += 1;
            }
        }
        let flash = per_hour[p.flash_hour as usize];
        assert!(
            per_hour.iter().all(|&n| n <= flash),
            "flash hour {} should dominate: {per_hour:?}",
            p.flash_hour
        );
        // Churn appears as leave/join pairs.
        let leaves = plan
            .iter()
            .filter(|e| matches!(e.event, FleetEvent::Leave { .. }))
            .count();
        let joins = plan
            .iter()
            .filter(|e| matches!(e.event, FleetEvent::Join { .. }))
            .count();
        assert_eq!(leaves, joins);
        assert_eq!(leaves, p.churn_per_day as usize);
    }

    #[test]
    fn installed_plan_reaches_the_cloud() {
        use metaware::CloudConfig;
        let home = SmartHome::builder()
            .lazy(true)
            .cloud(CloudConfig::default())
            .build()
            .unwrap();
        let profile = DiurnalProfile {
            base_per_hour: 30,
            churn_per_day: 2,
            ..DiurnalProfile::default()
        };
        let plan = home_plan(3, 0, 2, &profile);
        assert!(!plan.is_empty());
        install_cloud_plan(&home, &plan);
        home.sim.run_for(SimDuration::from_secs(3 * 3600));
        let cell = &home.cloud.as_ref().unwrap().cell;
        assert!(cell.stats().notify_applied > 0);
        assert_eq!(home.cloud.as_ref().unwrap().bridge.outbox_len(), 0);
    }

    #[test]
    fn same_seed_same_trace() {
        let a = Workload::new(9).trace(50);
        let b = Workload::new(9).trace(50);
        assert_eq!(a, b);
        let c = Workload::new(10).trace(50);
        assert_ne!(a, c);
    }

    #[test]
    fn traces_cover_multiple_islands_and_services() {
        let trace = Workload::new(1).trace(200);
        let islands: std::collections::HashSet<_> = trace.iter().map(|c| c.from.label()).collect();
        let services: std::collections::HashSet<_> = trace.iter().map(|c| c.service).collect();
        assert!(islands.len() >= 3, "{islands:?}");
        assert!(services.len() >= 5, "{services:?}");
    }

    #[test]
    fn replay_executes_cleanly() {
        let home = SmartHome::builder().build().unwrap();
        let trace = Workload::new(7).trace(30);
        let latencies = replay(&home, &trace);
        assert_eq!(latencies.len(), 30);
        assert!(latencies.iter().any(|l| *l > 0));
    }
}
