//! Seeded workload generation for the saturation experiment (E12).
//!
//! Generates reproducible streams of cross-island invocations against
//! the standard smart home — a day in the life of the federation.

use metaware::{Middleware, SmartHome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soap::Value;

/// One scripted invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    /// Which island's gateway issues it.
    pub from: Middleware,
    /// Target service.
    pub service: &'static str,
    /// Target operation.
    pub operation: &'static str,
    /// Arguments.
    pub args: Vec<(String, Value)>,
}

const ISLANDS: [Middleware; 4] = [
    Middleware::Jini,
    Middleware::Havi,
    Middleware::X10,
    Middleware::Mail,
];

/// A seeded generator of home-plausible calls.
#[derive(Debug)]
pub struct Workload {
    rng: StdRng,
}

impl Workload {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Workload {
        Workload {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next call: a weighted mix of reads (status checks, the bulk of
    /// home traffic) and writes (switches, transports, tuning).
    pub fn next_call(&mut self) -> Call {
        let from = ISLANDS[self.rng.gen_range(0..ISLANDS.len())];
        let dice = self.rng.gen_range(0..100);
        let (service, operation, args): (&str, &str, Vec<(String, Value)>) = match dice {
            0..=29 => ("hall-lamp", "status", vec![]),
            30..=44 => (
                "hall-lamp",
                "switch",
                vec![("on".into(), Value::Bool(self.rng.gen()))],
            ),
            45..=59 => ("laserdisc", "status", vec![]),
            60..=69 => ("dv-camera", "status", vec![]),
            70..=79 => ("fridge", "temperature", vec![]),
            80..=86 => (
                "tv-tuner",
                "set_channel",
                vec![("channel".into(), Value::Int(self.rng.gen_range(1..100)))],
            ),
            87..=93 => ("living-room-vcr", "status", vec![]),
            _ => (
                "desk-lamp",
                "dim",
                vec![("steps".into(), Value::Int(self.rng.gen_range(1..5)))],
            ),
        };
        Call {
            from,
            service,
            operation,
            args,
        }
    }

    /// Generates a trace of `n` calls.
    pub fn trace(&mut self, n: usize) -> Vec<Call> {
        (0..n).map(|_| self.next_call()).collect()
    }
}

/// Replays a trace against a home, returning per-call virtual latencies
/// in microseconds. Panics on any invocation error (the standard home
/// serves every generated call).
pub fn replay(home: &SmartHome, trace: &[Call]) -> Vec<u64> {
    trace
        .iter()
        .map(|call| {
            let t0 = home.sim.now();
            home.invoke_from(call.from, call.service, call.operation, &call.args)
                .unwrap_or_else(|e| {
                    panic!("{} -> {}.{}: {e}", call.from, call.service, call.operation)
                });
            (home.sim.now() - t0).as_micros()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let a = Workload::new(9).trace(50);
        let b = Workload::new(9).trace(50);
        assert_eq!(a, b);
        let c = Workload::new(10).trace(50);
        assert_ne!(a, c);
    }

    #[test]
    fn traces_cover_multiple_islands_and_services() {
        let trace = Workload::new(1).trace(200);
        let islands: std::collections::HashSet<_> = trace.iter().map(|c| c.from.label()).collect();
        let services: std::collections::HashSet<_> = trace.iter().map(|c| c.service).collect();
        assert!(islands.len() >= 3, "{islands:?}");
        assert!(services.len() >= 5, "{services:?}");
    }

    #[test]
    fn replay_executes_cleanly() {
        let home = SmartHome::builder().build().unwrap();
        let trace = Workload::new(7).trace(30);
        let latencies = replay(&home, &trace);
        assert_eq!(latencies.len(), 30);
        assert!(latencies.iter().any(|l| *l > 0));
    }
}
