//! UPnP device descriptions.
//!
//! Every UPnP device serves an XML description document listing its
//! services, their control URLs and event subscription URLs. Control
//! points fetch it after SSDP discovery.

use minixml::Element;
use std::fmt;

/// One service within a device description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDesc {
    /// Service type URN, e.g. `urn:schemas-upnp-org:service:SwitchPower:1`.
    pub service_type: String,
    /// Service id, e.g. `urn:upnp-org:serviceId:SwitchPower`.
    pub service_id: String,
    /// Where SOAP control requests go.
    pub control_url: String,
    /// Where GENA subscriptions go.
    pub event_sub_url: String,
}

/// A device description document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDescription {
    /// Device type URN, e.g. `urn:schemas-upnp-org:device:BinaryLight:1`.
    pub device_type: String,
    /// Human-readable name.
    pub friendly_name: String,
    /// Unique device name, e.g. `uuid:kitchen-light`.
    pub udn: String,
    /// The device's services.
    pub services: Vec<ServiceDesc>,
}

impl DeviceDescription {
    /// Creates a description with no services.
    pub fn new(
        device_type: impl Into<String>,
        friendly_name: impl Into<String>,
        udn: impl Into<String>,
    ) -> DeviceDescription {
        DeviceDescription {
            device_type: device_type.into(),
            friendly_name: friendly_name.into(),
            udn: udn.into(),
            services: Vec::new(),
        }
    }

    /// Adds a service (builder style). URLs follow the UPnP convention
    /// of being derived from the service id.
    pub fn service(mut self, service_type: &str, service_id: &str) -> DeviceDescription {
        let short = service_id.rsplit(':').next().unwrap_or(service_id);
        self.services.push(ServiceDesc {
            service_type: service_type.to_owned(),
            service_id: service_id.to_owned(),
            control_url: format!("/control/{short}"),
            event_sub_url: format!("/event/{short}"),
        });
        self
    }

    /// Finds a service by its type URN.
    pub fn find_service(&self, service_type: &str) -> Option<&ServiceDesc> {
        self.services
            .iter()
            .find(|s| s.service_type == service_type)
    }

    /// Serialises to the description document.
    pub fn to_xml(&self) -> Element {
        let mut service_list = Element::new("serviceList");
        for s in &self.services {
            service_list.push(
                Element::new("service")
                    .child(Element::new("serviceType").text(&s.service_type))
                    .child(Element::new("serviceId").text(&s.service_id))
                    .child(Element::new("controlURL").text(&s.control_url))
                    .child(Element::new("eventSubURL").text(&s.event_sub_url)),
            );
        }
        Element::new("root")
            .attr("xmlns", "urn:schemas-upnp-org:device-1-0")
            .child(
                Element::new("device")
                    .child(Element::new("deviceType").text(&self.device_type))
                    .child(Element::new("friendlyName").text(&self.friendly_name))
                    .child(Element::new("UDN").text(&self.udn))
                    .child(service_list),
            )
    }

    /// Parses a description document.
    pub fn from_xml(root: &Element) -> Option<DeviceDescription> {
        let device = root.find("device")?;
        let mut desc = DeviceDescription::new(
            device.find("deviceType")?.text_content(),
            device.find("friendlyName")?.text_content(),
            device.find("UDN")?.text_content(),
        );
        if let Some(list) = device.find("serviceList") {
            for s in list.find_all("service") {
                desc.services.push(ServiceDesc {
                    service_type: s.find("serviceType")?.text_content(),
                    service_id: s.find("serviceId")?.text_content(),
                    control_url: s.find("controlURL")?.text_content(),
                    event_sub_url: s.find("eventSubURL")?.text_content(),
                });
            }
        }
        Some(desc)
    }
}

impl fmt::Display for DeviceDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} services)",
            self.friendly_name,
            self.udn,
            self.services.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light() -> DeviceDescription {
        DeviceDescription::new(
            "urn:schemas-upnp-org:device:BinaryLight:1",
            "Kitchen Light",
            "uuid:kitchen-light",
        )
        .service(
            "urn:schemas-upnp-org:service:SwitchPower:1",
            "urn:upnp-org:serviceId:SwitchPower",
        )
    }

    #[test]
    fn xml_round_trip() {
        let d = light();
        let doc = d.to_xml().to_document();
        let back = DeviceDescription::from_xml(&minixml::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn urls_follow_convention() {
        let d = light();
        let s = d
            .find_service("urn:schemas-upnp-org:service:SwitchPower:1")
            .unwrap();
        assert_eq!(s.control_url, "/control/SwitchPower");
        assert_eq!(s.event_sub_url, "/event/SwitchPower");
        assert!(d.find_service("urn:nope").is_none());
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(DeviceDescription::from_xml(&Element::new("root")).is_none());
        let incomplete = Element::new("root").child(Element::new("device"));
        assert!(DeviceDescription::from_xml(&incomplete).is_none());
    }
}
