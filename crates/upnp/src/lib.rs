//! # upnp — a UPnP middleware simulation
//!
//! §5 of the paper: "UPnP … defines common protocols and procedures to
//! guarantee the interoperability among network-enabled PCs, appliances,
//! and wireless devices … We can connect the UPnP service to other
//! middleware by developing a PCM for UPnP." This crate exists to prove
//! that sentence: a fifth middleware, built after the framework, that
//! joins the federation in the `new_middleware` example with only a PCM.
//!
//! * [`ssdp`] — `M-SEARCH` discovery over multicast.
//! * [`DeviceDescription`] — the XML description document.
//! * [`UpnpDevice`] — device hosting: description, SOAP control, GENA
//!   eventing (built on the same [`soap`] stack the VSG uses — UPnP
//!   really did adopt SOAP for control).
//! * [`ControlPoint`] — the client side.
//!
//! ```
//! use simnet::{Sim, Network};
//! use upnp::{UpnpDevice, ControlPoint, DeviceDescription, SSDP_ALL};
//! use soap::Value;
//!
//! let sim = Sim::new(7);
//! let net = Network::ethernet(&sim);
//! let desc = DeviceDescription::new("urn:schemas-upnp-org:device:BinaryLight:1",
//!                                   "Porch Light", "uuid:porch")
//!     .service("urn:schemas-upnp-org:service:SwitchPower:1",
//!              "urn:upnp-org:serviceId:SwitchPower");
//! let dev = UpnpDevice::install(&net, desc);
//! dev.implement("urn:schemas-upnp-org:service:SwitchPower:1",
//!     |_, action, _| match action {
//!         "GetStatus" => Ok(Value::Bool(true)),
//!         _ => Err("unsupported".into()),
//!     });
//!
//! let cp = ControlPoint::new(&net, "cp");
//! let hits = cp.discover(SSDP_ALL);
//! let desc = cp.describe(&hits[0]).unwrap();
//! let svc = &desc.services[0];
//! let on = cp.invoke(hits[0].node, &svc.control_url, &svc.service_type,
//!                    "GetStatus", &[]).unwrap();
//! assert_eq!(on, Value::Bool(true));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod control;
pub mod description;
pub mod device;
pub mod ssdp;

pub use control::ControlPoint;
pub use description::{DeviceDescription, ServiceDesc};
pub use device::{ActionHandler, UpnpDevice};
pub use ssdp::{install_responder, search, SsdpHit, SSDP_ALL};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn descriptions_round_trip(
            name in "[a-zA-Z ]{1,20}",
            services in prop::collection::vec("[A-Za-z]{1,12}", 0..5),
        ) {
            prop_assume!(!name.trim().is_empty());
            let mut d = DeviceDescription::new(
                "urn:schemas-upnp-org:device:Test:1", name.trim(), "uuid:test");
            for s in &services {
                d = d.service(
                    &format!("urn:schemas-upnp-org:service:{s}:1"),
                    &format!("urn:upnp-org:serviceId:{s}"),
                );
            }
            let doc = d.to_xml().to_document();
            let back = DeviceDescription::from_xml(&minixml::parse(&doc).unwrap()).unwrap();
            prop_assert_eq!(back, d);
        }

        #[test]
        fn ssdp_search_finds_every_installed_device(n in 1usize..6) {
            let sim = simnet::Sim::new(1);
            let net = simnet::Network::ethernet(&sim);
            for i in 0..n {
                let node = net.attach(format!("dev{i}"));
                install_responder(&net, node, "/desc.xml",
                    "urn:schemas-upnp-org:device:Thing:1", vec![], &format!("uuid:dev{i}"));
            }
            let cp = net.attach("cp");
            prop_assert_eq!(search(&net, cp, SSDP_ALL).len(), n);
        }
    }
}
