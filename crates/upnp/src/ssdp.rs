//! SSDP: Simple Service Discovery Protocol.
//!
//! HTTP-syntax messages over UDP multicast: control points `M-SEARCH`
//! for a target, devices answer with the `LOCATION` of their
//! description document.

use simnet::{Addr, Frame, Network, NodeId, Protocol};

/// The match-anything search target.
pub const SSDP_ALL: &str = "ssdp:all";

/// A discovered device: where its description lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsdpHit {
    /// The device's HTTP node.
    pub node: NodeId,
    /// Path of the description document.
    pub location: String,
    /// The search target it matched.
    pub st: String,
    /// The device's unique name.
    pub usn: String,
}

fn msearch_payload(st: &str) -> Vec<u8> {
    format!(
        "M-SEARCH * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\nMAN: \"ssdp:discover\"\r\nST: {st}\r\nMX: 3\r\n\r\n"
    )
    .into_bytes()
}

fn response_payload(node: NodeId, location: &str, st: &str, usn: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 200 OK\r\nLOCATION: http://node-{}{}\r\nST: {}\r\nUSN: {}\r\nEXT:\r\n\r\n",
        node.0, location, st, usn
    )
    .into_bytes()
}

fn header_value<'a>(text: &'a str, name: &str) -> Option<&'a str> {
    text.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.trim().eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

/// Installs the SSDP responder side on a device's node: answers
/// `M-SEARCH` broadcasts whose target matches `device_type`, one of
/// `service_types`, the device's `usn`, or `ssdp:all`.
pub fn install_responder(
    net: &Network,
    node: NodeId,
    location: &str,
    device_type: &str,
    service_types: Vec<String>,
    usn: &str,
) {
    let net2 = net.clone();
    let location = location.to_owned();
    let device_type = device_type.to_owned();
    let usn = usn.to_owned();
    net.set_frame_handler(node, move |_sim, frame| {
        let text = String::from_utf8_lossy(&frame.payload);
        if !text.starts_with("M-SEARCH") {
            return;
        }
        let Some(st) = header_value(&text, "ST") else {
            return;
        };
        let matches = st == SSDP_ALL
            || st == device_type
            || st == usn
            || service_types.iter().any(|s| s == st);
        if matches {
            let _ = net2.send(Frame::new(
                node,
                frame.src,
                Protocol::Upnp,
                response_payload(node, &location, st, &usn),
            ));
        }
    })
    .expect("responder node exists");
}

/// Multicasts an `M-SEARCH` for `st` from `node` and collects responses.
pub fn search(net: &Network, node: NodeId, st: &str) -> Vec<SsdpHit> {
    let _ = net.send(Frame::new(
        node,
        Addr::Broadcast,
        Protocol::Upnp,
        msearch_payload(st),
    ));
    let mut hits = Vec::new();
    while let Some(frame) = net.recv(node) {
        let text = String::from_utf8_lossy(&frame.payload);
        if !text.starts_with("HTTP/1.1 200") {
            continue;
        }
        let (Some(loc), Some(st), Some(usn)) = (
            header_value(&text, "LOCATION"),
            header_value(&text, "ST"),
            header_value(&text, "USN"),
        ) else {
            continue;
        };
        // LOCATION is http://node-<id><path>.
        let Some(rest) = loc.strip_prefix("http://node-") else {
            continue;
        };
        let Some(slash) = rest.find('/') else {
            continue;
        };
        let Ok(id) = rest[..slash].parse::<u32>() else {
            continue;
        };
        hits.push(SsdpHit {
            node: NodeId(id),
            location: rest[slash..].to_owned(),
            st: st.to_owned(),
            usn: usn.to_owned(),
        });
    }
    hits.sort_by_key(|h| h.node);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Sim;

    fn world() -> (Sim, Network) {
        let sim = Sim::new(1);
        (sim.clone(), Network::ethernet(&sim))
    }

    fn install_light(net: &Network, name: &str) -> NodeId {
        let node = net.attach(name);
        install_responder(
            net,
            node,
            "/desc.xml",
            "urn:schemas-upnp-org:device:BinaryLight:1",
            vec!["urn:schemas-upnp-org:service:SwitchPower:1".into()],
            &format!("uuid:{name}"),
        );
        node
    }

    #[test]
    fn search_by_device_type() {
        let (_sim, net) = world();
        let light1 = install_light(&net, "light1");
        let light2 = install_light(&net, "light2");
        let cp = net.attach("control-point");
        let hits = search(&net, cp, "urn:schemas-upnp-org:device:BinaryLight:1");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].node, light1);
        assert_eq!(hits[1].node, light2);
        assert_eq!(hits[0].location, "/desc.xml");
    }

    #[test]
    fn search_by_service_and_all_and_usn() {
        let (_sim, net) = world();
        install_light(&net, "light1");
        let cp = net.attach("cp");
        assert_eq!(
            search(&net, cp, "urn:schemas-upnp-org:service:SwitchPower:1").len(),
            1
        );
        assert_eq!(search(&net, cp, SSDP_ALL).len(), 1);
        assert_eq!(search(&net, cp, "uuid:light1").len(), 1);
        assert!(search(&net, cp, "urn:other:device").is_empty());
    }

    #[test]
    fn non_matching_devices_stay_silent() {
        let (_sim, net) = world();
        install_light(&net, "light1");
        let cp = net.attach("cp");
        let hits = search(&net, cp, "urn:schemas-upnp-org:device:MediaRenderer:1");
        assert!(hits.is_empty());
    }

    #[test]
    fn garbage_broadcasts_are_ignored() {
        let (_sim, net) = world();
        let light = install_light(&net, "light1");
        let cp = net.attach("cp");
        net.send(Frame::new(
            cp,
            Addr::Broadcast,
            Protocol::Upnp,
            &b"NOTIFY * HTTP/1.1\r\n\r\n"[..],
        ))
        .unwrap();
        // The light did not respond to a non-M-SEARCH.
        assert!(net.recv(cp).is_none());
        let _ = light;
    }
}
