//! The control point: discovery, description fetch, action invocation,
//! event subscription.

use crate::description::DeviceDescription;
use crate::ssdp::{search, SsdpHit};
use parking_lot::Mutex;
use simnet::{Network, NodeId, Sim};
use soap::{
    HttpClient, HttpRequest, HttpResponse, HttpServer, RpcCall, RpcResponse, SoapError, TcpModel,
    Value,
};
use std::fmt;
use std::sync::Arc;

/// A UPnP control point.
///
/// Owns one node that acts as both HTTP client (control, description
/// fetch) and HTTP server (GENA notification callbacks).
#[derive(Clone)]
pub struct ControlPoint {
    net: Network,
    http: HttpClient,
    callbacks: HttpServer,
    next_cb: Arc<Mutex<u64>>,
}

impl ControlPoint {
    /// Creates a control point on a fresh node of `net`.
    pub fn new(net: &Network, label: &str) -> ControlPoint {
        let callbacks = HttpServer::bind(net, label, TcpModel::default());
        let http = HttpClient::new(net, callbacks.node(), TcpModel::default());
        ControlPoint {
            net: net.clone(),
            http,
            callbacks,
            next_cb: Arc::new(Mutex::new(0)),
        }
    }

    /// The control point's node.
    pub fn node(&self) -> NodeId {
        self.http.node()
    }

    /// SSDP search for `st`.
    ///
    /// Note: SSDP responses land in this node's inbox; since the node
    /// runs an HTTP server (a request handler), one-way SSDP frames do
    /// not conflict with it.
    pub fn discover(&self, st: &str) -> Vec<SsdpHit> {
        search(&self.net, self.node(), st)
    }

    /// Fetches and parses a discovered device's description.
    pub fn describe(&self, hit: &SsdpHit) -> Result<DeviceDescription, SoapError> {
        let resp = self
            .http
            .send_expect_ok(hit.node, &HttpRequest::get(hit.location.clone()))
            .map_err(SoapError::Http)?;
        let doc = String::from_utf8_lossy(&resp.body);
        let root = minixml::parse(&doc)?;
        DeviceDescription::from_xml(&root)
            .ok_or_else(|| SoapError::Malformed("not a device description".into()))
    }

    /// Invokes a SOAP action on a device service.
    pub fn invoke(
        &self,
        device: NodeId,
        control_url: &str,
        service_type: &str,
        action: &str,
        args: &[(&str, Value)],
    ) -> Result<Value, SoapError> {
        let mut call = RpcCall::new(service_type, action);
        for (k, v) in args {
            call = call.arg(*k, v.clone());
        }
        let req = HttpRequest::post(control_url, "text/xml; charset=utf-8", call.to_envelope())
            .header("SOAPACTION", format!("\"{service_type}#{action}\""));
        let resp = self.http.send(device, &req).map_err(SoapError::Http)?;
        RpcResponse::from_envelope(&String::from_utf8_lossy(&resp.body)).map(|r| r.value)
    }

    /// Subscribes to a service's events; `on_event` receives
    /// `(variable, value)` pairs. Returns the SID.
    pub fn subscribe(
        &self,
        device: NodeId,
        event_sub_url: &str,
        mut on_event: impl FnMut(&Sim, &str, &str) + Send + 'static,
    ) -> Result<String, SoapError> {
        let path = {
            let mut n = self.next_cb.lock();
            *n += 1;
            format!("/gena-cb/{n}")
        };
        self.callbacks
            .route(path.clone(), move |sim, req: &HttpRequest| {
                let doc = String::from_utf8_lossy(&req.body);
                if let Ok(root) = minixml::parse(&doc) {
                    for prop in root.find_all("property") {
                        for var in prop.elements() {
                            on_event(sim, var.local_name(), &var.text_content());
                        }
                    }
                }
                HttpResponse::ok("text/plain", "")
            });
        let req = HttpRequest {
            method: "SUBSCRIBE".into(),
            path: event_sub_url.to_owned(),
            headers: vec![
                (
                    "CALLBACK".into(),
                    format!("<http://node-{}{}>", self.node().0, path),
                ),
                ("NT".into(), "upnp:event".into()),
            ],
            body: Vec::new(),
        };
        let resp = self
            .http
            .send_expect_ok(device, &req)
            .map_err(SoapError::Http)?;
        resp.get_header("SID")
            .map(str::to_owned)
            .ok_or_else(|| SoapError::Malformed("subscription reply missing SID".into()))
    }

    /// Cancels a subscription.
    pub fn unsubscribe(
        &self,
        device: NodeId,
        event_sub_url: &str,
        sid: &str,
    ) -> Result<(), SoapError> {
        let req = HttpRequest {
            method: "UNSUBSCRIBE".into(),
            path: event_sub_url.to_owned(),
            headers: vec![("SID".into(), sid.to_owned())],
            body: Vec::new(),
        };
        self.http
            .send_expect_ok(device, &req)
            .map(|_| ())
            .map_err(SoapError::Http)
    }
}

impl fmt::Debug for ControlPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ControlPoint")
            .field("node", &self.node())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::UpnpDevice;
    use crate::ssdp::SSDP_ALL;

    const LIGHT_DEV: &str = "urn:schemas-upnp-org:device:BinaryLight:1";
    const SWITCH_SVC: &str = "urn:schemas-upnp-org:service:SwitchPower:1";

    fn install_light(net: &Network, name: &str) -> UpnpDevice {
        let desc = DeviceDescription::new(LIGHT_DEV, name, format!("uuid:{name}"))
            .service(SWITCH_SVC, "urn:upnp-org:serviceId:SwitchPower");
        let dev = UpnpDevice::install(net, desc);
        let on = Arc::new(Mutex::new(false));
        let dev2 = dev.clone();
        dev.implement(SWITCH_SVC, move |_, action, args| match action {
            "SetTarget" => {
                let target = args
                    .iter()
                    .find(|(k, _)| k == "NewTargetValue")
                    .and_then(|(_, v)| v.as_bool())
                    .ok_or("missing NewTargetValue")?;
                *on.lock() = target;
                dev2.notify(SWITCH_SVC, "Status", if target { "1" } else { "0" });
                Ok(Value::Null)
            }
            "GetStatus" => Ok(Value::Bool(*on.lock())),
            other => Err(format!("no action {other}")),
        });
        dev
    }

    #[test]
    fn full_control_point_flow() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let _light = install_light(&net, "kitchen");
        let cp = ControlPoint::new(&net, "cp");

        let hits = cp.discover(SSDP_ALL);
        assert_eq!(hits.len(), 1);
        let desc = cp.describe(&hits[0]).unwrap();
        assert_eq!(desc.friendly_name, "kitchen");
        let svc = desc.find_service(SWITCH_SVC).unwrap();

        let got = cp
            .invoke(hits[0].node, &svc.control_url, SWITCH_SVC, "GetStatus", &[])
            .unwrap();
        assert_eq!(got, Value::Bool(false));
        cp.invoke(
            hits[0].node,
            &svc.control_url,
            SWITCH_SVC,
            "SetTarget",
            &[("NewTargetValue", Value::Bool(true))],
        )
        .unwrap();
        let got = cp
            .invoke(hits[0].node, &svc.control_url, SWITCH_SVC, "GetStatus", &[])
            .unwrap();
        assert_eq!(got, Value::Bool(true));
    }

    #[test]
    fn eventing_through_control_point() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let light = install_light(&net, "kitchen");
        let cp = ControlPoint::new(&net, "cp");
        let hits = cp.discover(LIGHT_DEV);
        let desc = cp.describe(&hits[0]).unwrap();
        let svc = desc.find_service(SWITCH_SVC).unwrap().clone();

        let seen: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let sid = cp
            .subscribe(hits[0].node, &svc.event_sub_url, move |_, var, val| {
                seen2.lock().push((var.to_owned(), val.to_owned()));
            })
            .unwrap();

        cp.invoke(
            hits[0].node,
            &svc.control_url,
            SWITCH_SVC,
            "SetTarget",
            &[("NewTargetValue", Value::Bool(true))],
        )
        .unwrap();
        assert_eq!(*seen.lock(), vec![("Status".to_owned(), "1".to_owned())]);

        cp.unsubscribe(hits[0].node, &svc.event_sub_url, &sid)
            .unwrap();
        assert_eq!(light.subscription_count(), 0);
    }

    #[test]
    fn faults_surface_through_invoke() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let _light = install_light(&net, "kitchen");
        let cp = ControlPoint::new(&net, "cp");
        let hits = cp.discover(SSDP_ALL);
        let err = cp
            .invoke(
                hits[0].node,
                "/control/SwitchPower",
                SWITCH_SVC,
                "Explode",
                &[],
            )
            .unwrap_err();
        assert!(matches!(err, SoapError::Fault(_)));
    }
}
