//! UPnP device hosting: description document, SOAP control, GENA events.

use crate::description::DeviceDescription;
use crate::ssdp::install_responder;
use minixml::Element;
use parking_lot::Mutex;
use simnet::{Network, NodeId, Protocol, Sim};
use soap::{
    fault_envelope, Fault, HttpRequest, HttpResponse, HttpServer, RpcCall, RpcResponse, TcpModel,
    Value,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An action implementation: `(action, args) -> out-value`.
pub type ActionHandler =
    Box<dyn FnMut(&Sim, &str, &[(String, Value)]) -> Result<Value, String> + Send>;

struct Subscription {
    sid: String,
    service_type: String,
    callback_node: NodeId,
    callback_path: String,
}

struct DeviceState {
    actions: HashMap<String, ActionHandler>,
    subscriptions: Vec<Subscription>,
    next_sid: u64,
}

/// A hosted UPnP device.
#[derive(Clone)]
pub struct UpnpDevice {
    net: Network,
    node: NodeId,
    description: DeviceDescription,
    state: Arc<Mutex<DeviceState>>,
}

impl UpnpDevice {
    /// Installs a device on a fresh node of `net`: serves the description
    /// document, answers SSDP searches, and routes SOAP control and GENA
    /// subscription requests.
    pub fn install(net: &Network, description: DeviceDescription) -> UpnpDevice {
        let http = HttpServer::bind(net, &description.friendly_name, TcpModel::default());
        let node = http.node();
        let state = Arc::new(Mutex::new(DeviceState {
            actions: HashMap::new(),
            subscriptions: Vec::new(),
            next_sid: 0,
        }));

        // SSDP.
        install_responder(
            net,
            node,
            "/desc.xml",
            &description.device_type,
            description
                .services
                .iter()
                .map(|s| s.service_type.clone())
                .collect(),
            &description.udn,
        );

        // Description document.
        let desc_doc = description.to_xml().to_document();
        http.route("/desc.xml", move |_, _| {
            HttpResponse::ok("text/xml; charset=utf-8", desc_doc.clone())
        });

        // Control + eventing per service.
        for service in &description.services {
            let service_type = service.service_type.clone();
            let state2 = state.clone();
            http.route(
                service.control_url.clone(),
                move |sim, req: &HttpRequest| control_request(sim, &state2, &service_type, req),
            );

            let service_type = service.service_type.clone();
            let state2 = state.clone();
            http.route(
                service.event_sub_url.clone(),
                move |_, req: &HttpRequest| gena_request(&state2, &service_type, req),
            );
        }

        UpnpDevice {
            net: net.clone(),
            node,
            description,
            state,
        }
    }

    /// The device's HTTP node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The hosted description.
    pub fn description(&self) -> &DeviceDescription {
        &self.description
    }

    /// Registers the implementation of one service's actions.
    pub fn implement(
        &self,
        service_type: &str,
        handler: impl FnMut(&Sim, &str, &[(String, Value)]) -> Result<Value, String> + Send + 'static,
    ) {
        self.state
            .lock()
            .actions
            .insert(service_type.to_owned(), Box::new(handler));
    }

    /// Number of live subscriptions (across all services).
    pub fn subscription_count(&self) -> usize {
        self.state.lock().subscriptions.len()
    }

    /// Publishes a state-variable change to every subscriber of
    /// `service_type` (GENA NOTIFY). Dead subscribers are dropped.
    pub fn notify(&self, service_type: &str, variable: &str, value: &str) {
        let targets: Vec<(NodeId, String, String)> = self
            .state
            .lock()
            .subscriptions
            .iter()
            .filter(|s| s.service_type == service_type)
            .map(|s| (s.callback_node, s.callback_path.clone(), s.sid.clone()))
            .collect();
        let body = Element::new("e:propertyset")
            .attr("xmlns:e", "urn:schemas-upnp-org:event-1-0")
            .child(Element::new("e:property").child(Element::new(variable).text(value)))
            .to_document();
        let mut dead = Vec::new();
        for (cb_node, cb_path, sid) in targets {
            let req = HttpRequest::post(cb_path, "text/xml; charset=utf-8", body.clone())
                .header("NT", "upnp:event")
                .header("SID", sid.clone());
            // NOTIFY is fire-and-forget from the device's perspective;
            // errors only mark the subscription dead.
            let client = soap::HttpClient::new(&self.net, self.node, TcpModel::default());
            if client.send_expect_ok(cb_node, &req).is_err() {
                dead.push(sid);
            }
        }
        if !dead.is_empty() {
            self.state
                .lock()
                .subscriptions
                .retain(|s| !dead.contains(&s.sid));
        }
    }
}

impl fmt::Debug for UpnpDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UpnpDevice")
            .field("node", &self.node)
            .field("udn", &self.description.udn)
            .field("subscriptions", &self.subscription_count())
            .finish()
    }
}

fn control_request(
    sim: &Sim,
    state: &Mutex<DeviceState>,
    service_type: &str,
    req: &HttpRequest,
) -> HttpResponse {
    let doc = String::from_utf8_lossy(&req.body);
    let outcome = match RpcCall::from_envelope(&doc) {
        Ok(call) => {
            let handler = {
                let mut st = state.lock();
                // Borrow the handler by temporarily removing it so the
                // lock is not held across the (possibly re-entrant) call.
                st.actions.remove(service_type)
            };
            match handler {
                Some(mut h) => {
                    let result = h(sim, &call.method, &call.args);
                    state.lock().actions.insert(service_type.to_owned(), h);
                    match result {
                        Ok(v) => Ok(RpcResponse::new(&call.method, v)),
                        Err(e) => Err(Fault::server(e)),
                    }
                }
                None => Err(Fault::client(format!(
                    "service {service_type} not implemented"
                ))),
            }
        }
        Err(e) => Err(Fault::client(e.to_string())),
    };
    match outcome {
        Ok(resp) => HttpResponse::ok("text/xml; charset=utf-8", resp.to_envelope()),
        Err(fault) => {
            let mut r = HttpResponse::error(500, "Internal Server Error", fault_envelope(&fault));
            r.headers[0].1 = "text/xml; charset=utf-8".into();
            r
        }
    }
}

fn gena_request(state: &Mutex<DeviceState>, service_type: &str, req: &HttpRequest) -> HttpResponse {
    match req.method.as_str() {
        "SUBSCRIBE" => {
            let Some(callback) = req.get_header("CALLBACK") else {
                return HttpResponse::error(412, "Precondition Failed", "missing CALLBACK");
            };
            // CALLBACK: <http://node-<id>/path>
            let inner = callback.trim_start_matches('<').trim_end_matches('>');
            let Some(rest) = inner.strip_prefix("http://node-") else {
                return HttpResponse::error(412, "Precondition Failed", "bad CALLBACK");
            };
            let Some(slash) = rest.find('/') else {
                return HttpResponse::error(412, "Precondition Failed", "bad CALLBACK path");
            };
            let Ok(id) = rest[..slash].parse::<u32>() else {
                return HttpResponse::error(412, "Precondition Failed", "bad CALLBACK node");
            };
            let mut st = state.lock();
            st.next_sid += 1;
            let sid = format!("uuid:sub-{}", st.next_sid);
            st.subscriptions.push(Subscription {
                sid: sid.clone(),
                service_type: service_type.to_owned(),
                callback_node: NodeId(id),
                callback_path: rest[slash..].to_owned(),
            });
            HttpResponse::ok("text/plain", "")
                .tap_header("SID", &sid)
                .tap_header("TIMEOUT", "Second-1800")
        }
        "UNSUBSCRIBE" => {
            let Some(sid) = req.get_header("SID") else {
                return HttpResponse::error(412, "Precondition Failed", "missing SID");
            };
            let mut st = state.lock();
            let before = st.subscriptions.len();
            st.subscriptions.retain(|s| s.sid != sid);
            if st.subscriptions.len() < before {
                HttpResponse::ok("text/plain", "")
            } else {
                HttpResponse::error(412, "Precondition Failed", "unknown SID")
            }
        }
        other => HttpResponse::error(405, "Method Not Allowed", format!("no {other} here")),
    }
}

trait TapHeader {
    fn tap_header(self, k: &str, v: &str) -> Self;
}

impl TapHeader for HttpResponse {
    fn tap_header(mut self, k: &str, v: &str) -> Self {
        self.headers.push((k.to_owned(), v.to_owned()));
        self
    }
}

/// A convenience: the traffic class UPnP control rides on.
pub const CONTROL_PROTOCOL: Protocol = Protocol::Http;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::DeviceDescription;

    const LIGHT_DEV: &str = "urn:schemas-upnp-org:device:BinaryLight:1";
    const SWITCH_SVC: &str = "urn:schemas-upnp-org:service:SwitchPower:1";

    fn light(net: &Network) -> UpnpDevice {
        let desc = DeviceDescription::new(LIGHT_DEV, "Kitchen Light", "uuid:kitchen")
            .service(SWITCH_SVC, "urn:upnp-org:serviceId:SwitchPower");
        let dev = UpnpDevice::install(net, desc);
        let on = Arc::new(Mutex::new(false));
        dev.implement(SWITCH_SVC, move |_, action, args| match action {
            "SetTarget" => {
                let target = args
                    .iter()
                    .find(|(k, _)| k == "NewTargetValue")
                    .and_then(|(_, v)| v.as_bool())
                    .ok_or("missing NewTargetValue")?;
                *on.lock() = target;
                Ok(Value::Null)
            }
            "GetStatus" => Ok(Value::Bool(*on.lock())),
            other => Err(format!("no action {other}")),
        });
        dev
    }

    #[test]
    fn description_served_over_http() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let dev = light(&net);
        let client = soap::HttpClient::attach(&net, "cp", TcpModel::default());
        let resp = client
            .send_expect_ok(dev.node(), &HttpRequest::get("/desc.xml"))
            .unwrap();
        let doc = String::from_utf8_lossy(&resp.body);
        let parsed = DeviceDescription::from_xml(&minixml::parse(&doc).unwrap()).unwrap();
        assert_eq!(parsed.friendly_name, "Kitchen Light");
    }

    #[test]
    fn soap_control_round_trip() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let dev = light(&net);
        let client = soap::HttpClient::attach(&net, "cp", TcpModel::default());

        let call = RpcCall::new(SWITCH_SVC, "SetTarget").arg("NewTargetValue", true);
        let req = HttpRequest::post("/control/SwitchPower", "text/xml", call.to_envelope());
        let resp = client.send_expect_ok(dev.node(), &req).unwrap();
        let parsed = RpcResponse::from_envelope(&String::from_utf8_lossy(&resp.body)).unwrap();
        assert_eq!(parsed.value, Value::Null);

        let call = RpcCall::new(SWITCH_SVC, "GetStatus");
        let req = HttpRequest::post("/control/SwitchPower", "text/xml", call.to_envelope());
        let resp = client.send_expect_ok(dev.node(), &req).unwrap();
        let parsed = RpcResponse::from_envelope(&String::from_utf8_lossy(&resp.body)).unwrap();
        assert_eq!(parsed.value, Value::Bool(true));
    }

    #[test]
    fn bad_action_is_soap_fault_on_500() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let dev = light(&net);
        let client = soap::HttpClient::attach(&net, "cp", TcpModel::default());
        let call = RpcCall::new(SWITCH_SVC, "Explode");
        let req = HttpRequest::post("/control/SwitchPower", "text/xml", call.to_envelope());
        let resp = client.send(dev.node(), &req).unwrap();
        assert_eq!(resp.status, 500);
        let err = RpcResponse::from_envelope(&String::from_utf8_lossy(&resp.body)).unwrap_err();
        assert!(matches!(err, soap::SoapError::Fault(_)));
    }

    #[test]
    fn gena_subscribe_notify_unsubscribe() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let dev = light(&net);

        // The subscriber runs its own HTTP server for callbacks.
        let cb_server = HttpServer::bind(&net, "cp-events", TcpModel::default());
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        cb_server.route("/notify", move |_, req: &HttpRequest| {
            seen2
                .lock()
                .push(String::from_utf8_lossy(&req.body).into_owned());
            HttpResponse::ok("text/plain", "")
        });

        let client = soap::HttpClient::new(&net, cb_server.node(), TcpModel::default());
        let sub = HttpRequest {
            method: "SUBSCRIBE".into(),
            path: "/event/SwitchPower".into(),
            headers: vec![(
                "CALLBACK".into(),
                format!("<http://node-{}/notify>", cb_server.node().0),
            )],
            body: Vec::new(),
        };
        let resp = client.send_expect_ok(dev.node(), &sub).unwrap();
        let sid = resp.get_header("SID").unwrap().to_owned();
        assert_eq!(dev.subscription_count(), 1);

        dev.notify(SWITCH_SVC, "Status", "1");
        assert_eq!(seen.lock().len(), 1);
        assert!(seen.lock()[0].contains("<Status>1</Status>"));

        let unsub = HttpRequest {
            method: "UNSUBSCRIBE".into(),
            path: "/event/SwitchPower".into(),
            headers: vec![("SID".into(), sid)],
            body: Vec::new(),
        };
        client.send_expect_ok(dev.node(), &unsub).unwrap();
        assert_eq!(dev.subscription_count(), 0);
        dev.notify(SWITCH_SVC, "Status", "0");
        assert_eq!(seen.lock().len(), 1);
    }

    #[test]
    fn dead_subscriber_is_pruned_on_notify() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let dev = light(&net);
        let client = soap::HttpClient::attach(&net, "cp", TcpModel::default());
        let sub = HttpRequest {
            method: "SUBSCRIBE".into(),
            path: "/event/SwitchPower".into(),
            headers: vec![("CALLBACK".into(), "<http://node-9999/notify>".into())],
            body: Vec::new(),
        };
        client.send_expect_ok(dev.node(), &sub).unwrap();
        assert_eq!(dev.subscription_count(), 1);
        dev.notify(SWITCH_SVC, "Status", "1");
        assert_eq!(dev.subscription_count(), 0);
    }

    #[test]
    fn bad_gena_requests() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let dev = light(&net);
        let client = soap::HttpClient::attach(&net, "cp", TcpModel::default());
        for (method, headers) in [
            ("SUBSCRIBE", vec![]),
            (
                "SUBSCRIBE",
                vec![("CALLBACK".to_owned(), "garbage".to_owned())],
            ),
            ("UNSUBSCRIBE", vec![]),
            (
                "UNSUBSCRIBE",
                vec![("SID".to_owned(), "uuid:nope".to_owned())],
            ),
            ("GET", vec![]),
        ] {
            let req = HttpRequest {
                method: method.into(),
                path: "/event/SwitchPower".into(),
                headers,
                body: Vec::new(),
            };
            let resp = client.send(dev.node(), &req).unwrap();
            assert!(!resp.is_success(), "{method} should fail");
        }
    }
}
