#!/usr/bin/env sh
# The full local gate: formatting, lints, release build, tests.
# Run from the repo root; fails fast on the first broken step.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test --workspace -q

# The failure and chaos suites replay their randomized fault schedules
# from CHAOS_SEED; three fixed seeds keep the coverage deterministic.
for seed in 1 7 1234; do
    echo "==> chaos + failure suites (CHAOS_SEED=$seed)"
    CHAOS_SEED=$seed cargo test -q --test chaos --test failures
done

echo "==> cargo bench --no-run (benches compile)"
cargo bench --workspace --no-run -q

# E14 smoke run: its report functions assert the multiplexed-wire
# thresholds (batched events/sec >= 3x unbatched at fan-out 64, wire
# bytes/event <= 0.5x, idle p50 within 10%), so a regression in the
# batching path fails this step outright.
echo "==> e14 throughput smoke (threshold assertions)"
cargo bench -p bench --bench e14_throughput -- --test

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> ci green"
