#!/usr/bin/env sh
# The full local gate: formatting, lints, release build, tests.
# Run from the repo root; fails fast on the first broken step.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> ci green"
