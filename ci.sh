#!/usr/bin/env sh
# The full local gate: formatting, lints, release build, tests, chaos
# replays, bench smokes, docs, and the bench regression gate.
# Run from the repo root; fails fast on the first broken step.
#
# Overridables:
#   CHAOS_SEEDS      space-separated seed list for the chaos/failure
#                    replays (default "1 7 1234")
#   BENCH_TOLERANCE  relative drift band for the bench gate (default 0.25)
set -eu

CHAOS_SEEDS="${CHAOS_SEEDS:-1 7 1234}"

# Each stage is timed; a summary prints at the end so slow stages are
# obvious without scrolling.
STAGE_SUMMARY=""
STAGE_NAME=""
STAGE_T0=0

stage() {
    stage_end
    STAGE_NAME="$1"
    STAGE_T0=$(date +%s)
    echo "==> $STAGE_NAME"
}

stage_end() {
    if [ -n "$STAGE_NAME" ]; then
        STAGE_SUMMARY="$STAGE_SUMMARY$(printf '%5ss  %s' "$(($(date +%s) - STAGE_T0))" "$STAGE_NAME")\n"
        STAGE_NAME=""
    fi
}

stage "cargo fmt --check"
cargo fmt --check

stage "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

stage "cargo build --release"
cargo build --release

stage "cargo test -q"
cargo test --workspace -q

# The failure and chaos suites replay their randomized fault schedules
# from CHAOS_SEED; a few fixed seeds keep the coverage deterministic.
for seed in $CHAOS_SEEDS; do
    stage "chaos + failure suites (CHAOS_SEED=$seed)"
    CHAOS_SEED=$seed cargo test -q --test chaos --test failures
done

stage "cargo bench --no-run (benches compile)"
cargo bench --workspace --no-run -q

# E14 smoke run: its report functions assert the multiplexed-wire
# thresholds (batched events/sec >= 3x unbatched at fan-out 64, wire
# bytes/event <= 0.5x, idle p50 within 10%), so a regression in the
# batching path fails this step outright.
stage "e14 throughput smoke (threshold assertions)"
cargo bench -p bench --bench e14_throughput -- --test

# E15 smoke run: asserts the federated VSR holds >= 99% invoke
# availability through primary-crash windows with replication on (and
# that a single replica doesn't), and that anti-entropy converges.
stage "e15 federated VSR smoke (threshold assertions)"
cargo bench -p bench --bench e15_vsr_scale -- --test

stage "cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

# Last stage: compare the freshly emitted BENCH_*.json from the smoke
# runs above against bench-baselines/ within a tolerance band.
stage "bench regression gate (scripts/bench_gate.py)"
python3 scripts/bench_gate.py

stage_end
echo ""
echo "==> stage timings"
printf "%b" "$STAGE_SUMMARY"
echo "==> ci green"
