#!/usr/bin/env sh
# The full local gate: formatting, lints, release build, tests.
# Run from the repo root; fails fast on the first broken step.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test --workspace -q

# The failure and chaos suites replay their randomized fault schedules
# from CHAOS_SEED; three fixed seeds keep the coverage deterministic.
for seed in 1 7 1234; do
    echo "==> chaos + failure suites (CHAOS_SEED=$seed)"
    CHAOS_SEED=$seed cargo test -q --test chaos --test failures
done

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> ci green"
