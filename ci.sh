#!/usr/bin/env sh
# The full local gate: formatting, lints, release build, tests, chaos
# replays, bench smokes, docs, and the bench regression gate.
# Run from the repo root; fails fast on the first broken step.
#
# Usage:
#   ./ci.sh                 run every stage in order
#   ./ci.sh --stage <name>  run a single named stage (what the hosted
#                           CI jobs call, one stage per job)
#   ./ci.sh --list          print the stage names
#
# Overridables:
#   CHAOS_SEEDS      space-separated seed list for the chaos/failure
#                    replays (default "1 7 1234"; the hosted matrix
#                    legs set this to their single seed)
#   BENCH_TOLERANCE  relative drift band for the bench gate (default 0.25)
#   OBS_EXPORT_DIR   if set, the composition / wan-chaos drills write
#                    their OpenMetrics + JSON-lines exports there
set -eu

CHAOS_SEEDS="${CHAOS_SEEDS:-1 7 1234}"

# Each stage is timed; a summary prints at the end so slow stages are
# obvious without scrolling.
STAGE_SUMMARY=""
STAGE_NAME=""
STAGE_T0=0

stage() {
    stage_end
    STAGE_NAME="$1"
    STAGE_T0=$(date +%s)
    echo "==> $STAGE_NAME"
}

stage_end() {
    if [ -n "$STAGE_NAME" ]; then
        STAGE_SUMMARY="$STAGE_SUMMARY$(printf '%5ss  %s' "$(($(date +%s) - STAGE_T0))" "$STAGE_NAME")\n"
        STAGE_NAME=""
    fi
}

run_lint() {
    stage "cargo fmt --check"
    cargo fmt --check

    stage "cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_build_test() {
    stage "cargo build --release"
    cargo build --release

    stage "cargo test -q"
    cargo test --workspace -q
}

# The failure and chaos suites replay their randomized fault schedules
# from CHAOS_SEED; a few fixed seeds keep the coverage deterministic.
run_chaos() {
    for seed in $CHAOS_SEEDS; do
        stage "chaos + failure suites (CHAOS_SEED=$seed)"
        CHAOS_SEED=$seed cargo test -q --test chaos --test failures
    done
}

# The cloud-bridge WAN trio (duplicate + reorder + partition) plus the
# fleet drill's cloud-outage scene. Locally this is a subset of the
# full chaos stage; the hosted wan-chaos job runs it per seed leg with
# OBS_EXPORT_DIR set so failing legs keep their traces.
run_wan_chaos() {
    for seed in $CHAOS_SEEDS; do
        stage "wan chaos: cloud bridge proptests (CHAOS_SEED=$seed)"
        CHAOS_SEED=$seed cargo test -q --test chaos cloud

        stage "wan chaos: cloud outage drill (CHAOS_SEED=$seed)"
        CHAOS_SEED=$seed cargo run -q --example fleet_drill \
            >"target/fleet_drill_wan_$seed.txt" 2>/dev/null
    done
}

# Composition lane: the composite-pipeline chaos proptests (no double
# execution of non-idempotent steps, compensators at most once, seed
# determinism), the engine-vs-client-driven equivalence proptest, and
# the pipeline drill end to end (compensation unwind under a gateway
# outage). The drill honors OBS_EXPORT_DIR for its metrics/trace dump.
run_composition() {
    cargo build -q --example pipeline_drill
    for seed in $CHAOS_SEEDS; do
        stage "composition: chaos proptests (CHAOS_SEED=$seed)"
        CHAOS_SEED=$seed cargo test -q --test chaos compose

        stage "composition: engine == client-driven (CHAOS_SEED=$seed)"
        CHAOS_SEED=$seed cargo test -q --test model_props composite

        stage "composition: pipeline drill (CHAOS_SEED=$seed)"
        CHAOS_SEED=$seed cargo run -q --example pipeline_drill \
            >"target/pipeline_drill_$seed.txt" 2>/dev/null
    done
}

# Parallel determinism: the fleet drill's stdout (availability counts,
# metrics snapshots, traces) must be byte-identical whether the
# conservative scheduler runs on 1 worker thread or 4, for every seed
# of the chaos matrix — plus the 1-vs-4 fingerprint proptests.
run_parallel_determinism() {
    stage "parallel determinism (SIM_THREADS=1 vs 4)"
    cargo build -q --example fleet_drill
    for seed in $CHAOS_SEEDS; do
        CHAOS_SEED=$seed SIM_THREADS=1 cargo run -q --example fleet_drill \
            >"target/fleet_drill_t1_$seed.txt" 2>/dev/null
        CHAOS_SEED=$seed SIM_THREADS=4 cargo run -q --example fleet_drill \
            >"target/fleet_drill_t4_$seed.txt" 2>/dev/null
        diff "target/fleet_drill_t1_$seed.txt" "target/fleet_drill_t4_$seed.txt" \
            || { echo "parallel determinism broken for seed $seed" >&2; exit 1; }
        echo "seed $seed: identical"
    done

    stage "determinism proptests (1 vs 4 threads)"
    cargo test -q --test model_props parallel
}

run_bench() {
    stage "cargo bench --no-run (benches compile)"
    cargo bench --workspace --no-run -q

    # E14 smoke run: its report functions assert the multiplexed-wire
    # thresholds (batched events/sec >= 3x unbatched at fan-out 64, wire
    # bytes/event <= 0.5x, idle p50 within 10%), so a regression in the
    # batching path fails this step outright.
    stage "e14 throughput smoke (threshold assertions)"
    cargo bench -p bench --bench e14_throughput -- --test

    # E15 smoke run: asserts the federated VSR holds >= 99% invoke
    # availability through primary-crash windows with replication on (and
    # that a single replica doesn't), and that anti-entropy converges.
    stage "e15 federated VSR smoke (threshold assertions)"
    cargo bench -p bench --bench e15_vsr_scale -- --test

    # E12 smoke run: tracing off/on/sampled ablation plus the sketch-vs-
    # exact quantile rows; asserts the sketch's p99 stays within one
    # bucket of exact. Emits BENCH_obs.json for the gate below.
    stage "e12 observability smoke (sketch/sampling assertions)"
    cargo bench -p bench --bench e12_obs_overhead -- --test

    # E16 smoke run: asserts metrics snapshots and scheduler statistics
    # are bit-for-bit identical at 1/2/4 worker threads, and (on hosts
    # with >= 4 cores) that 4 threads give >= 2.5x wall-clock throughput
    # on the independent-homes topology. Emits BENCH_parallel.json.
    stage "e16 parallel fleet smoke (determinism + scaling assertions)"
    cargo bench -p bench --bench e16_parallel -- --test

    # E17 smoke run: the cloud bridge under canonical WAN chaos — asserts
    # zero duplicate command effects, >= 99% delivered notifications after
    # heal (and measurably fewer with store-and-forward off), thread-count
    # determinism, and flash-crowd pushback. Emits BENCH_cloud.json.
    stage "e17 cloud bridge smoke (WAN robustness assertions)"
    cargo bench -p bench --bench e17_cloud -- --test

    # E18 smoke run: the three-codec wire ablation over the zero-copy
    # stack — asserts SOAP's warm-path allocs/op stay >= 3x below the
    # pre-zero-copy baseline, the binary codec moves fewer wire bytes/op
    # than SOAP, the streaming decoder buffers <= 1 frame, and every codec
    # is thread-count deterministic. Emits BENCH_codec.json.
    stage "e18 codec ablation smoke (zero-copy + determinism assertions)"
    cargo bench -p bench --bench e18_codec -- --test

    # E19 smoke run: the composition engine — asserts an 8-step
    # cross-island composite costs 1 client round trip where the
    # client-driven loop costs 8, the chaos cell never double-executes
    # a non-idempotent step (compensators exactly once), and the fleet
    # fingerprint is identical at 1 vs 4 worker threads. Emits
    # BENCH_compose.json.
    stage "e19 composition smoke (round-trip + saga assertions)"
    cargo bench -p bench --bench e19_compose -- --test

    # Compare the freshly emitted BENCH_*.json from the smoke runs
    # above against bench-baselines/ within a tolerance band. Fails on
    # drift, shape change, or a fresh report with no baseline.
    stage "bench regression gate (scripts/bench_gate.py)"
    python3 scripts/bench_gate.py
}

run_docs() {
    stage "cargo doc --no-deps (warnings denied)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q
}

# Stage registry: name -> function. The default full run executes
# ALL_STAGES in order (wan-chaos is omitted there: the full chaos
# stage already runs the whole chaos suite every seed).
ALL_STAGES="lint build-test chaos composition parallel-determinism bench docs"

run_stage() {
    case "$1" in
        lint) run_lint ;;
        build-test) run_build_test ;;
        chaos) run_chaos ;;
        wan-chaos) run_wan_chaos ;;
        composition) run_composition ;;
        parallel-determinism) run_parallel_determinism ;;
        bench) run_bench ;;
        docs) run_docs ;;
        *)
            echo "ci.sh: unknown stage '$1'" >&2
            echo "ci.sh: stages: $ALL_STAGES wan-chaos" >&2
            exit 2
            ;;
    esac
}

SELECTED=""
while [ $# -gt 0 ]; do
    case "$1" in
        --stage)
            [ $# -ge 2 ] || { echo "ci.sh: --stage needs a name" >&2; exit 2; }
            SELECTED="$SELECTED $2"
            shift 2
            ;;
        --list)
            for s in $ALL_STAGES wan-chaos; do echo "$s"; done
            exit 0
            ;;
        *)
            echo "ci.sh: unknown argument '$1' (try --stage <name> or --list)" >&2
            exit 2
            ;;
    esac
done

for s in ${SELECTED:-$ALL_STAGES}; do
    run_stage "$s"
done

stage_end
echo ""
echo "==> stage timings"
printf "%b" "$STAGE_SUMMARY"
echo "==> ci green"
