#!/usr/bin/env sh
# The full local gate: formatting, lints, release build, tests, chaos
# replays, bench smokes, docs, and the bench regression gate.
# Run from the repo root; fails fast on the first broken step.
#
# Overridables:
#   CHAOS_SEEDS      space-separated seed list for the chaos/failure
#                    replays (default "1 7 1234")
#   BENCH_TOLERANCE  relative drift band for the bench gate (default 0.25)
set -eu

CHAOS_SEEDS="${CHAOS_SEEDS:-1 7 1234}"

# Each stage is timed; a summary prints at the end so slow stages are
# obvious without scrolling.
STAGE_SUMMARY=""
STAGE_NAME=""
STAGE_T0=0

stage() {
    stage_end
    STAGE_NAME="$1"
    STAGE_T0=$(date +%s)
    echo "==> $STAGE_NAME"
}

stage_end() {
    if [ -n "$STAGE_NAME" ]; then
        STAGE_SUMMARY="$STAGE_SUMMARY$(printf '%5ss  %s' "$(($(date +%s) - STAGE_T0))" "$STAGE_NAME")\n"
        STAGE_NAME=""
    fi
}

stage "cargo fmt --check"
cargo fmt --check

stage "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

stage "cargo build --release"
cargo build --release

stage "cargo test -q"
cargo test --workspace -q

# The failure and chaos suites replay their randomized fault schedules
# from CHAOS_SEED; a few fixed seeds keep the coverage deterministic.
for seed in $CHAOS_SEEDS; do
    stage "chaos + failure suites (CHAOS_SEED=$seed)"
    CHAOS_SEED=$seed cargo test -q --test chaos --test failures
done

# Parallel determinism: the fleet drill's stdout (availability counts,
# metrics snapshots, traces) must be byte-identical whether the
# conservative scheduler runs on 1 worker thread or 4, for every seed
# of the chaos matrix.
stage "parallel determinism (SIM_THREADS=1 vs 4)"
cargo build -q --example fleet_drill
for seed in $CHAOS_SEEDS; do
    CHAOS_SEED=$seed SIM_THREADS=1 cargo run -q --example fleet_drill \
        >"target/fleet_drill_t1_$seed.txt" 2>/dev/null
    CHAOS_SEED=$seed SIM_THREADS=4 cargo run -q --example fleet_drill \
        >"target/fleet_drill_t4_$seed.txt" 2>/dev/null
    diff "target/fleet_drill_t1_$seed.txt" "target/fleet_drill_t4_$seed.txt" \
        || { echo "parallel determinism broken for seed $seed" >&2; exit 1; }
    echo "seed $seed: identical"
done

stage "cargo bench --no-run (benches compile)"
cargo bench --workspace --no-run -q

# E14 smoke run: its report functions assert the multiplexed-wire
# thresholds (batched events/sec >= 3x unbatched at fan-out 64, wire
# bytes/event <= 0.5x, idle p50 within 10%), so a regression in the
# batching path fails this step outright.
stage "e14 throughput smoke (threshold assertions)"
cargo bench -p bench --bench e14_throughput -- --test

# E15 smoke run: asserts the federated VSR holds >= 99% invoke
# availability through primary-crash windows with replication on (and
# that a single replica doesn't), and that anti-entropy converges.
stage "e15 federated VSR smoke (threshold assertions)"
cargo bench -p bench --bench e15_vsr_scale -- --test

# E12 smoke run: tracing off/on/sampled ablation plus the sketch-vs-
# exact quantile rows; asserts the sketch's p99 stays within one
# bucket of exact. Emits BENCH_obs.json for the gate below.
stage "e12 observability smoke (sketch/sampling assertions)"
cargo bench -p bench --bench e12_obs_overhead -- --test

# E16 smoke run: asserts metrics snapshots and scheduler statistics
# are bit-for-bit identical at 1/2/4 worker threads, and (on hosts
# with >= 4 cores) that 4 threads give >= 2.5x wall-clock throughput
# on the independent-homes topology. Emits BENCH_parallel.json.
stage "e16 parallel fleet smoke (determinism + scaling assertions)"
cargo bench -p bench --bench e16_parallel -- --test

# E17 smoke run: the cloud bridge under canonical WAN chaos — asserts
# zero duplicate command effects, >= 99% delivered notifications after
# heal (and measurably fewer with store-and-forward off), thread-count
# determinism, and flash-crowd pushback. Emits BENCH_cloud.json.
stage "e17 cloud bridge smoke (WAN robustness assertions)"
cargo bench -p bench --bench e17_cloud -- --test

# E18 smoke run: the three-codec wire ablation over the zero-copy
# stack — asserts SOAP's warm-path allocs/op stay >= 3x below the
# pre-zero-copy baseline, the binary codec moves fewer wire bytes/op
# than SOAP, the streaming decoder buffers <= 1 frame, and every codec
# is thread-count deterministic. Emits BENCH_codec.json.
stage "e18 codec ablation smoke (zero-copy + determinism assertions)"
cargo bench -p bench --bench e18_codec -- --test

stage "cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

# Last stage: compare the freshly emitted BENCH_*.json from the smoke
# runs above against bench-baselines/ within a tolerance band.
stage "bench regression gate (scripts/bench_gate.py)"
python3 scripts/bench_gate.py

stage_end
echo ""
echo "==> stage timings"
printf "%b" "$STAGE_SUMMARY"
echo "==> ci green"
