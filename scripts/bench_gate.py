#!/usr/bin/env python3
"""Bench regression gate.

Compares freshly emitted ``BENCH_*.json`` reports (written by the bench
smoke runs into ``crates/bench/target/bench-results/``) against the
checked-in baselines in ``bench-baselines/`` and fails on drift beyond a
tolerance band.

Report shape (see ``crates/bench/src/lib.rs``)::

    {"id": ..., "title": ..., "headers": [...], "rows": [[cell, ...], ...]}

Cells are strings; numeric cells may carry a unit suffix ("7663us",
"99.2"). A cell that parses as a leading float in the baseline must
parse in the fresh run too and stay within ``BENCH_TOLERANCE`` (relative,
default 0.25) — the band is symmetric because a metric that silently
doubled is as suspicious as one that halved. Label cells must match
exactly; any header/row-count mismatch is a shape change and fails hard.

Only baselines with a fresh counterpart are compared (ci.sh smokes a
subset of the benches), but at least one comparison must happen.

Exit status: 0 green, 1 regression/shape change/nothing compared.
"""

import json
import os
import re
import sys
from pathlib import Path

LEADING_FLOAT = re.compile(r"^\s*([-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)")
# Cells at or below this magnitude are compared absolutely: a lag of
# 0 entries vs 1 entry is meaningful, but a relative band around 0 is
# degenerate.
ABSOLUTE_FLOOR = 1.0


def leading_float(cell):
    m = LEADING_FLOAT.match(cell)
    return float(m.group(1)) if m else None


def compare_report(name, base, fresh, tolerance):
    """Returns a list of failure strings (empty means the file is green)."""
    failures = []
    if base.get("headers") != fresh.get("headers"):
        return [f"{name}: headers changed {base.get('headers')} -> {fresh.get('headers')}"]
    base_rows, fresh_rows = base.get("rows", []), fresh.get("rows", [])
    if len(base_rows) != len(fresh_rows):
        return [f"{name}: row count changed {len(base_rows)} -> {len(fresh_rows)}"]
    for i, (brow, frow) in enumerate(zip(base_rows, fresh_rows)):
        if len(brow) != len(frow):
            failures.append(f"{name} row {i}: cell count changed {len(brow)} -> {len(frow)}")
            continue
        for j, (bcell, fcell) in enumerate(zip(brow, frow)):
            bval, fval = leading_float(bcell), leading_float(fcell)
            if bval is None or fval is None:
                if bcell != fcell:
                    failures.append(
                        f"{name} row {i} col {j}: label changed {bcell!r} -> {fcell!r}"
                    )
                continue
            if abs(bval) <= ABSOLUTE_FLOOR:
                drift_ok = abs(fval - bval) <= ABSOLUTE_FLOOR
            else:
                drift_ok = abs(fval - bval) / abs(bval) <= tolerance
            if not drift_ok:
                failures.append(
                    f"{name} row {i} ({brow[0]!r}) col {j}: "
                    f"{bcell!r} -> {fcell!r} exceeds tolerance {tolerance:.0%}"
                )
    return failures


def main():
    root = Path(__file__).resolve().parent.parent
    baseline_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else root / "bench-baselines"
    fresh_dir = (
        Path(sys.argv[2])
        if len(sys.argv) > 2
        else root / "crates" / "bench" / "target" / "bench-results"
    )
    tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.25"))

    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"bench gate: no BENCH_*.json baselines in {baseline_dir}", file=sys.stderr)
        return 1

    compared, skipped, failures = 0, [], []
    for base_path in baselines:
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.exists():
            skipped.append(base_path.name)
            continue
        with open(base_path) as f:
            base = json.load(f)
        with open(fresh_path) as f:
            fresh = json.load(f)
        file_failures = compare_report(base_path.name, base, fresh, tolerance)
        failures.extend(file_failures)
        compared += 1
        status = "FAIL" if file_failures else "ok"
        print(f"bench gate: {base_path.name}: {status}")

    for name in skipped:
        print(f"bench gate: {name}: skipped (no fresh run)")
    for failure in failures:
        print(f"bench gate: REGRESSION: {failure}", file=sys.stderr)

    if compared == 0:
        print("bench gate: nothing compared — did the bench smoke stage run?", file=sys.stderr)
        return 1
    if failures:
        return 1
    print(f"bench gate: green ({compared} compared, tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
