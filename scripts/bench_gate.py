#!/usr/bin/env python3
"""Bench regression gate.

Compares freshly emitted ``BENCH_*.json`` reports (written by the bench
smoke runs into ``crates/bench/target/bench-results/``) against the
checked-in baselines in ``bench-baselines/`` and fails on drift beyond a
tolerance band.

Report shape (see ``crates/bench/src/lib.rs``)::

    {"id": ..., "title": ..., "headers": [...], "rows": [[cell, ...], ...]}

Cells are strings; numeric cells may carry a unit suffix ("7663us",
"99.2"). A cell that parses as a leading float in the baseline must
parse in the fresh run too and stay within ``BENCH_TOLERANCE`` (relative,
default 0.25) — the band is symmetric because a metric that silently
doubled is as suspicious as one that halved. Label cells must match
exactly; any header/row-count mismatch is a shape change and fails hard.

Only baselines with a fresh counterpart are compared (ci.sh smokes a
subset of the benches), but at least one comparison must happen — and
every *fresh* ``BENCH_*.json`` must have a baseline: an emitted report
nobody checked a baseline in for would otherwise be silently ungated.

On drift the gate prints a per-cell table (file, row, column, old, new,
drift, tolerance) so the offending cells read off directly.

Exit status: 0 green, 1 regression/shape change/missing baseline/
nothing compared.
"""

import json
import os
import re
import sys
from pathlib import Path

LEADING_FLOAT = re.compile(r"^\s*([-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)")
# Cells at or below this magnitude are compared absolutely: a lag of
# 0 entries vs 1 entry is meaningful, but a relative band around 0 is
# degenerate.
ABSOLUTE_FLOOR = 1.0


def leading_float(cell):
    m = LEADING_FLOAT.match(cell)
    return float(m.group(1)) if m else None


def compare_report(name, base, fresh, tolerance):
    """Returns (failures, drift_cells).

    ``failures`` are shape-change strings; ``drift_cells`` are
    ``(file, row_label, column, old, new, drift, band)`` tuples for
    every numeric cell outside its band (empty both means green).
    """
    failures, drifts = [], []
    if base.get("headers") != fresh.get("headers"):
        return (
            [f"{name}: headers changed {base.get('headers')} -> {fresh.get('headers')}"],
            [],
        )
    headers = base.get("headers", [])
    base_rows, fresh_rows = base.get("rows", []), fresh.get("rows", [])
    if len(base_rows) != len(fresh_rows):
        return [f"{name}: row count changed {len(base_rows)} -> {len(fresh_rows)}"], []
    for i, (brow, frow) in enumerate(zip(base_rows, fresh_rows)):
        if len(brow) != len(frow):
            failures.append(f"{name} row {i}: cell count changed {len(brow)} -> {len(frow)}")
            continue
        row_label = brow[0] if brow else str(i)
        for j, (bcell, fcell) in enumerate(zip(brow, frow)):
            column = headers[j] if j < len(headers) else f"col {j}"
            bval, fval = leading_float(bcell), leading_float(fcell)
            if bval is None or fval is None:
                if bcell != fcell:
                    failures.append(
                        f"{name} row {i} col {j}: label changed {bcell!r} -> {fcell!r}"
                    )
                continue
            if abs(bval) <= ABSOLUTE_FLOOR:
                drift_ok = abs(fval - bval) <= ABSOLUTE_FLOOR
                band = f"±{ABSOLUTE_FLOOR:g} abs"
                drift = f"{fval - bval:+g}"
            else:
                rel = (fval - bval) / abs(bval)
                drift_ok = abs(rel) <= tolerance
                band = f"±{tolerance:.0%}"
                drift = f"{rel:+.1%}"
            if not drift_ok:
                drifts.append((name, row_label, column, bcell, fcell, drift, band))
    return failures, drifts


def print_drift_table(drifts):
    """The per-cell drift report: one aligned row per offending cell."""
    headers = ("file", "row", "column", "old", "new", "drift", "tolerance")
    rows = [headers] + [tuple(str(c) for c in d) for d in drifts]
    widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
    for k, r in enumerate(rows):
        line = "  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip()
        print(f"bench gate: {line}", file=sys.stderr)
        if k == 0:
            print(f"bench gate: {'-' * (sum(widths) + 2 * (len(widths) - 1))}", file=sys.stderr)


def main():
    root = Path(__file__).resolve().parent.parent
    baseline_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else root / "bench-baselines"
    fresh_dir = (
        Path(sys.argv[2])
        if len(sys.argv) > 2
        else root / "crates" / "bench" / "target" / "bench-results"
    )
    tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.25"))

    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"bench gate: no BENCH_*.json baselines in {baseline_dir}", file=sys.stderr)
        return 1

    compared, skipped, failures, drifts = 0, [], [], []
    for base_path in baselines:
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.exists():
            skipped.append(base_path.name)
            continue
        with open(base_path) as f:
            base = json.load(f)
        with open(fresh_path) as f:
            fresh = json.load(f)
        file_failures, file_drifts = compare_report(base_path.name, base, fresh, tolerance)
        failures.extend(file_failures)
        drifts.extend(file_drifts)
        compared += 1
        status = "FAIL" if file_failures or file_drifts else "ok"
        print(f"bench gate: {base_path.name}: {status}")

    # A fresh report with no baseline is a new, ungated bench — fail
    # loudly instead of letting it ride green forever.
    baseline_names = {p.name for p in baselines}
    unbaselined = sorted(
        p.name for p in fresh_dir.glob("BENCH_*.json") if p.name not in baseline_names
    )
    for name in unbaselined:
        print(f"bench gate: {name}: FAIL (no baseline)", file=sys.stderr)
        failures.append(
            f"{name}: emitted fresh but has no baseline — "
            f"check one in under {baseline_dir}"
        )

    for name in skipped:
        print(f"bench gate: {name}: skipped (no fresh run)")
    for failure in failures:
        print(f"bench gate: REGRESSION: {failure}", file=sys.stderr)
    if drifts:
        print("bench gate: cells outside the band:", file=sys.stderr)
        print_drift_table(drifts)

    if compared == 0:
        print("bench gate: nothing compared — did the bench smoke stage run?", file=sys.stderr)
        return 1
    if failures or drifts:
        return 1
    print(f"bench gate: green ({compared} compared, tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
