//! # home-metaware — umbrella crate
//!
//! Reproduction of *"A Framework for Connecting Home Computing
//! Middleware"* (ICDCS Workshops 2002). This crate re-exports the whole
//! workspace so examples and integration tests have one import root:
//!
//! * [`metaware`] — the paper's contribution (VSG / PCM / VSR).
//! * [`jini`], [`havi`], [`x10`], [`mailsvc`], [`upnp`] — the simulated
//!   middleware the paper bridges.
//! * [`soap`], [`wsdl`], [`minixml`] — the SOAP/WSDL/UDDI substrate.
//! * [`simnet`] — deterministic virtual-time home networks.
//!
//! See `examples/quickstart.rs` for the five-minute tour, DESIGN.md for the
//! system inventory, and EXPERIMENTS.md for paper-vs-measured results.

#![warn(rust_2018_idioms)]

pub use havi;
pub use jini;
pub use mailsvc;
pub use metaware;
pub use minixml;
pub use simnet;
pub use soap;
pub use upnp;
pub use wsdl;
pub use x10;
